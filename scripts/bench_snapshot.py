"""Write ``BENCH_engine.json``: an archived snapshot of the engine's
performance counters.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_snapshot.py [--quick]

The snapshot measures, at acceptance scale (100k arrivals; ``--quick``
shrinks everything ~10× for smoke runs):

* the POLAR event loop — optimized (cached vectorized typing + inline
  occupancy) against the legacy per-event path (stream rebuilt, typed
  per event), with a parity check;
* CellIndex ring queries on a sparse 200×200 grid — occupied-bbox
  cutoff against a reimplementation of the old full-grid ring walk;
* TGOA — persistent-index candidate enumeration against the dense scan;
* a fig4 sweep through ``SweepExecutor`` — ``--jobs N`` against serial,
  with bit-identical matching sizes asserted;
* the session layer — the bulk ``MatchingSession`` fast path and the
  stepwise per-arrival ``observe()`` serving mode against the bare
  ``run_polar`` adapter, with parity;
* the serving gateway — a live TCP ``Gateway`` driven flat-out by the
  async load generator (JSON parse, bounded queue, shard routing,
  matcher decision and ack per arrival), with single-shard parity
  against the offline session; records sustained arrivals/s and
  end-to-end latency percentiles;
* the worker pool — the same socket path with every dense-greedy shard
  in its own forked worker process (``--workers``, default
  ``min(4, cpu_count)``) against the identical in-process sharded
  gateway, with bit-identical per-shard outcomes asserted; records the
  multi-core throughput ratio (≈0.5× on a single-core container — the
  IPC tax with no cores behind it; the wall-clock target needs real
  cores, like the sweep probe);
* transport comparison — the pickle-pipe worker pool against the
  shared-memory ring transport (``--transport shm``) at equal shards
  and arrivals, with the inline gateway as the compute floor; reports
  each transport's per-event IPC overhead (service time minus the
  inline floor) and the shm/pipe overhead ratio, bit-identical
  outcomes asserted across all three;
* worker recovery — the self-healing tax: crash-free worker-pool runs
  with checkpoints off vs on (the steady-state checkpoint overhead),
  then a chaos run that SIGKILLs one shard mid-stream and recovers it
  from checkpoint + journal replay, asserted bit-identical to the
  crash-free run before any number is reported;
* churn — matcher throughput at 10% departure churn against the
  churn-free stream (same matcher, same stepwise session), plus a
  matched-count degradation curve over a churn-rate sweep for
  SimpleGreedy and POLAR.

Wall-clock parallel gains require real cores; the snapshot records the
host's ``cpu_count`` so numbers are interpretable (on a single-core
container the sweep speedup is ~1× by construction — see
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

from repro.core.cellindex import CellIndex
from repro.core.guide import build_guide
from repro.core.polar import run_polar
from repro.core.tgoa import run_tgoa
from repro.experiments.figures import run_fig4_workers
from repro.model.events import build_stream
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.streams.oracle import exact_oracle
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


def _best_of(fn, rounds=3):
    best = float("inf")
    value = None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _polar_setup(n_per_side: int):
    """One synthetic instance + oracle-fed guide (shared by the POLAR
    and session probes, so both measure the identical setup)."""
    config = SyntheticConfig(n_workers=n_per_side, n_tasks=n_per_side)
    generator = SyntheticGenerator(config)
    instance = generator.generate()
    worker_counts, task_counts = exact_oracle(generator)
    slot_minutes = generator.timeline.slot_minutes
    guide = build_guide(
        worker_counts,
        task_counts,
        generator.grid,
        generator.timeline,
        generator.travel,
        config.worker_duration_slots * slot_minutes,
        config.task_duration_slots * slot_minutes,
    )
    return instance, guide


def _bench_polar_loop(n_per_side: int):
    instance, guide = _polar_setup(n_per_side)
    # Legacy cost model (the seed implementation): every invocation
    # rebuilt + sorted the stream and typed each event through
    # slot_of/area_of.  Passing a freshly built stream forces that path.
    legacy_seconds, legacy = _best_of(
        lambda: run_polar(
            instance, guide, stream=build_stream(instance.workers, instance.tasks)
        )
    )
    instance.typed_arrivals()  # warm the shared cache once
    optimized_seconds, optimized = _best_of(lambda: run_polar(instance, guide))
    assert optimized.matching.pairs() == legacy.matching.pairs(), "parity violated"
    return {
        "arrivals": 2 * n_per_side,
        "matched": optimized.size,
        "legacy_seconds": round(legacy_seconds, 4),
        "optimized_seconds": round(optimized_seconds, 4),
        "speedup": round(legacy_seconds / optimized_seconds, 2),
        "parity": True,
    }


def _legacy_within(index: CellIndex, origin: Point, radius: float):
    """The pre-optimisation ring walk: every ring of the full grid."""
    grid = index.grid
    col, row = grid.cell_of(origin)
    cell = min(grid.cell_width, grid.cell_height)
    found = []
    for ring in range(max(grid.nx, grid.ny) + 1):
        lower_bound = max(0.0, (ring - 1)) * cell if ring > 0 else 0.0
        if lower_bound > radius:
            break
        ids = []
        if ring == 0:
            bucket = index._buckets.get(row * grid.nx + col)
            if bucket:
                ids.extend(bucket)
        else:
            for c in range(col - ring, col + ring + 1):
                if not 0 <= c < grid.nx:
                    continue
                for r in (row - ring, row + ring):
                    if 0 <= r < grid.ny:
                        bucket = index._buckets.get(r * grid.nx + c)
                        if bucket:
                            ids.extend(bucket)
            for r in range(row - ring + 1, row + ring):
                if not 0 <= r < grid.ny:
                    continue
                for c in (col - ring, col + ring):
                    if 0 <= c < grid.nx:
                        bucket = index._buckets.get(r * grid.nx + c)
                        if bucket:
                            ids.extend(bucket)
        for object_id in ids:
            distance = origin.distance_to(index._locations[object_id])
            if distance <= radius:
                found.append((object_id, distance))
    return found


def _bench_cellindex(queries: int):
    rng = random.Random(11)
    grid = Grid.square(200)
    index = CellIndex(grid)
    for ident in range(64):
        index.add(ident, Point(rng.uniform(0, 25), rng.uniform(0, 25)))
    origins = [
        Point(rng.uniform(0, 200), rng.uniform(0, 200)) for _ in range(queries)
    ]

    def run_new():
        return [len(index.within(origin, 40.0)) for origin in origins]

    def run_old():
        return [len(_legacy_within(index, origin, 40.0)) for origin in origins]

    new_seconds, new_counts = _best_of(run_new)
    old_seconds, old_counts = _best_of(run_old)
    assert new_counts == old_counts, "parity violated"
    return {
        "grid": "200x200 sparse (64 objects clustered)",
        "queries": queries,
        "legacy_seconds": round(old_seconds, 4),
        "optimized_seconds": round(new_seconds, 4),
        "speedup": round(old_seconds / new_seconds, 2),
        "parity": True,
    }


def _bench_tgoa(n_per_side: int):
    config = SyntheticConfig(
        n_workers=n_per_side, n_tasks=n_per_side, grid_side=50, n_slots=12, seed=5
    )
    instance = SyntheticGenerator(config).generate()
    dense_seconds, dense = _best_of(lambda: run_tgoa(instance, indexed=False), rounds=1)
    indexed_seconds, indexed = _best_of(lambda: run_tgoa(instance, indexed=True), rounds=1)
    assert indexed.matching.pairs() == dense.matching.pairs(), "parity violated"
    return {
        "objects": 2 * n_per_side,
        "dense_seconds": round(dense_seconds, 4),
        "indexed_seconds": round(indexed_seconds, 4),
        "speedup": round(dense_seconds / indexed_seconds, 2),
        "parity": True,
    }


def _bench_session(n_per_side: int):
    """Session-layer overhead on the POLAR event loop.

    Three drivers over the same instance+guide: the bare adapter
    (``run_polar``), the session's bulk fast path (what the experiment
    harness pays after routing cells through sessions), and the stepwise
    per-arrival ``observe()`` path (what live serving pays).
    """
    from repro.core.engine import PolarMatcher
    from repro.serving.session import InstanceSource, IteratorSource, MatchingSession

    instance, guide = _polar_setup(n_per_side)
    instance.typed_arrivals()  # warm the shared cache once

    adapter_seconds, adapter = _best_of(lambda: run_polar(instance, guide))
    bulk_session = MatchingSession(PolarMatcher(guide), InstanceSource(instance))
    bulk_seconds, bulk = _best_of(bulk_session.run)
    stepwise_session = MatchingSession(
        PolarMatcher(guide), IteratorSource(instance.arrival_stream())
    )
    stepwise_seconds, stepwise = _best_of(stepwise_session.run)

    assert bulk.matching.pairs() == adapter.matching.pairs(), "parity violated"
    assert stepwise.matching.pairs() == adapter.matching.pairs(), "parity violated"
    return {
        "arrivals": 2 * n_per_side,
        "matched": adapter.size,
        "adapter_seconds": round(adapter_seconds, 4),
        "session_bulk_seconds": round(bulk_seconds, 4),
        "session_stepwise_seconds": round(stepwise_seconds, 4),
        "bulk_overhead": round(bulk_seconds / adapter_seconds, 3),
        "stepwise_overhead": round(stepwise_seconds / adapter_seconds, 3),
        "parity": True,
    }


def _bench_gateway(n_per_side: int):
    """Sustained socket ingest through the serving gateway.

    One POLAR shard (the paper's O(1)-per-arrival algorithm) behind the
    full network path; parity with the offline session is asserted
    before any number is reported.
    """
    import asyncio

    from repro.core.engine import PolarMatcher
    from repro.serving.gateway import Gateway
    from repro.serving.loadgen import run_loadgen
    from repro.serving.session import IteratorSource, MatchingSession

    instance, guide = _polar_setup(n_per_side)
    events = instance.arrival_stream()
    reference = MatchingSession(PolarMatcher(guide), IteratorSource(events)).run()

    async def drive(stream, rate):
        gateway = Gateway(
            instance.grid,
            lambda shard: PolarMatcher(guide),
            n_shards=1,
            queue_size=4096,
        )
        await gateway.start(port=0)
        report = await run_loadgen(stream, port=gateway.tcp_port, rate=rate)
        snapshot = await gateway.close()
        return gateway, report, snapshot

    # Flat-out run: sustained ingest ceiling (latency here is queueing).
    gateway, report, snapshot = asyncio.run(drive(events, None))
    assert report.acked == len(events), "loadgen lost acks"
    assert snapshot.arrivals == len(events), "gateway lost arrivals"
    outcome = gateway.shard_outcomes()[0]
    assert outcome.matching.pairs() == reference.matching.pairs(), "parity violated"
    # Paced run at 5k arrivals/s: end-to-end latency below saturation.
    paced_events = events[: min(len(events), 20_000)]
    _gw, paced, _snap = asyncio.run(drive(paced_events, 5_000.0))
    assert paced.acked == len(paced_events), "paced loadgen lost acks"
    return {
        "arrivals": len(events),
        "matched": snapshot.matched,
        "shards": 1,
        "seconds": round(report.seconds, 4),
        "arrivals_per_sec": round(report.arrivals_per_sec, 1),
        "flat_out_latency_ms_p50": round(report.latency_ms["p50"], 3),
        "flat_out_latency_ms_p99": round(report.latency_ms["p99"], 3),
        "paced_rate": 5_000,
        "paced_latency_ms_p50": round(paced.latency_ms["p50"], 3),
        "paced_latency_ms_p99": round(paced.latency_ms["p99"], 3),
        "parity": True,
    }


def _bench_telemetry_overhead(n_per_side: int):
    """Flat-out ingest cost of stage telemetry at its default sampling.

    The same POLAR socket path as the gateway probe, driven twice:
    default :class:`Telemetry` (1-in-128 stamp sampling) versus
    telemetry disabled (``sample_every=0``).  Best-of-3 per mode; the
    relative throughput delta is the subsystem's whole per-event cost
    (one counter decrement per unsampled event, one type check per hop,
    plus the sampled 1/128's stamp carrier).  Parity between the two
    modes is asserted before the overhead is reported.
    """
    import asyncio

    from repro.core.engine import PolarMatcher
    from repro.serving.gateway import Gateway
    from repro.serving.loadgen import run_loadgen
    from repro.serving.telemetry import DEFAULT_SAMPLE_EVERY, Telemetry

    instance, guide = _polar_setup(n_per_side)
    events = instance.arrival_stream()

    async def drive(sample_every):
        gateway = Gateway(
            instance.grid,
            lambda shard: PolarMatcher(guide),
            n_shards=1,
            queue_size=4096,
            telemetry=Telemetry(sample_every=sample_every, n_shards=1),
        )
        await gateway.start(port=0)
        report = await run_loadgen(events, port=gateway.tcp_port)
        snapshot = await gateway.close()
        return report, snapshot

    def best_rate(sample_every, rounds=3):
        best = None
        for _ in range(rounds):
            report, snapshot = asyncio.run(drive(sample_every))
            assert report.acked == len(events), "loadgen lost acks"
            if best is None or report.arrivals_per_sec > best[0].arrivals_per_sec:
                best = (report, snapshot)
        return best

    off_report, off_snapshot = best_rate(0)
    on_report, on_snapshot = best_rate(DEFAULT_SAMPLE_EVERY)
    assert on_snapshot.matched == off_snapshot.matched, "parity violated"
    assert off_report.stage_latency is None, "disabled telemetry leaked stamps"
    assert on_report.stage_latency is not None, "no stage latency sampled"
    off_rate = off_report.arrivals_per_sec
    on_rate = on_report.arrivals_per_sec
    return {
        "arrivals": len(events),
        "sample_every": DEFAULT_SAMPLE_EVERY,
        "telemetry_off_arrivals_per_sec": round(off_rate, 1),
        "telemetry_on_arrivals_per_sec": round(on_rate, 1),
        # Relative throughput cost of default-rate telemetry; can go
        # slightly negative on a noisy host (run-to-run jitter).
        "overhead": round((off_rate - on_rate) / off_rate, 4),
        "sampled_events": on_report.stage_latency["sampled"],
        "parity": True,
    }


def _bench_worker_pool(n_per_side: int, n_workers: int):
    """Multi-process shard workers versus the in-process sharded gateway.

    Dense (non-indexed) greedy shards — the matcher whose per-arrival
    cost is heavy enough that cores, not the event loop, are the
    bottleneck — behind the full socket path.  Bit-identical per-shard
    outcomes are asserted before any number is reported; the speedup is
    the worker pool's sustained arrivals/s over the single-process
    gateway's at the same shard count.
    """
    import asyncio

    from repro.core.engine import GreedyMatcher
    from repro.serving.gateway import Gateway
    from repro.serving.loadgen import run_loadgen

    instance, _guide = _polar_setup(n_per_side)
    events = instance.arrival_stream()

    async def drive(backend):
        gateway = Gateway(
            instance.grid,
            lambda shard: GreedyMatcher(instance.travel, indexed=False),
            n_shards=n_workers,
            queue_size=4096,
            backend=backend,
        )
        await gateway.start(port=0)
        report = await run_loadgen(events, port=gateway.tcp_port)
        snapshot = await gateway.close()
        return gateway, report, snapshot

    inline_gateway, inline_report, inline_snapshot = asyncio.run(
        drive("inline")
    )
    pool_gateway, pool_report, pool_snapshot = asyncio.run(drive("process"))
    assert pool_report.acked == len(events), "worker pool lost acks"
    assert pool_snapshot.worker_crashes == 0, "a shard worker crashed"
    assert pool_snapshot.matched == inline_snapshot.matched, "parity violated"
    for pool_out, inline_out in zip(
        pool_gateway.shard_outcomes(), inline_gateway.shard_outcomes()
    ):
        assert pool_out.matching.pairs() == inline_out.matching.pairs(), (
            "parity violated"
        )
        assert pool_out.worker_decisions == inline_out.worker_decisions
        assert pool_out.task_decisions == inline_out.task_decisions
    return {
        "arrivals": len(events),
        "matched": pool_snapshot.matched,
        "workers": n_workers,
        "single_process_arrivals_per_sec": round(
            inline_report.arrivals_per_sec, 1
        ),
        "worker_pool_arrivals_per_sec": round(pool_report.arrivals_per_sec, 1),
        "speedup": round(
            pool_report.arrivals_per_sec / inline_report.arrivals_per_sec, 2
        ),
        "worker_pool_latency_ms_p50": round(pool_report.latency_ms["p50"], 3),
        "worker_pool_latency_ms_p99": round(pool_report.latency_ms["p99"], 3),
        # Dispatch-to-ack minus shard compute, per event: the worker
        # pool's per-event service time over the inline gateway's.  The
        # shard computes the same decision either way, so the delta is
        # the IPC round trip (serialize, cross, deserialize, wake).
        "ipc_overhead_us_per_event": round(
            (1.0 / pool_report.arrivals_per_sec
             - 1.0 / inline_report.arrivals_per_sec) * 1e6, 2
        ),
        "parity": True,
    }


def _bench_transport_comparison(n_per_side: int, n_workers: int):
    """Pipe versus shared-memory worker transport at equal shards.

    Three gateways over the identical stream and shard count: inline
    (no IPC — the compute floor), the pickle-pipe worker pool, and the
    shm-ring worker pool.  All three must end bit-identical before any
    number is reported.  The quantity that matters is not throughput —
    on a starved host both pools lose to inline — but the *per-event
    IPC overhead*: each transport's per-event service time minus the
    inline floor.  ``overhead_ratio`` is shm's overhead over pipe's;
    the target is <= 0.5 (the ring's fixed-slot codec replaces pickle
    + frame + pipe syscalls on the hot event/ack path).

    Skipped (with a reason in the snapshot) when the host has no
    POSIX shared memory.
    """
    import asyncio

    from repro.core.engine import GreedyMatcher
    from repro.serving import shmring
    from repro.serving.gateway import Gateway
    from repro.serving.loadgen import run_loadgen

    if not shmring.shm_available():
        return {"skipped": "host has no POSIX shared memory (/dev/shm)"}

    instance, _guide = _polar_setup(n_per_side)
    events = instance.arrival_stream()

    async def drive(backend, transport):
        gateway = Gateway(
            instance.grid,
            lambda shard: GreedyMatcher(instance.travel, indexed=False),
            n_shards=n_workers,
            queue_size=4096,
            backend=backend,
            transport=transport,
        )
        await gateway.start(port=0)
        report = await run_loadgen(events, port=gateway.tcp_port)
        snapshot = await gateway.close()
        return gateway, report, snapshot

    # Per-event overhead is a difference of reciprocals, so single-run
    # scheduler noise dominates it; best-of-3 per leg (the _best_of
    # convention), with parity asserted on every round.
    def best_drive(backend, transport, rounds=3):
        best = None
        for _ in range(rounds):
            gw, report, snap = asyncio.run(drive(backend, transport))
            assert report.acked == len(events), f"{transport} lost acks"
            if best is None or report.seconds < best[1].seconds:
                best = (gw, report, snap)
        return best

    inline_gw, inline_report, inline_snap = best_drive("inline", "pipe")
    pipe_gw, pipe_report, pipe_snap = best_drive("process", "pipe")
    shm_gw, shm_report, shm_snap = best_drive("process", "shm")
    assert shm_snap.worker_crashes == 0, "a shard worker crashed"
    assert shm_snap.transport == "shm", "gateway ignored the transport"
    for other_gw, other_snap in ((pipe_gw, pipe_snap), (shm_gw, shm_snap)):
        assert other_snap.matched == inline_snap.matched, "parity violated"
        for other_out, inline_out in zip(
            other_gw.shard_outcomes(), inline_gw.shard_outcomes()
        ):
            assert other_out.matching.pairs() == inline_out.matching.pairs(), (
                "parity violated"
            )
            assert other_out.worker_decisions == inline_out.worker_decisions
            assert other_out.task_decisions == inline_out.task_decisions

    n = len(events)
    inline_us = inline_report.seconds / n * 1e6
    pipe_overhead_us = pipe_report.seconds / n * 1e6 - inline_us
    shm_overhead_us = shm_report.seconds / n * 1e6 - inline_us
    ratio = (
        round(shm_overhead_us / pipe_overhead_us, 3)
        if pipe_overhead_us > 0
        else None
    )
    return {
        "arrivals": n,
        "matched": shm_snap.matched,
        "workers": n_workers,
        "inline_arrivals_per_sec": round(inline_report.arrivals_per_sec, 1),
        "pipe_arrivals_per_sec": round(pipe_report.arrivals_per_sec, 1),
        "shm_arrivals_per_sec": round(shm_report.arrivals_per_sec, 1),
        "pipe_ipc_overhead_us_per_event": round(pipe_overhead_us, 2),
        "shm_ipc_overhead_us_per_event": round(shm_overhead_us, 2),
        "overhead_ratio": ratio,
        "shm_latency_ms_p50": round(shm_report.latency_ms["p50"], 3),
        "shm_latency_ms_p99": round(shm_report.latency_ms["p99"], 3),
        "parity": True,
    }


def _bench_worker_recovery(n_per_side: int, n_workers: int):
    """The self-healing tax: checkpoint overhead and recovery cost.

    Three worker-pool runs over the same stream: crash-free with
    checkpoints effectively off, crash-free with periodic checkpoints
    (the steady-state overhead a production cadence pays), and a chaos
    run that SIGKILLs one shard a quarter of the way in and recovers it
    from checkpoint + journal replay.  The chaos run must end
    bit-identical to the crash-free run — the headline invariant of the
    supervisor — before any number is reported.
    """
    import asyncio

    from repro.core.engine import GreedyMatcher
    from repro.serving.faults import FaultPlan
    from repro.serving.gateway import Gateway
    from repro.serving.loadgen import run_loadgen

    instance, _guide = _polar_setup(n_per_side)
    events = instance.arrival_stream()
    checkpoint_every = 256

    async def drive(fault_plan, checkpoint):
        gateway = Gateway(
            instance.grid,
            lambda shard: GreedyMatcher(instance.travel, indexed=False),
            n_shards=n_workers,
            queue_size=4096,
            backend="process",
            fault_plan=fault_plan,
            worker_config={
                "checkpoint_every": checkpoint,
                "restart_backoff": 0.01,
                "restart_backoff_cap": 0.05,
            },
        )
        await gateway.start(port=0)
        report = await run_loadgen(events, port=gateway.tcp_port)
        snapshot = await gateway.close()
        return gateway, report, snapshot

    # Crash-free baselines: checkpoints off (one giant interval the
    # stream never reaches) versus the periodic cadence.
    plain_gw, plain_report, plain_snap = asyncio.run(drive(None, 10**9))
    _chk_gw, chk_report, chk_snap = asyncio.run(drive(None, checkpoint_every))
    assert chk_snap.matched == plain_snap.matched, "parity violated"
    # The chaos run: SIGKILL one shard a quarter of the way in.
    kill_at = max(2, len(events) // (4 * n_workers))
    plan = FaultPlan.parse(f"kill:shard=0,at={kill_at}")
    chaos_gw, chaos_report, chaos_snap = asyncio.run(
        drive(plan, checkpoint_every)
    )
    assert chaos_report.acked == len(events), "recovery lost acks"
    assert chaos_snap.worker_crashes == 1, "expected exactly one crash"
    assert chaos_snap.worker_restarts == 1, "expected exactly one restart"
    for chaos_out, plain_out in zip(
        chaos_gw.shard_outcomes(), plain_gw.shard_outcomes()
    ):
        assert chaos_out.matching.pairs() == plain_out.matching.pairs(), (
            "parity violated"
        )
        assert chaos_out.worker_decisions == plain_out.worker_decisions
        assert chaos_out.task_decisions == plain_out.task_decisions
    return {
        "arrivals": len(events),
        "matched": chaos_snap.matched,
        "workers": n_workers,
        "checkpoint_every": checkpoint_every,
        "kill_at_event": kill_at,
        "crash_free_seconds": round(plain_report.seconds, 4),
        "checkpointed_seconds": round(chk_report.seconds, 4),
        "checkpoint_overhead": round(
            chk_report.seconds / plain_report.seconds, 3
        ),
        "recovery_seconds": round(chaos_report.seconds, 4),
        "recovery_overhead": round(
            chaos_report.seconds / chk_report.seconds, 3
        ),
        "parity": True,
    }


def _bench_churn(n_per_side: int):
    """Churn-rate axis: throughput at 10% churn and a degradation curve.

    Stepwise sessions (the serving path) over one synthetic instance:
    SimpleGreedy (indexed) and POLAR replay the same stream at
    *departure* rates 0 / 0.05 / 0.1 / 0.2, recording matched counts;
    the 10%-vs-0% wall-clock ratio is the churn overhead the event
    handlers add.  The curve samples departures only: uniformly-placed
    moves give objects second chances and can *raise* greedy matching,
    so the clean monotone axis is departures.
    """
    from repro.core.engine import GreedyMatcher, PolarMatcher
    from repro.serving.session import IteratorSource, MatchingSession
    from repro.streams.churn import ChurnConfig

    instance, guide = _polar_setup(n_per_side)
    rates = (0.0, 0.05, 0.1, 0.2)
    streams = {
        rate: (
            instance.arrival_stream()
            if rate == 0.0
            else instance.churn_stream(
                ChurnConfig(departure_rate=rate, seed=1)
            )
        )
        for rate in rates
    }

    def matchers():
        return {
            "SimpleGreedy": lambda: GreedyMatcher(
                instance.travel, grid=instance.grid, indexed=True
            ),
            "POLAR": lambda: PolarMatcher(guide),
        }

    curves = {}
    timings = {}
    for name, factory in matchers().items():
        matched = {}
        for rate in rates:
            session = MatchingSession(factory(), IteratorSource(streams[rate]))
            # The overhead ratio is reported from the 0% and 10% runs,
            # so those take best-of-3 like the sibling probes; the
            # other curve points only record matched counts.
            rounds = 3 if rate in (0.0, 0.1) else 1
            seconds, outcome = _best_of(session.run, rounds=rounds)
            matched[f"{rate:g}"] = outcome.matching.size
            if rate in (0.0, 0.1):
                timings[(name, rate)] = seconds
        # Monotone-ish degradation: churn must never help.
        assert matched["0.2"] <= matched["0"], (name, matched)
        curves[name] = matched
    events_10 = len(streams[0.1])
    return {
        "arrivals": 2 * n_per_side,
        "events_at_10pct": events_10,
        "rates": [f"{rate:g}" for rate in rates],
        "matched_by_rate": curves,
        "greedy_seconds_0pct": round(timings[("SimpleGreedy", 0.0)], 4),
        "greedy_seconds_10pct": round(timings[("SimpleGreedy", 0.1)], 4),
        "polar_seconds_0pct": round(timings[("POLAR", 0.0)], 4),
        "polar_seconds_10pct": round(timings[("POLAR", 0.1)], 4),
        "greedy_churn_overhead": round(
            timings[("SimpleGreedy", 0.1)] / timings[("SimpleGreedy", 0.0)], 3
        ),
        "polar_churn_overhead": round(
            timings[("POLAR", 0.1)] / timings[("POLAR", 0.0)], 3
        ),
    }


def _bench_sweep(scale: float, jobs: int):
    algorithms = ("SimpleGreedy", "GR", "POLAR", "POLAR-OP", "OPT")
    start = time.perf_counter()
    serial = run_fig4_workers(
        scale=scale, measure_memory=False, algorithms=algorithms, jobs=1
    )
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_fig4_workers(
        scale=scale, measure_memory=False, algorithms=algorithms, jobs=jobs
    )
    parallel_seconds = time.perf_counter() - start
    parity = all(
        serial.series(a, "size") == parallel.series(a, "size") for a in algorithms
    )
    assert parity, "parity violated"
    return {
        "experiment": "fig4_workers",
        "scale": scale,
        "algorithms": list(algorithms),
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 2),
        "parallel_seconds": round(parallel_seconds, 2),
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "parity": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="~10x smaller probes (smoke run)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="pool size for the sweep probe (default: min(4, cpu_count))",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="shard-worker processes for the worker-pool gateway probe "
        "(default: min(4, cpu_count))",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_engine.json"), help="output path"
    )
    args = parser.parse_args(argv)

    polar_n = 5_000 if args.quick else 50_000
    sweep_scale = 0.01 if args.quick else 0.05
    tgoa_n = 400 if args.quick else 1_500
    queries = 100 if args.quick else 300

    print(f"[polar event loop: {2 * polar_n} arrivals]")
    polar = _bench_polar_loop(polar_n)
    print(f"  legacy {polar['legacy_seconds']}s -> optimized "
          f"{polar['optimized_seconds']}s ({polar['speedup']}x)")
    print("[cellindex sparse ring queries]")
    cellindex = _bench_cellindex(queries)
    print(f"  legacy {cellindex['legacy_seconds']}s -> optimized "
          f"{cellindex['optimized_seconds']}s ({cellindex['speedup']}x)")
    print(f"[tgoa: {2 * tgoa_n} objects]")
    tgoa = _bench_tgoa(tgoa_n)
    print(f"  dense {tgoa['dense_seconds']}s -> indexed "
          f"{tgoa['indexed_seconds']}s ({tgoa['speedup']}x)")
    print(f"[session layer: {2 * polar_n} arrivals]")
    session = _bench_session(polar_n)
    print(f"  adapter {session['adapter_seconds']}s, bulk session "
          f"{session['session_bulk_seconds']}s "
          f"({session['bulk_overhead']}x), stepwise "
          f"{session['session_stepwise_seconds']}s "
          f"({session['stepwise_overhead']}x)")
    print(f"[gateway ingest: {2 * polar_n} arrivals over TCP]")
    gateway = _bench_gateway(polar_n)
    print(f"  {gateway['arrivals_per_sec']} arrivals/s sustained; paced@5k/s "
          f"p50 {gateway['paced_latency_ms_p50']}ms, "
          f"p99 {gateway['paced_latency_ms_p99']}ms")
    telemetry_n = max(1_000, polar_n // 2)
    print(f"[telemetry overhead: {2 * telemetry_n} arrivals, default "
          f"1/128 sampling vs disabled]")
    telemetry_overhead = _bench_telemetry_overhead(telemetry_n)
    print(f"  disabled {telemetry_overhead['telemetry_off_arrivals_per_sec']}"
          f" arrivals/s -> default sampling "
          f"{telemetry_overhead['telemetry_on_arrivals_per_sec']} arrivals/s "
          f"(overhead {telemetry_overhead['overhead']})")
    pool_n = max(400, polar_n // 4)
    print(f"[worker pool: {2 * pool_n} arrivals, {args.workers} shard "
          f"processes, dense greedy]")
    worker_pool = _bench_worker_pool(pool_n, args.workers)
    print(f"  single-process {worker_pool['single_process_arrivals_per_sec']}"
          f" arrivals/s -> worker pool "
          f"{worker_pool['worker_pool_arrivals_per_sec']} arrivals/s "
          f"({worker_pool['speedup']}x); IPC overhead "
          f"{worker_pool['ipc_overhead_us_per_event']}us/event")
    transport_n = max(400, polar_n // 10)
    print(f"[transport comparison: {2 * transport_n} arrivals, "
          f"{args.workers} shard processes, pipe vs shm]")
    transport_comparison = _bench_transport_comparison(
        transport_n, args.workers
    )
    if "skipped" in transport_comparison:
        print(f"  skipped: {transport_comparison['skipped']}")
    else:
        print(f"  pipe overhead "
              f"{transport_comparison['pipe_ipc_overhead_us_per_event']}"
              f"us/event -> shm "
              f"{transport_comparison['shm_ipc_overhead_us_per_event']}"
              f"us/event (ratio "
              f"{transport_comparison['overhead_ratio']})")
    recovery_n = max(400, polar_n // 10)
    print(f"[worker recovery: {2 * recovery_n} arrivals, {args.workers} shard "
          f"processes, SIGKILL + checkpoint/journal replay]")
    worker_recovery = _bench_worker_recovery(recovery_n, args.workers)
    print(f"  checkpoint overhead {worker_recovery['checkpoint_overhead']}x; "
          f"recovery run {worker_recovery['recovery_seconds']}s "
          f"({worker_recovery['recovery_overhead']}x the checkpointed "
          "crash-free run), bit-identical")
    churn_n = polar_n // 5
    print(f"[churn sweep: {2 * churn_n} arrivals, rates 0/0.05/0.1/0.2]")
    churn = _bench_churn(churn_n)
    print(f"  greedy matched {churn['matched_by_rate']['SimpleGreedy']}; "
          f"10% churn overhead {churn['greedy_churn_overhead']}x")
    print(f"  polar matched {churn['matched_by_rate']['POLAR']}; "
          f"10% churn overhead {churn['polar_churn_overhead']}x")
    print(f"[fig4 sweep at scale {sweep_scale}, jobs={args.jobs}]")
    sweep = _bench_sweep(sweep_scale, args.jobs)
    print(f"  serial {sweep['serial_seconds']}s -> parallel "
          f"{sweep['parallel_seconds']}s ({sweep['speedup']}x)")

    cpu_count = os.cpu_count() or 1
    snapshot = {
        "schema": "bench_engine/v1",
        "created_unix": int(time.time()),
        "host": {
            "cpu_count": cpu_count,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "quick": args.quick,
        "targets": {
            "polar_event_loop_speedup_min": 1.5,
            "sweep_speedup_min_on_4_cores": 3.0,
            "session_bulk_overhead_max": 1.1,
            "gateway_ingest_min_arrivals_per_sec": 10_000,
            "worker_pool_speedup_min_on_multi_core": 1.5,
            "transport_overhead_ratio_max": 0.5,
            "telemetry_overhead_max": 0.02,
        },
        "polar_event_loop": polar,
        "cellindex_sparse_queries": cellindex,
        "tgoa_indexed": tgoa,
        "session_layer": session,
        "gateway": gateway,
        "telemetry_overhead": telemetry_overhead,
        "worker_pool": worker_pool,
        "transport_comparison": transport_comparison,
        "worker_recovery": worker_recovery,
        "churn": churn,
        "parallel_sweep": sweep,
    }
    if args.jobs > cpu_count:
        snapshot["parallel_sweep"]["note"] = (
            f"host exposes {cpu_count} core(s) but the probe ran jobs="
            f"{args.jobs}: pool overhead without extra cores makes ~1x (or "
            "less) the expected ceiling here; rerun on a multi-core host "
            "for the wall-clock target"
        )
    if args.workers > cpu_count:
        snapshot["worker_pool"]["note"] = (
            f"host exposes {cpu_count} core(s) but the probe ran "
            f"{args.workers} shard workers: the pickle-pipe tax with no "
            "cores behind it makes <1x the expected ceiling here; rerun "
            "on a multi-core host for the wall-clock target (parity is "
            "asserted regardless)"
        )
    if args.workers > cpu_count and "skipped" not in transport_comparison:
        snapshot["transport_comparison"]["note"] = (
            f"host exposes {cpu_count} core(s) but the probe ran "
            f"{args.workers} shard workers: both transports pay their "
            "full IPC tax with no cores behind the shards, so the "
            "per-event overheads here are upper bounds and the ratio "
            "is noisier than on a multi-core host; "
            "transport_overhead_ratio_max follows the same recorded-"
            "for-multi-core convention as "
            "worker_pool_speedup_min_on_multi_core (parity is asserted "
            "regardless)"
        )
    if cpu_count == 1:
        snapshot["telemetry_overhead"]["note"] = (
            "host exposes 1 core: the loadgen and the gateway share it, "
            "so the measured delta includes scheduler noise comparable "
            "to the ~2% budget itself; the recorded value is best-of-3 "
            "per mode — rerun on an idle multi-core host for a clean "
            "number (parity is asserted regardless)"
        )
    args.out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"[written to {args.out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
