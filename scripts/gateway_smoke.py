"""Gateway smoke check: server + load generator + offline parity.

Run from the repo root::

    PYTHONPATH=src python scripts/gateway_smoke.py [--workers N] [--tasks N]
                                                   [--shards K] [--rate R]
                                                   [--churn P] [--move-rate P]

Builds a small synthetic event stream (``--churn`` / ``--move-rate``
sample departure and move events into it), starts the serving gateway on
an ephemeral TCP port (metrics endpoint included), replays the stream
through the async load generator, scrapes ``/snapshot`` and ``/metrics``
over HTTP, drains, and asserts:

* the ``/snapshot`` totals equal an offline
  :class:`~repro.serving.session.MatchingSession` run of the same stream
  (arrivals, workers, tasks, churn counters and — for one shard —
  matches);
* with one shard, the drained shard outcome is **bit-identical** to the
  offline session (same pairs, same per-object decisions);
* with several shards, the per-shard rows sum to the totals;
* under churn, every churn record is acked (no error lines).

Exits non-zero on any mismatch, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.core.engine import GreedyMatcher
from repro.serving.gateway import Gateway
from repro.serving.loadgen import run_loadgen
from repro.serving.session import MatchingSession
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


async def _http_get(port: int, path: str) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return raw.partition(b"\r\n\r\n")[2].decode()


async def smoke(args) -> int:
    config = SyntheticConfig(
        n_workers=args.workers,
        n_tasks=args.tasks,
        grid_side=args.grid_side,
        n_slots=args.n_slots,
        seed=args.seed,
    )
    instance = SyntheticGenerator(config).generate()
    if args.churn or args.move_rate:
        from repro.model.events import Arrival
        from repro.streams.churn import ChurnConfig

        events = instance.churn_stream(
            ChurnConfig(
                departure_rate=args.churn, move_rate=args.move_rate, seed=args.seed
            )
        )
        n_arrivals = sum(isinstance(event, Arrival) for event in events)
        n_churn = len(events) - n_arrivals
        print(f"[churn stream: {n_arrivals} arrivals + {n_churn} churn events]")
    else:
        events = instance.arrival_stream()
        n_arrivals = len(events)
        n_churn = 0

    offline = MatchingSession(GreedyMatcher(instance.travel, indexed=False))
    offline.begin()
    for event in events:
        offline.push(event)
    reference = offline.finish()
    print(f"[offline session: {reference.summary()}]")

    gateway = Gateway(
        instance.grid,
        lambda shard: GreedyMatcher(instance.travel, indexed=False),
        n_shards=args.shards,
    )
    await gateway.start(port=0, metrics_port=0)
    print(
        f"[gateway up: ingest 127.0.0.1:{gateway.tcp_port}, metrics "
        f"http://127.0.0.1:{gateway.metrics_port}]"
    )
    report = await run_loadgen(events, port=gateway.tcp_port, rate=args.rate)
    print(report.summary())
    assert report.errors == 0, f"loadgen saw {report.errors} error acks"
    assert report.acked == len(events), (
        f"loadgen acked {report.acked} of {len(events)} events"
    )

    snapshot = json.loads(await _http_get(gateway.metrics_port, "/snapshot"))
    metrics = await _http_get(gateway.metrics_port, "/metrics")
    await gateway.close()

    assert snapshot["arrivals"] == n_arrivals, snapshot
    assert snapshot["workers"] == instance.n_workers, snapshot
    assert snapshot["tasks"] == instance.n_tasks, snapshot
    assert snapshot["malformed"] == 0, snapshot
    assert snapshot["ingested"] == len(events), snapshot
    assert sum(row["arrivals"] for row in snapshot["shards"]) == n_arrivals
    assert sum(row["matched"] for row in snapshot["shards"]) == snapshot["matched"]
    assert f'ftoa_gateway_arrivals_total {n_arrivals}' in metrics, "/metrics stale"
    if n_churn:
        if args.shards == 1:
            # Sharded matchers make different matches, so who counts as
            # "departed waiting" only lines up shard-for-shard at k=1.
            expected = reference.departed_workers + reference.departed_tasks
            assert snapshot["departed"] == expected, snapshot
            assert snapshot["moves"] == reference.moves, snapshot
        print(
            f"[churn acked: departed={snapshot['departed']} "
            f"moves={snapshot['moves']}]"
        )

    if args.shards == 1:
        assert snapshot["matched"] == reference.matching.size, (
            f"/snapshot matched={snapshot['matched']} but offline session "
            f"matched={reference.matching.size}"
        )
        outcome = gateway.shard_outcomes()[0]
        assert outcome.matching.pairs() == reference.matching.pairs(), (
            "single-shard gateway diverged from the offline session"
        )
        assert outcome.worker_decisions == reference.worker_decisions
        assert outcome.task_decisions == reference.task_decisions
        print("[parity: single-shard gateway == offline session, bit-identical]")
    else:
        print(
            f"[sharded run: {snapshot['matched']} matched across "
            f"{args.shards} shards vs {reference.matching.size} offline]"
        )
    print("[gateway smoke OK]")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=400)
    parser.add_argument("--tasks", type=int, default=400)
    parser.add_argument("--grid-side", type=int, default=10)
    parser.add_argument("--n-slots", type=int, default=8)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument(
        "--rate", type=float, default=None, help="target arrivals/s (default: flat out)"
    )
    parser.add_argument(
        "--churn", type=float, default=0.0,
        help="departure rate to sample into the stream (default 0)",
    )
    parser.add_argument(
        "--move-rate", type=float, default=0.0,
        help="move rate to sample into the stream (default 0)",
    )
    args = parser.parse_args(argv)
    return asyncio.run(smoke(args))


if __name__ == "__main__":
    sys.exit(main())
