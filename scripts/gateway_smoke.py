"""Gateway smoke check: server + load generator + offline parity.

Run from the repo root::

    PYTHONPATH=src python scripts/gateway_smoke.py [--n-workers N] [--n-tasks N]
                                                   [--shards K] [--workers P]
                                                   [--rate R]
                                                   [--churn P] [--move-rate P]

Builds a small synthetic event stream (``--churn`` / ``--move-rate``
sample departure and move events into it), starts the serving gateway on
an ephemeral TCP port (metrics endpoint included), replays the stream
through the async load generator, scrapes ``/snapshot`` and ``/metrics``
over HTTP, drains, and asserts:

* the ``/snapshot`` totals equal an offline
  :class:`~repro.serving.session.MatchingSession` run of the same stream
  (arrivals, workers, tasks, churn counters and — for one shard —
  matches);
* with one shard, the drained shard outcome is **bit-identical** to the
  offline session (same pairs, same per-object decisions);
* with several shards, the per-shard rows sum to the totals;
* under churn, every churn record is acked (no error lines);
* with ``--workers P`` (one forked worker process per shard), the
  worker-pool gateway is **bit-identical** to the in-process gateway at
  the same shard count — pairs, per-object decisions and churn counters
  shard for shard.

Exits non-zero on any mismatch, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.core.engine import GreedyMatcher
from repro.serving.gateway import Gateway
from repro.serving.loadgen import run_loadgen
from repro.serving.session import MatchingSession
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


async def _http_get(port: int, path: str) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return raw.partition(b"\r\n\r\n")[2].decode()


async def _inline_reference(instance, events, n_shards):
    """The same stream through an in-process gateway (submit-driven),
    for the worker-pool parity gate."""
    gateway = Gateway(
        instance.grid,
        lambda shard: GreedyMatcher(instance.travel, indexed=False),
        n_shards=n_shards,
    )
    await gateway.start()
    for event in events:
        await gateway.submit(event)
    snapshot = await gateway.drain()
    outcomes = gateway.shard_outcomes()
    await gateway.close()
    return snapshot, outcomes


async def smoke(args) -> int:
    if args.workers and args.shards not in (1, args.workers):
        raise SystemExit("--workers P runs one process per shard; "
                         "pass --shards P or omit --shards")
    n_shards = args.workers if args.workers else args.shards
    backend = "process" if args.workers else "inline"
    config = SyntheticConfig(
        n_workers=args.n_workers,
        n_tasks=args.n_tasks,
        grid_side=args.grid_side,
        n_slots=args.n_slots,
        seed=args.seed,
    )
    instance = SyntheticGenerator(config).generate()
    if args.churn or args.move_rate:
        from repro.model.events import Arrival
        from repro.streams.churn import ChurnConfig

        events = instance.churn_stream(
            ChurnConfig(
                departure_rate=args.churn, move_rate=args.move_rate, seed=args.seed
            )
        )
        n_arrivals = sum(isinstance(event, Arrival) for event in events)
        n_churn = len(events) - n_arrivals
        print(f"[churn stream: {n_arrivals} arrivals + {n_churn} churn events]")
    else:
        events = instance.arrival_stream()
        n_arrivals = len(events)
        n_churn = 0

    offline = MatchingSession(GreedyMatcher(instance.travel, indexed=False))
    offline.begin()
    for event in events:
        offline.push(event)
    reference = offline.finish()
    print(f"[offline session: {reference.summary()}]")

    gateway = Gateway(
        instance.grid,
        lambda shard: GreedyMatcher(instance.travel, indexed=False),
        n_shards=n_shards,
        backend=backend,
    )
    await gateway.start(port=0, metrics_port=0)
    print(
        f"[gateway up ({backend}, {n_shards} shard(s)): ingest "
        f"127.0.0.1:{gateway.tcp_port}, metrics "
        f"http://127.0.0.1:{gateway.metrics_port}]"
    )
    report = await run_loadgen(events, port=gateway.tcp_port, rate=args.rate)
    print(report.summary())
    assert report.errors == 0, f"loadgen saw {report.errors} error acks"
    assert report.acked == len(events), (
        f"loadgen acked {report.acked} of {len(events)} events"
    )

    snapshot = json.loads(await _http_get(gateway.metrics_port, "/snapshot"))
    metrics = await _http_get(gateway.metrics_port, "/metrics")
    await gateway.close()
    outcomes = gateway.shard_outcomes()

    # Cross-shard moves migrate (departure + re-arrival), so shard
    # arrival totals count a migrated object once per hosting shard.
    migrations = snapshot.get("migrations", 0)
    assert snapshot["arrivals"] == n_arrivals + migrations, snapshot
    assert (
        snapshot["workers"] + snapshot["tasks"]
        == instance.n_workers + instance.n_tasks + migrations
    ), snapshot
    assert snapshot["malformed"] == 0, snapshot
    assert snapshot["ingested"] == len(events), snapshot
    assert snapshot["worker_crashes"] == 0, snapshot
    assert sum(row["arrivals"] for row in snapshot["shards"]) == n_arrivals + migrations
    assert sum(row["matched"] for row in snapshot["shards"]) == snapshot["matched"]
    assert f'ftoa_gateway_arrivals_total {n_arrivals + migrations}' in metrics, (
        "/metrics stale"
    )
    if n_churn:
        if n_shards == 1:
            # Sharded matchers make different matches, so who counts as
            # "departed waiting" only lines up shard-for-shard at k=1.
            expected = reference.departed_workers + reference.departed_tasks
            assert snapshot["departed"] == expected, snapshot
            assert snapshot["moves"] == reference.moves, snapshot
        print(
            f"[churn acked: departed={snapshot['departed']} "
            f"moves={snapshot['moves']} migrations={migrations}]"
        )

    if n_shards == 1:
        assert snapshot["matched"] == reference.matching.size, (
            f"/snapshot matched={snapshot['matched']} but offline session "
            f"matched={reference.matching.size}"
        )
        outcome = outcomes[0]
        assert outcome.matching.pairs() == reference.matching.pairs(), (
            "single-shard gateway diverged from the offline session"
        )
        assert outcome.worker_decisions == reference.worker_decisions
        assert outcome.task_decisions == reference.task_decisions
        print("[parity: single-shard gateway == offline session, bit-identical]")
    else:
        print(
            f"[sharded run: {snapshot['matched']} matched across "
            f"{n_shards} shards vs {reference.matching.size} offline]"
        )

    if args.workers:
        # The worker-pool acceptance gate: same shard count in-process
        # must produce bit-identical shard outcomes.
        inline_snapshot, inline_outcomes = await _inline_reference(
            instance, events, n_shards
        )
        assert inline_snapshot.matched == snapshot["matched"]
        assert inline_snapshot.migrations == migrations
        for shard_id, (pool_out, inline_out) in enumerate(
            zip(outcomes, inline_outcomes)
        ):
            assert pool_out.matching.pairs() == inline_out.matching.pairs(), (
                f"shard {shard_id}: worker-pool pairs diverged from in-process"
            )
            assert pool_out.worker_decisions == inline_out.worker_decisions
            assert pool_out.task_decisions == inline_out.task_decisions
            assert pool_out.departed_workers == inline_out.departed_workers
            assert pool_out.departed_tasks == inline_out.departed_tasks
            assert pool_out.moves == inline_out.moves
        print(
            f"[parity: {args.workers}-process worker pool == in-process "
            f"{n_shards}-shard gateway, bit-identical]"
        )
    print("[gateway smoke OK]")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-workers", type=int, default=400,
                        help="synthetic |W| (entity count)")
    parser.add_argument("--n-tasks", type=int, default=400,
                        help="synthetic |R| (entity count)")
    parser.add_argument("--grid-side", type=int, default=10)
    parser.add_argument("--n-slots", type=int, default=8)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="run P forked shard-worker processes (implies --shards P) "
        "and assert bit-identical parity with the in-process gateway",
    )
    parser.add_argument(
        "--rate", type=float, default=None, help="target arrivals/s (default: flat out)"
    )
    parser.add_argument(
        "--churn", type=float, default=0.0,
        help="departure rate to sample into the stream (default 0)",
    )
    parser.add_argument(
        "--move-rate", type=float, default=0.0,
        help="move rate to sample into the stream (default 0)",
    )
    args = parser.parse_args(argv)
    return asyncio.run(smoke(args))


if __name__ == "__main__":
    sys.exit(main())
