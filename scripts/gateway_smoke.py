"""Gateway smoke check: server + load generator + offline parity.

Run from the repo root::

    PYTHONPATH=src python scripts/gateway_smoke.py [--n-workers N] [--n-tasks N]
                                                   [--shards K] [--workers P]
                                                   [--transport pipe|shm]
                                                   [--rate R]
                                                   [--churn P] [--move-rate P]

Builds a small synthetic event stream (``--churn`` / ``--move-rate``
sample departure and move events into it), starts the serving gateway on
an ephemeral TCP port (metrics endpoint included), replays the stream
through the async load generator, scrapes ``/snapshot`` and ``/metrics``
over HTTP, drains, and asserts:

* the ``/snapshot`` totals equal an offline
  :class:`~repro.serving.session.MatchingSession` run of the same stream
  (arrivals, workers, tasks, churn counters and — for one shard —
  matches);
* with one shard, the drained shard outcome is **bit-identical** to the
  offline session (same pairs, same per-object decisions);
* with several shards, the per-shard rows sum to the totals;
* under churn, every churn record is acked (no error lines);
* with ``--workers P`` (one forked worker process per shard), the
  worker-pool gateway is **bit-identical** to the in-process gateway at
  the same shard count — pairs, per-object decisions and churn counters
  shard for shard; an approximate per-event IPC overhead (pool run time
  minus the in-process reference, per event) is printed so transport
  wins are attributable;
* ``--transport shm`` runs the worker pool over the shared-memory ring
  transport instead of the pickle pipe — same parity and chaos gates,
  same bit-identical bar; skipped cleanly (exit 0) on hosts without
  POSIX shared memory so CI matrices can include the leg everywhere;
* with ``--chaos kill-mid-stream``, one worker is SIGKILLed mid-stream
  and the run must *still* be bit-identical to the in-process gateway
  (checkpoint + journal replay), with zero error acks;
* with ``--chaos restart-storm``, a sticky fault crashes one shard past
  its restart cap: the shard must degrade to clean error acks (never a
  hang), the survivors stay bit-identical shards, and the health rows /
  Prometheus gauges must say so;
* ``/metrics`` exposes the telemetry stage-duration histogram series
  (``ftoa_gateway_stage_duration_seconds_bucket{stage=...,shard=...}``)
  with a non-zero sampled count — asserted on every leg;
* with ``--trace out.json``, the ``/trace`` endpoint must serve a
  well-formed Chrome ``trace_event`` document whose spans cover **all
  five pipeline stages** (ingest/dispatch/transport/match/ack); the
  document is written to the given path.

Exits non-zero on any mismatch, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from repro.core.engine import GreedyMatcher
from repro.serving.gateway import Gateway
from repro.serving.loadgen import run_loadgen
from repro.serving.session import MatchingSession
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


async def _http_get(port: int, path: str) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    return raw.partition(b"\r\n\r\n")[2].decode()


async def _inline_reference(instance, events, n_shards):
    """The same stream through an in-process gateway (submit-driven),
    for the worker-pool parity gate."""
    gateway = Gateway(
        instance.grid,
        lambda shard: GreedyMatcher(instance.travel, indexed=False),
        n_shards=n_shards,
    )
    await gateway.start()
    for event in events:
        await gateway.submit(event)
    snapshot = await gateway.drain()
    outcomes = gateway.shard_outcomes()
    await gateway.close()
    return snapshot, outcomes


# Chaos runs restart with tight backoff so the smoke stays interactive.
_CHAOS_WORKER_CONFIG = {"restart_backoff": 0.01, "restart_backoff_cap": 0.05}
_STORM_RESTART_CAP = 2


async def smoke(args) -> int:
    if args.workers and args.shards not in (1, args.workers):
        raise SystemExit("--workers P runs one process per shard; "
                         "pass --shards P or omit --shards")
    n_shards = args.workers if args.workers else args.shards
    backend = "process" if args.workers else "inline"
    if args.transport == "shm":
        if not args.workers:
            raise SystemExit("--transport shm needs worker processes; "
                             "pass --workers P")
        from repro.serving import shmring

        if not shmring.shm_available():
            print("[gateway smoke SKIPPED: host has no POSIX shared "
                  "memory (/dev/shm), --transport shm cannot run]")
            return 0
    chaos = args.chaos
    if chaos and not args.workers:
        raise SystemExit("--chaos injects faults into worker processes; "
                         "pass --workers P")
    if chaos == "restart-storm" and n_shards < 2:
        raise SystemExit("--chaos restart-storm needs --workers >= 2 "
                         "(a survivor must keep serving)")
    config = SyntheticConfig(
        n_workers=args.n_workers,
        n_tasks=args.n_tasks,
        grid_side=args.grid_side,
        n_slots=args.n_slots,
        seed=args.seed,
    )
    instance = SyntheticGenerator(config).generate()
    if args.churn or args.move_rate:
        from repro.model.events import Arrival
        from repro.streams.churn import ChurnConfig

        events = instance.churn_stream(
            ChurnConfig(
                departure_rate=args.churn, move_rate=args.move_rate, seed=args.seed
            )
        )
        n_arrivals = sum(isinstance(event, Arrival) for event in events)
        n_churn = len(events) - n_arrivals
        print(f"[churn stream: {n_arrivals} arrivals + {n_churn} churn events]")
    else:
        events = instance.arrival_stream()
        n_arrivals = len(events)
        n_churn = 0

    offline = MatchingSession(GreedyMatcher(instance.travel, indexed=False))
    offline.begin()
    for event in events:
        offline.push(event)
    reference = offline.finish()
    print(f"[offline session: {reference.summary()}]")

    gateway_kwargs = {}
    chaos_target = 1 if n_shards > 1 else 0
    if chaos == "kill-mid-stream":
        from repro.serving.faults import FaultPlan

        kill_at = max(2, n_arrivals // (4 * n_shards))
        gateway_kwargs.update(
            fault_plan=FaultPlan.parse(f"kill:shard={chaos_target},at={kill_at}"),
            worker_config=dict(_CHAOS_WORKER_CONFIG),
        )
        print(
            f"[chaos: SIGKILL shard {chaos_target} at its event #{kill_at}; "
            "expecting bit-identical recovery]"
        )
    elif chaos == "restart-storm":
        from repro.serving.faults import FaultPlan

        gateway_kwargs.update(
            fault_plan=FaultPlan.parse(f"kill:shard={chaos_target},at=5,sticky"),
            max_worker_restarts=_STORM_RESTART_CAP,
            worker_config=dict(_CHAOS_WORKER_CONFIG),
        )
        print(
            f"[chaos: sticky SIGKILL on shard {chaos_target}, restart cap "
            f"{_STORM_RESTART_CAP}; expecting degraded shard + error acks]"
        )

    gateway = Gateway(
        instance.grid,
        lambda shard: GreedyMatcher(instance.travel, indexed=False),
        n_shards=n_shards,
        backend=backend,
        transport=args.transport,
        **gateway_kwargs,
    )
    await gateway.start(port=0, metrics_port=0)
    where = (
        f"{backend}, {n_shards} shard(s), {args.transport} transport"
        if backend == "process"
        else f"{backend}, {n_shards} shard(s)"
    )
    print(
        f"[gateway up ({where}): ingest "
        f"127.0.0.1:{gateway.tcp_port}, metrics "
        f"http://127.0.0.1:{gateway.metrics_port}]"
    )
    report = await run_loadgen(events, port=gateway.tcp_port, rate=args.rate)
    print(report.summary())
    if chaos == "restart-storm":
        # The degraded shard answers with error acks — but it must
        # answer: every event gets a reply line, the drain completes.
        assert report.errors > 0, "restart-storm produced no error acks"
        assert report.acked + report.errors == len(events), (
            f"loadgen got {report.acked + report.errors} replies for "
            f"{len(events)} events — the degraded shard hung"
        )
    else:
        assert report.errors == 0, f"loadgen saw {report.errors} error acks"
        assert report.acked == len(events), (
            f"loadgen acked {report.acked} of {len(events)} events"
        )

    snapshot = json.loads(await _http_get(gateway.metrics_port, "/snapshot"))
    metrics = await _http_get(gateway.metrics_port, "/metrics")
    trace_doc = None
    if args.trace:
        trace_doc = json.loads(await _http_get(gateway.metrics_port, "/trace"))
    await gateway.close()
    outcomes = gateway.shard_outcomes()

    assert "ftoa_gateway_stage_duration_seconds_bucket" in metrics, (
        "/metrics missing the telemetry stage-duration histogram series"
    )
    assert f'stage="match",shard="{n_shards - 1}"' in metrics, (
        "/metrics missing per-shard stage histogram labels"
    )
    assert "ftoa_gateway_telemetry_sampled_total 0" not in metrics, (
        "telemetry sampled no events — the sampling gate is broken"
    )
    if trace_doc is not None:
        from repro.serving.telemetry import STAGES

        spans = [e for e in trace_doc["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in spans}
        assert names == set(STAGES), (
            f"trace is missing pipeline stages: {set(STAGES) - names}"
        )
        assert trace_doc["otherData"]["sampled_events"] > 0
        for span in spans:
            assert span["dur"] >= 0 and span["ts"] > 0, span
        with open(args.trace, "w") as handle:
            json.dump(trace_doc, handle)
        print(
            f"[trace: {len(spans)} spans covering all {len(names)} stages "
            f"({trace_doc['otherData']['sampled_events']} sampled events) "
            f"written to {args.trace}]"
        )

    if backend == "process":
        assert (
            f'ftoa_gateway_transport{{transport="{args.transport}"}} 1'
            in metrics
        ), "/metrics missing the transport info label"
        if args.transport == "shm":
            assert 'ftoa_shard_ring_depth{shard="0",ring="request"}' in metrics, (
                "/metrics missing the shm ring depth gauges"
            )

    # Cross-shard moves migrate (departure + re-arrival), so shard
    # arrival totals count a migrated object once per hosting shard.
    migrations = snapshot.get("migrations", 0)
    if chaos == "restart-storm":
        health = [row["health"] for row in snapshot["shards"]]
        assert health[chaos_target] == "degraded", snapshot
        assert all(
            h == "healthy" for i, h in enumerate(health) if i != chaos_target
        ), snapshot
        assert snapshot["worker_crashes"] == _STORM_RESTART_CAP + 1, snapshot
        assert snapshot["worker_restarts"] == _STORM_RESTART_CAP, snapshot
        assert snapshot["malformed"] == report.errors, snapshot
        assert snapshot["ingested"] == len(events), snapshot
        assert (
            f"ftoa_gateway_worker_restarts_total {_STORM_RESTART_CAP}" in metrics
        ), "/metrics stale"
        assert f'ftoa_shard_up{{shard="{chaos_target}"}} 0' in metrics
        survivor = 0 if chaos_target != 0 else 1
        assert f'ftoa_shard_up{{shard="{survivor}"}} 1' in metrics
        print(
            f"[chaos: shard {chaos_target} degraded after "
            f"{_STORM_RESTART_CAP} restart(s); {report.errors} clean error "
            "acks, drain completed]"
        )
    else:
        assert snapshot["arrivals"] == n_arrivals + migrations, snapshot
        assert (
            snapshot["workers"] + snapshot["tasks"]
            == instance.n_workers + instance.n_tasks + migrations
        ), snapshot
        assert snapshot["malformed"] == 0, snapshot
        assert snapshot["ingested"] == len(events), snapshot
        expected_crashes = 1 if chaos == "kill-mid-stream" else 0
        assert snapshot["worker_crashes"] == expected_crashes, snapshot
        assert snapshot["worker_restarts"] == expected_crashes, snapshot
        if chaos == "kill-mid-stream":
            assert "ftoa_gateway_worker_restarts_total 1" in metrics, (
                "/metrics stale"
            )
        assert sum(row["arrivals"] for row in snapshot["shards"]) == n_arrivals + migrations
        assert sum(row["matched"] for row in snapshot["shards"]) == snapshot["matched"]
        assert f'ftoa_gateway_arrivals_total {n_arrivals + migrations}' in metrics, (
            "/metrics stale"
        )
    if n_churn:
        if n_shards == 1:
            # Sharded matchers make different matches, so who counts as
            # "departed waiting" only lines up shard-for-shard at k=1.
            expected = reference.departed_workers + reference.departed_tasks
            assert snapshot["departed"] == expected, snapshot
            assert snapshot["moves"] == reference.moves, snapshot
        print(
            f"[churn acked: departed={snapshot['departed']} "
            f"moves={snapshot['moves']} migrations={migrations}]"
        )

    if n_shards == 1:
        assert snapshot["matched"] == reference.matching.size, (
            f"/snapshot matched={snapshot['matched']} but offline session "
            f"matched={reference.matching.size}"
        )
        outcome = outcomes[0]
        assert outcome.matching.pairs() == reference.matching.pairs(), (
            "single-shard gateway diverged from the offline session"
        )
        assert outcome.worker_decisions == reference.worker_decisions
        assert outcome.task_decisions == reference.task_decisions
        print("[parity: single-shard gateway == offline session, bit-identical]")
    else:
        print(
            f"[sharded run: {snapshot['matched']} matched across "
            f"{n_shards} shards vs {reference.matching.size} offline]"
        )

    if chaos == "restart-storm":
        from repro.serving.workers import ShardOutcome

        outcome = outcomes[chaos_target]
        assert isinstance(outcome, ShardOutcome), (
            f"degraded shard {chaos_target} returned {outcome!r} instead of "
            "a structured ShardOutcome"
        )
        print(f"[chaos outcome: {outcome.summary()}]")
    elif args.workers:
        # The worker-pool acceptance gate: same shard count in-process
        # must produce bit-identical shard outcomes.  With --chaos
        # kill-mid-stream this is the headline invariant: the SIGKILLed
        # worker's recovery must be invisible in the final matching.
        inline_start = time.perf_counter()
        inline_snapshot, inline_outcomes = await _inline_reference(
            instance, events, n_shards
        )
        inline_seconds = time.perf_counter() - inline_start
        assert inline_snapshot.matched == snapshot["matched"]
        assert inline_snapshot.migrations == migrations
        for shard_id, (pool_out, inline_out) in enumerate(
            zip(outcomes, inline_outcomes)
        ):
            assert pool_out.matching.pairs() == inline_out.matching.pairs(), (
                f"shard {shard_id}: worker-pool pairs diverged from in-process"
            )
            assert pool_out.worker_decisions == inline_out.worker_decisions
            assert pool_out.task_decisions == inline_out.task_decisions
            assert pool_out.departed_workers == inline_out.departed_workers
            assert pool_out.departed_tasks == inline_out.departed_tasks
            assert pool_out.moves == inline_out.moves
        suffix = (
            " (with a SIGKILLed worker recovered mid-stream)"
            if chaos == "kill-mid-stream"
            else ""
        )
        print(
            f"[parity: {args.workers}-process worker pool == in-process "
            f"{n_shards}-shard gateway, bit-identical{suffix}]"
        )
        # Dispatch-to-ack minus shard compute, per event.  The inline
        # reference is submit-driven (no socket), so this also folds in
        # the TCP path — an upper bound, printed for attribution, never
        # gated (single-core CI hosts make it wildly noisy).
        ipc_overhead_us = (
            (report.seconds - inline_seconds) / len(events) * 1e6
        )
        print(
            f"[ipc overhead ({args.transport}): ~{ipc_overhead_us:.1f}"
            f"us/event (pool {report.seconds:.3f}s vs in-process "
            f"{inline_seconds:.3f}s over {len(events)} events)]"
        )
    print("[gateway smoke OK]")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-workers", type=int, default=400,
                        help="synthetic |W| (entity count)")
    parser.add_argument("--n-tasks", type=int, default=400,
                        help="synthetic |R| (entity count)")
    parser.add_argument("--grid-side", type=int, default=10)
    parser.add_argument("--n-slots", type=int, default=8)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="run P forked shard-worker processes (implies --shards P) "
        "and assert bit-identical parity with the in-process gateway",
    )
    parser.add_argument(
        "--transport", choices=("pipe", "shm"), default="pipe",
        help="worker-pool transport: pickle pipes (default) or "
        "shared-memory event rings (needs --workers; skips cleanly "
        "when the host has no /dev/shm)",
    )
    parser.add_argument(
        "--rate", type=float, default=None, help="target arrivals/s (default: flat out)"
    )
    parser.add_argument(
        "--chaos", choices=("kill-mid-stream", "restart-storm"), default=None,
        help="inject faults into the worker pool: kill-mid-stream SIGKILLs "
        "one worker and gates on bit-identical recovery; restart-storm "
        "crashes one shard past its restart cap and gates on clean "
        "degraded-mode error acks (requires --workers)",
    )
    parser.add_argument(
        "--churn", type=float, default=0.0,
        help="departure rate to sample into the stream (default 0)",
    )
    parser.add_argument(
        "--move-rate", type=float, default=0.0,
        help="move rate to sample into the stream (default 0)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="fetch /trace, validate the Chrome trace document covers "
        "every pipeline stage, and write it to PATH",
    )
    args = parser.parse_args(argv)
    return asyncio.run(smoke(args))


if __name__ == "__main__":
    sys.exit(main())
