"""Substitute archived experiment results into EXPERIMENTS.md.

Replaces each ``<!-- RESULTS:<id> -->`` placeholder with the rendered rows
of ``results/<id>.json`` (falling back to ``results/<alias>.json`` for the
named variants).  Placeholders without an archived result are annotated
with the regeneration command instead of silently dropped.

Run after `scripts/run_experiments.sh`:

    python scripts/fill_experiments.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.errors import ReproError  # noqa: E402
from repro.experiments.report import render  # noqa: E402
from repro.experiments.results import SweepResult, TableResult  # noqa: E402

# Placeholder id -> result file stem when they differ (none currently;
# kept for forward compatibility with derived archives).
ALIASES = {}

PLACEHOLDER = re.compile(r"<!-- RESULTS:([a-z0-9_]+) -->")


def _load(path: Path):
    text = path.read_text()
    try:
        return SweepResult.from_json(text)
    except ReproError:
        return TableResult.from_json(text)


def fill(markdown: str, results_dir: Path) -> str:
    def replace(match: re.Match) -> str:
        placeholder_id = match.group(1)
        stem = ALIASES.get(placeholder_id, placeholder_id)
        path = results_dir / f"{stem}.json"
        if not path.exists():
            # Keep the placeholder so a later fill pass can still land.
            return (
                f"{match.group(0)}\n*(not archived in this run — regenerate "
                f"with `python -m repro run {stem} --out results/`)*"
            )
        rendered = render(_load(path))
        return "```\n" + rendered + "\n```"

    # Drop stale "not archived" notices from earlier passes, then fill.
    markdown = re.sub(
        r"\*\(not archived in this run[^)]*\)\*\n?", "", markdown
    )
    return PLACEHOLDER.sub(replace, markdown)


def main() -> int:
    experiments_md = REPO / "EXPERIMENTS.md"
    results_dir = REPO / "results"
    experiments_md.write_text(fill(experiments_md.read_text(), results_dir))
    print(f"filled {experiments_md} from {results_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
