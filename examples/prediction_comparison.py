"""Compare all seven offline predictors on one city (Table 5, one cell).

Trains HA, ARIMA, GBRT, PAQ, LR, NN and HP-MSI on six weeks of the
Hangzhou stand-in's task history and scores them on the following three
days with the paper's two metrics (RMSLE and ER — lower is better).

Run:  python examples/prediction_comparison.py   (a couple of minutes)
"""

from __future__ import annotations

import numpy as np

from repro import TaxiCity, hangzhou_config
from repro.prediction import ALL_PREDICTORS, make_predictor
from repro.prediction.base import DemandHistory
from repro.prediction.metrics import error_rate, rmsle

HISTORY_DAYS = 42
EVAL_DAYS = 3


def main() -> None:
    city = TaxiCity(hangzhou_config())
    total = HISTORY_DAYS + EVAL_DAYS
    task_all, _worker_all = city.generate_history(total)
    history = DemandHistory(
        counts=task_all.counts[:HISTORY_DAYS],
        day_of_week=task_all.day_of_week[:HISTORY_DAYS],
        weather=task_all.weather[:HISTORY_DAYS],
    )
    eval_days = range(HISTORY_DAYS, total)

    print(f"{'predictor':<8}  {'RMSLE':>7}  {'ER':>7}")
    print("-" * 27)
    scores = []
    for name in ALL_PREDICTORS:
        predictor = make_predictor(name, seed=7)
        predictor.fit(history)
        rmsle_values = []
        er_values = []
        for day in eval_days:
            forecast = predictor.predict(city.day_context(day))
            actual = task_all.counts[day]
            rmsle_values.append(rmsle(actual, forecast))
            er_values.append(error_rate(actual, forecast))
        mean_rmsle = float(np.mean(rmsle_values))
        mean_er = float(np.mean(er_values))
        scores.append((name, mean_rmsle, mean_er))
        print(f"{name:<8}  {mean_rmsle:>7.3f}  {mean_er:>7.3f}")

    best = min(scores, key=lambda item: item[2])
    print()
    print(
        f"best by ER: {best[0]} — the paper selects HP-MSI for the framework "
        f"(Table 5)"
    )


if __name__ == "__main__":
    main()
