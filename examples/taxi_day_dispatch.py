"""A full platform day on the Beijing stand-in: predict, guide, dispatch.

This is the paper's real-data pipeline end to end (Section 6.3):

1. four weeks of city history (hotspots, rush hours, weekday/weekend and
   weather structure) train HP-MSI — the Table 5 winner — separately for
   tasks (demand) and workers (supply);
2. the forecasts for the next day feed Algorithm 1's offline guide;
3. the day's actual arrival stream is dispatched online by POLAR-OP and
   compared against the wait-in-place baselines and OPT;
4. the dispatch log shows where the platform pre-positioned idle taxis.

Run:  python examples/taxi_day_dispatch.py   (about a minute)
"""

from __future__ import annotations

from collections import Counter

from repro import TaxiCity, beijing_config, build_guide, rounded_counts
from repro import run_batch, run_opt, run_polar, run_polar_op, run_simple_greedy
from repro.prediction import HpMsiPredictor
from repro.prediction.metrics import error_rate

HISTORY_DAYS = 28
SCALE = 0.1  # 1/10 of Didi-scale volumes keeps this example around a minute


def main() -> None:
    city = TaxiCity(beijing_config().scaled(SCALE))
    task_history, worker_history = city.generate_history(HISTORY_DAYS)
    eval_day = HISTORY_DAYS  # the day right after the training window
    context = city.day_context(eval_day)
    weekday = "weekend" if context.is_weekend else "weekday"
    print(f"evaluation day {eval_day}: {weekday}, weather states {set(context.weather.tolist())}")

    # Offline prediction (HP-MSI on both sides).
    demand_model = HpMsiPredictor(seed=1)
    demand_model.fit(task_history)
    predicted_tasks = demand_model.predict(context)
    supply_model = HpMsiPredictor(seed=2)
    supply_model.fit(worker_history)
    predicted_workers = supply_model.predict(context)

    instance = city.generate_day(eval_day)
    actual_tasks = instance.task_counts()
    print(
        f"forecast quality (tasks): ER = "
        f"{error_rate(actual_tasks, predicted_tasks):.3f}"
    )

    # Offline guide.
    slot_minutes = city.timeline.slot_minutes
    guide = build_guide(
        rounded_counts(predicted_workers),
        rounded_counts(predicted_tasks),
        city.grid,
        city.timeline,
        city.travel,
        worker_duration=city.config.worker_duration_slots * slot_minutes,
        task_duration=city.config.task_duration_slots * slot_minutes,
    )
    print(f"guide: {guide.matched_pairs} pre-computed pairs for {instance}")
    print()

    # Online assignment.
    outcomes = [
        run_simple_greedy(instance, indexed=True),
        run_batch(instance),
        run_polar(instance, guide),
        run_polar_op(instance, guide),
        run_opt(instance),
    ]
    for outcome in outcomes:
        print(f"  {outcome.summary()}")

    polar_op = outcomes[3]
    dispatched = polar_op.dispatched_worker_ids()
    targets = Counter(
        polar_op.worker_decisions[worker_id].target_area for worker_id in dispatched
    )
    print()
    print(
        f"POLAR-OP pre-positioned {len(dispatched)} idle taxis; "
        f"top destination areas: {targets.most_common(5)}"
    )


if __name__ == "__main__":
    main()
