"""Quickstart: the two-step FTOA framework in thirty lines.

Generates a synthetic day (Table 4's distributions at 1/10 scale), uses
the generator's exact expectations as the offline prediction, builds the
offline guide (Algorithm 1) and compares every algorithm the paper
evaluates.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    SyntheticConfig,
    SyntheticGenerator,
    build_guide,
    exact_oracle,
    run_batch,
    run_opt,
    run_polar,
    run_polar_op,
    run_simple_greedy,
)


def main() -> None:
    # Step 0 — a workload: 2 000 workers and tasks drawn from Table 4's
    # default normal distributions.  The grid/slot resolution is scaled
    # down with the population so the predicted count per (slot, area)
    # stays near one — the regime POLAR's analysis assumes (the paper's
    # full-scale setting is 20 000 objects on a 50×50 grid × 48 slots).
    config = SyntheticConfig(
        n_workers=8_000, n_tasks=8_000, grid_side=30, n_slots=24, seed=42
    )
    generator = SyntheticGenerator(config)
    instance = generator.generate()
    print(f"workload: {instance}")

    # Step 1 — offline prediction.  On synthetic data the platform knows
    # the arrival distributions (the i.i.d. model), so the prediction is
    # the exact expected count per (slot, area), rounded to integers.
    predicted_workers, predicted_tasks = exact_oracle(generator)

    # Step 2 — offline guide generation (Algorithm 1).
    slot_minutes = generator.timeline.slot_minutes
    guide = build_guide(
        predicted_workers,
        predicted_tasks,
        generator.grid,
        generator.timeline,
        generator.travel,
        worker_duration=config.worker_duration_slots * slot_minutes,
        task_duration=config.task_duration_slots * slot_minutes,
    )
    print(f"offline guide: {guide.matched_pairs} pre-computed pairs")

    # Step 3 — online assignment, one pass over the arrival stream each.
    print()
    for outcome in (
        run_simple_greedy(instance),
        run_batch(instance),
        run_polar(instance, guide),
        run_polar_op(instance, guide),
        run_opt(instance),
    ):
        print(f"  {outcome.summary()}")
    print()
    print(
        "POLAR-OP recovers most of POLAR's prediction losses (far fewer\n"
        "ignored objects) and OPT bounds everything.  At the paper's full\n"
        "scale the prediction-guided algorithms overtake the wait-in-place\n"
        "baselines -- run `python -m repro run fig4_workers` to see it."
    )


if __name__ == "__main__":
    main()
