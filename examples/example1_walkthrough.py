"""The paper's running example (Example 1, Figures 1–3), end to end.

Seven taxi drivers (workers) and six ride requests (tasks) on an 8×8
map split into 2×2 areas and two five-minute slots (9:00–9:05,
9:05–9:10).  The script reproduces every step of the paper's narrative:

* SimpleGreedy matches only the two early tasks (Example 2);
* the offline guide built from Figure 1(d)'s predictions has |E*| = 5;
* POLAR follows the guide and reaches 4 matches (Example 5), with one
  worker mis-dispatched by the deliberately imperfect prediction;
* POLAR-OP re-uses nodes and recovers the prediction shortfalls
  (Example 6);
* OPT, knowing the future, reaches all 6.

Geometry note: the paper numbers areas with Area 0 top-left; our grid
indexes rows bottom-up, so the map is mirrored vertically (y → 8 − y).
Mirroring preserves every distance and count.  One coordinate is nudged:
the paper's Figure 1(b) matches w3–r2 across a Euclidean distance of
√5 ≈ 2.24 units, which breaks its own Dr = 2 deadline at one unit per
minute (the toy example was evidently drawn with grid distances); we
move w3 from (3, 7) to (3, 6.5) so every match the paper narrates is
Euclidean-feasible under Dr = 2 exactly as stated.

Run:  python examples/example1_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Grid,
    Instance,
    Point,
    Task,
    Timeline,
    TravelModel,
    Worker,
    build_guide,
    run_opt,
    run_polar,
    run_polar_op,
    run_simple_greedy,
)
from repro.analysis.audit import audit_outcome

# 9:00 is minute 0.  Workers wait Dw = 30 min; tasks expire in 2.5 min.
WORKER_DEADLINE = 30.0
TASK_DEADLINE = 2.0

# Paper coordinates, mirrored vertically (y -> 8 - y).
WORKERS = [
    # id, x, y, arrival minute
    (0, 1.0, 2.0, 0.0),  # w1 (1,6) @ 9:00
    (1, 1.0, 0.0, 1.0),  # w2 (1,8) @ 9:01
    (2, 3.0, 1.5, 1.0),  # w3 (3,6.5) @ 9:01 (nudged, see module docstring)
    (3, 5.0, 5.0, 3.0),  # w4 (5,3) @ 9:03
    (4, 4.0, 7.0, 3.0),  # w5 (4,1) @ 9:03
    (5, 6.0, 7.0, 3.0),  # w6 (6,1) @ 9:03
    (6, 7.9, 6.0, 4.0),  # w7 (8,2) @ 9:04
]
TASKS = [
    (0, 3.0, 2.0, 0.0),  # r1 (3,6) @ 9:00
    (1, 2.0, 3.0, 2.0),  # r2 (2,5) @ 9:02
    (2, 5.0, 2.0, 5.0),  # r3 (5,6) @ 9:05
    (3, 6.0, 3.0, 6.0),  # r4 (6,5) @ 9:06
    (4, 6.0, 1.0, 7.0),  # r5 (6,7) @ 9:07
    (5, 7.0, 2.0, 8.0),  # r6 (7,6) @ 9:08
]


def build_example_instance() -> Instance:
    """The Example 1 instance: 2×2 areas over [0,8]², two 5-min slots."""
    grid = Grid.square(2, cell_size=4.0)
    timeline = Timeline(n_slots=2, slot_minutes=5.0)
    travel = TravelModel(velocity=1.0)  # one unit per minute
    workers = [
        Worker(id=i, location=Point(x, y), start=s, duration=WORKER_DEADLINE)
        for i, x, y, s in WORKERS
    ]
    tasks = [
        Task(id=i, location=Point(x, y), start=s, duration=TASK_DEADLINE)
        for i, x, y, s in TASKS
    ]
    return Instance(
        workers=workers, tasks=tasks, grid=grid, timeline=timeline, travel=travel,
        name="paper-example-1",
    )


def figure_1d_predictions(instance: Instance):
    """Figure 1(d)'s deliberately imperfect per-(slot, area) forecast.

    Mirrored area indices: 0 = paper Area 0 (where w1–w3 and r1, r2
    live), 1 = paper Area 1 (the future-task hotspot), 2 = paper Area 2,
    3 = paper Area 3 (where w4–w7 appear).
    """
    a = np.zeros((2, 4), dtype=np.int64)
    b = np.zeros((2, 4), dtype=np.int64)
    a[0, 0] = 2  # predicted workers, slot 0, paper Area 0 (3 actually come)
    a[0, 3] = 3  # predicted workers, slot 0, paper Area 3 (4 actually come)
    b[0, 0] = 1  # predicted tasks, slot 0, paper Area 0 (2 actually come)
    b[1, 1] = 3  # predicted tasks, slot 1, paper Area 1 (4 actually come)
    b[1, 2] = 1  # predicted tasks, slot 1, paper Area 2 (none comes)
    return a, b


def main() -> None:
    instance = build_example_instance()
    a, b = figure_1d_predictions(instance)
    guide = build_guide(
        a, b, instance.grid, instance.timeline, instance.travel,
        worker_duration=WORKER_DEADLINE, task_duration=TASK_DEADLINE,
    )
    print(f"Offline guide |E*| = {guide.matched_pairs} (Figure 2 computes 5)")
    print()

    greedy = run_simple_greedy(instance)
    print(f"{greedy.summary()}   <- Example 2 reports 2")
    polar = run_polar(instance, guide, node_choice="first")
    print(f"{polar.summary()}   <- Example 5 reports 4")
    polar_op = run_polar_op(instance, guide, node_choice="round_robin")
    print(f"{polar_op.summary()}   <- Example 6 reports 6 (5 or 6, tie-break dependent)")
    opt = run_opt(instance, method="exact")
    print(f"{opt.summary()}   <- Example 2's OPT reports 6")
    print()

    print("POLAR decision log (worker side):")
    for worker_id in sorted(polar.worker_decisions):
        decision = polar.worker_decisions[worker_id]
        extra = ""
        if decision.target_area is not None:
            extra = f" -> area {decision.target_area}"
        if decision.partner_id is not None:
            extra = f" with r{decision.partner_id + 1}"
        print(f"  w{worker_id + 1}: {decision.action}{extra}")
    print()

    audit = audit_outcome(instance, polar_op)
    print(
        f"Movement audit of POLAR-OP: {audit.feasible_pairs}/{audit.total_pairs} "
        f"pairs physically reach their task in time "
        f"(violation rate {audit.violation_rate:.0%})"
    )


if __name__ == "__main__":
    main()
