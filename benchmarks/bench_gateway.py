"""Serving-gateway benchmarks: sustained socket ingest and latency.

Drives a live :class:`~repro.serving.gateway.Gateway` over a real TCP
socket with the async load generator — JSON parse, queue hop, shard
routing, matcher decision and ack line all included — and asserts
correctness before reporting a time:

* the single-shard run must match the offline ``MatchingSession`` of the
  same stream bit-identically (same pairs);
* the sharded run's per-shard rows must sum to the totals.

``scripts/bench_snapshot.py`` runs the same probe at acceptance scale
(50k arrivals, ≥ 10k sustained arrivals/s) and archives the achieved
throughput and latency percentiles in ``BENCH_engine.json``.
"""

from __future__ import annotations

import asyncio

from repro.core.engine import GreedyMatcher, PolarMatcher
from repro.serving.gateway import Gateway
from repro.serving.loadgen import run_loadgen
from repro.serving.session import IteratorSource, MatchingSession

from bench_engine import _polar_setup


async def _drive_gateway(instance, events, matcher_factory, n_shards,
                         backend="inline"):
    gateway = Gateway(
        instance.grid,
        matcher_factory,
        n_shards=n_shards,
        queue_size=4096,
        backend=backend,
    )
    await gateway.start(port=0)
    report = await run_loadgen(events, port=gateway.tcp_port)
    snapshot = await gateway.close()
    return gateway, report, snapshot


def test_gateway_sustained_ingest(benchmark, bench_scale):
    """Single-shard TCP ingest; parity with the offline session."""
    n = max(500, int(25_000 * bench_scale))
    instance, guide = _polar_setup(n)
    events = instance.arrival_stream()

    result = benchmark.pedantic(
        lambda: asyncio.run(
            _drive_gateway(instance, events, lambda shard: PolarMatcher(guide), 1)
        ),
        rounds=1,
        iterations=1,
    )
    gateway, report, snapshot = result
    assert report.acked == len(events)
    assert snapshot.arrivals == len(events)
    reference = MatchingSession(PolarMatcher(guide), IteratorSource(events)).run()
    outcome = gateway.shard_outcomes()[0]
    assert outcome.matching.pairs() == reference.matching.pairs()
    print(
        f"\n[gateway ingest: {report.arrivals_per_sec:.0f} arrivals/s, "
        f"p50={report.latency_ms['p50']:.2f}ms "
        f"p99={report.latency_ms['p99']:.2f}ms]"
    )


def test_gateway_sharded_ingest(benchmark, bench_scale):
    """Four indexed-greedy shards: totals must equal the per-shard sums
    (greedy matches within each region, so sharding stays meaningful)."""
    n = max(500, int(25_000 * bench_scale))
    instance, _guide = _polar_setup(n)
    events = instance.arrival_stream()

    result = benchmark.pedantic(
        lambda: asyncio.run(
            _drive_gateway(
                instance,
                events,
                lambda shard: GreedyMatcher(
                    instance.travel, grid=instance.grid, indexed=True
                ),
                4,
            )
        ),
        rounds=1,
        iterations=1,
    )
    _gateway, report, snapshot = result
    assert report.acked == len(events)
    assert snapshot.n_shards == 4
    assert sum(row["arrivals"] for row in snapshot.shards) == len(events)
    assert sum(row["matched"] for row in snapshot.shards) == snapshot.matched
    print(
        f"\n[sharded ingest x4: {report.arrivals_per_sec:.0f} arrivals/s, "
        f"matched {snapshot.matched}]"
    )


def test_gateway_worker_pool_ingest(benchmark, bench_scale):
    """Two dense-greedy shards in forked worker processes versus the
    same two shards in-process: the worker pool must stay bit-identical
    (the parity gate) while buying real cores for the heavy matchers."""
    n = max(400, int(12_000 * bench_scale))
    instance, _guide = _polar_setup(n)
    events = instance.arrival_stream()

    def factory(shard):
        return GreedyMatcher(instance.travel, indexed=False)

    inline_gateway, inline_report, inline_snapshot = asyncio.run(
        _drive_gateway(instance, events, factory, 2, backend="inline")
    )

    result = benchmark.pedantic(
        lambda: asyncio.run(
            _drive_gateway(instance, events, factory, 2, backend="process")
        ),
        rounds=1,
        iterations=1,
    )
    gateway, report, snapshot = result
    assert report.acked == len(events)
    assert snapshot.worker_crashes == 0
    assert snapshot.matched == inline_snapshot.matched
    for pool_out, inline_out in zip(
        gateway.shard_outcomes(), inline_gateway.shard_outcomes()
    ):
        assert pool_out.matching.pairs() == inline_out.matching.pairs()
        assert pool_out.worker_decisions == inline_out.worker_decisions
        assert pool_out.task_decisions == inline_out.task_decisions
    speedup = report.arrivals_per_sec / inline_report.arrivals_per_sec
    print(
        f"\n[worker pool x2: {report.arrivals_per_sec:.0f} arrivals/s vs "
        f"{inline_report.arrivals_per_sec:.0f} in-process "
        f"({speedup:.2f}x), matched {snapshot.matched}, parity OK]"
    )
