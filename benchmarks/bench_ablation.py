"""Benchmarks for the ablation experiments (DESIGN.md §4, beyond the
paper's headline figures)."""

from __future__ import annotations

from repro.core.theory import polar_op_ratio, polar_ratio
from repro.experiments.ablations import (
    run_batch_window,
    run_competitive_ratio,
    run_guide_solvers,
    run_movement_audit,
    run_prediction_noise,
)
from repro.experiments.report import render_table
from repro.streams.synthetic import SyntheticConfig


def test_competitive_ratio(benchmark):
    """Empirical ALG/OPT vs the 0.40 / 0.47 theory constants."""
    config = SyntheticConfig(
        n_workers=800, n_tasks=800, grid_side=8, n_slots=8,
        task_duration_slots=2.0, worker_duration_slots=3.0,
    )
    result = benchmark.pedantic(
        lambda: run_competitive_ratio(n_draws=4, config=config),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result))
    print(f"theory: POLAR {polar_ratio():.4f}, POLAR-OP {polar_op_ratio():.4f}")
    assert result.get("POLAR", "mean ALG/OPT") > 0
    assert result.get("POLAR-OP", "theory bound") > result.get("POLAR", "theory bound")


def test_prediction_noise(benchmark, bench_scale):
    """Guide quality degrades gracefully; greedy eventually crosses over."""
    result = benchmark.pedantic(
        lambda: run_prediction_noise(scale=max(bench_scale, 0.02)),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result))
    clean = result.get("noise=0", "guide size")
    noisy = result.get("noise=2", "guide size")
    assert clean is not None and noisy is not None


def test_guide_solvers(benchmark, bench_scale):
    """Algorithm 1 backends agree on |E*|; costs/times differ."""
    result = benchmark.pedantic(
        lambda: run_guide_solvers(scale=max(bench_scale, 0.02)),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result))
    sizes = {result.get(m, "guide size") for m in ("dinic", "edmonds_karp", "mincost", "scipy")}
    assert len(sizes) == 1


def test_batch_window(benchmark, bench_scale):
    """GR's window-length sensitivity."""
    result = benchmark.pedantic(
        lambda: run_batch_window(scale=max(bench_scale, 0.02)),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result))
    assert result.get("0.5 min", "batches") >= result.get("30 min", "batches")


def test_movement_audit(benchmark, bench_scale):
    """Section 5.1's realisability assumption, quantified."""
    result = benchmark.pedantic(
        lambda: run_movement_audit(scale=max(bench_scale, 0.02)),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result))
    assert result.get("SimpleGreedy", "violation rate") == 0.0
    assert result.get("GR", "violation rate") == 0.0
