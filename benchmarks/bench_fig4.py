"""Benchmarks regenerating Figure 4 (synthetic |W|, |R|, Dr, grid sweeps).

Each benchmark runs the full sweep once (rounds=1 — a sweep is minutes at
paper scale, so statistical repetition happens across sweep points, not
rounds), asserts the figure's qualitative shape where it is
scale-invariant, and prints the same rows the paper plots.
"""

from __future__ import annotations

from repro.experiments.figures import (
    run_fig4_deadline,
    run_fig4_grids,
    run_fig4_tasks,
    run_fig4_workers,
)
from repro.experiments.report import render_sweep

ALGOS = ("SimpleGreedy", "GR", "POLAR", "POLAR-OP", "OPT")


def _run_once(benchmark, fn, scale):
    return benchmark.pedantic(
        lambda: fn(scale=scale, measure_memory=False, algorithms=ALGOS),
        rounds=1,
        iterations=1,
    )


def test_fig4_workers(benchmark, bench_scale):
    """Figure 4(a,e): matching size and time while |W| grows."""
    result = _run_once(benchmark, run_fig4_workers, bench_scale)
    print()
    print(render_sweep(result))
    sizes = result.series("OPT", "size")
    # More workers -> more feasible edges -> larger optimum.
    assert sizes[-1] >= sizes[0]
    assert len(result.x_values) == 5


def test_fig4_tasks(benchmark, bench_scale):
    """Figure 4(b,f): matching size and time while |R| grows."""
    result = _run_once(benchmark, run_fig4_tasks, bench_scale)
    print()
    print(render_sweep(result))
    sizes = result.series("OPT", "size")
    assert sizes[-1] >= sizes[0]


def test_fig4_deadline(benchmark, bench_scale):
    """Figure 4(c,g): every algorithm gains from looser deadlines."""
    result = _run_once(benchmark, run_fig4_deadline, bench_scale)
    print()
    print(render_sweep(result))
    for algorithm in ("SimpleGreedy", "OPT"):
        series = result.series(algorithm, "size")
        assert series[-1] >= series[0]


def test_fig4_grids(benchmark, bench_scale):
    """Figure 4(d,h): finer grids shrink per-area overlap."""
    result = _run_once(benchmark, run_fig4_grids, bench_scale)
    print()
    print(render_sweep(result))
    assert result.x_values == [20.0, 30.0, 50.0, 100.0, 200.0]
