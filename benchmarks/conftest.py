"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures at a small
scale through the same registry the CLI uses, asserts the result's
shape, and prints the rows.  ``BENCH_SCALE`` can be raised via the
``REPRO_BENCH_SCALE`` environment variable to approach paper scale.
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))


@pytest.fixture(scope="session")
def bench_scale():
    """The population scale benchmarks run at (default 0.02)."""
    return BENCH_SCALE
