"""Benchmarks regenerating Figure 6 (task distribution sweeps)."""

from __future__ import annotations

from repro.experiments.figures import (
    run_fig6_spatial_cov,
    run_fig6_spatial_mean,
    run_fig6_temporal_mu,
    run_fig6_temporal_sigma,
)
from repro.experiments.report import render_sweep

ALGOS = ("SimpleGreedy", "GR", "POLAR", "POLAR-OP", "OPT")
X_VALUES = [0.25, 0.375, 0.5, 0.625, 0.75]


def _run(benchmark, fn, scale):
    result = benchmark.pedantic(
        lambda: fn(scale=scale, measure_memory=False, algorithms=ALGOS),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep(result))
    assert result.x_values == X_VALUES
    return result


def test_fig6_mu(benchmark, bench_scale):
    """Figure 6(a,e): matching size is insensitive to the temporal mean."""
    _run(benchmark, run_fig6_temporal_mu, bench_scale)


def test_fig6_sigma(benchmark, bench_scale):
    """Figure 6(b,f): temporal spread sweep."""
    _run(benchmark, run_fig6_temporal_sigma, bench_scale)


def test_fig6_mean(benchmark, bench_scale):
    """Figure 6(c,g): the farther the task centre, the smaller the
    wait-in-place matching."""
    result = _run(benchmark, run_fig6_spatial_mean, bench_scale)
    greedy = result.series("SimpleGreedy", "size")
    # At mean=0.25 tasks sit on top of the workers (no dispatch needed);
    # at 0.75 they are far away: greedy must lose ground.
    assert greedy[0] >= greedy[-1]


def test_fig6_cov(benchmark, bench_scale):
    """Figure 6(d,h): spatial covariance sweep."""
    _run(benchmark, run_fig6_spatial_cov, bench_scale)
