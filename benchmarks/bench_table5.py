"""Benchmark regenerating Table 5 (the seven-predictor shoot-out)."""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.tables import run_table5
from repro.prediction import ALL_PREDICTORS


def test_table5(benchmark, bench_scale):
    """Seven predictors x 2 cities x {task, worker} x {RMSLE, ER}.

    The benchmark runs at a reduced volume scale and short history; the
    EXPERIMENTS.md numbers use longer histories.  The structural check —
    HP-MSI at or near the top — holds across scales because the weather
    and weekday structure it exploits is scale-free.
    """
    scale = max(bench_scale * 10, 0.1)  # prediction needs non-trivial counts
    result = benchmark.pedantic(
        lambda: run_table5(scale=scale, history_days=14, n_eval_days=1),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(result))
    assert set(result.row_labels) == set(ALL_PREDICTORS)
    assert len(result.column_labels) == 8  # 2 metrics x 2 sides x 2 cities
    # HP-MSI should be at or near the best ER on the task side.
    er_column = "ER task beijing"
    scores = {row: result.get(row, er_column) for row in result.row_labels}
    best = min(scores.values())
    assert scores["HP-MSI"] <= best * 1.35
