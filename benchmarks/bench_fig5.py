"""Benchmarks regenerating Figure 5 (slots, scalability, the two cities)."""

from __future__ import annotations

from repro.experiments.figures import run_fig5_city, run_fig5_scalability, run_fig5_slots
from repro.experiments.report import render_sweep

ALGOS = ("SimpleGreedy", "GR", "POLAR", "POLAR-OP", "OPT")


def test_fig5_slots(benchmark, bench_scale):
    """Figure 5(a,e): more slots -> thinner types -> smaller matchings."""
    result = benchmark.pedantic(
        lambda: run_fig5_slots(scale=bench_scale, measure_memory=False, algorithms=ALGOS),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep(result))
    assert result.x_values == [12.0, 24.0, 48.0, 96.0, 144.0]


def test_fig5_scalability(benchmark, bench_scale):
    """Figure 5(b,f): POLAR's per-arrival O(1) keeps its time near-flat."""
    scale = min(bench_scale, 0.005)  # 1k .. 5k objects in the default bench
    result = benchmark.pedantic(
        lambda: run_fig5_scalability(
            scale=scale, measure_memory=False,
            algorithms=("SimpleGreedy", "POLAR", "POLAR-OP", "OPT"),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep(result))
    polar_times = result.series("POLAR", "seconds")
    greedy_times = result.series("SimpleGreedy", "seconds")
    # POLAR scales linearly with arrivals while greedy grows
    # super-linearly: at 5x the load POLAR must not have grown faster
    # than greedy did.
    polar_growth = polar_times[-1] / max(polar_times[0], 1e-9)
    greedy_growth = greedy_times[-1] / max(greedy_times[0], 1e-9)
    assert polar_growth <= greedy_growth * 2.0


def test_fig5_beijing(benchmark, bench_scale):
    """Figure 5(c,g): Dr sweep on the Beijing stand-in, HP-MSI-fed guide."""
    result = benchmark.pedantic(
        lambda: run_fig5_city(
            "beijing", scale=bench_scale, measure_memory=False, history_days=10
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep(result))
    opt = result.series("OPT", "size")
    assert opt[-1] >= opt[0]  # looser deadlines help


def test_fig5_hangzhou(benchmark, bench_scale):
    """Figure 5(d,h): the Hangzhou stand-in."""
    result = benchmark.pedantic(
        lambda: run_fig5_city(
            "hangzhou", scale=bench_scale, measure_memory=False, history_days=10
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep(result))
    assert result.notes["predictor"] == "HP-MSI"
