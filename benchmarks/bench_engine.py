"""Engine microbenchmarks: the POLAR event loop, CellIndex queries, the
session layer, and serial-vs-parallel sweep execution.

These benchmark the *harness* rather than a paper figure: the vectorized
typing pass + tight event loop against the per-event legacy path, the
occupied-bbox ring search against a sparse worst case, and the
``SweepExecutor`` fan-out against its own serial mode.  Parity (identical
matchings) is asserted inside every benchmark, so a speedup can never be
bought with a wrong answer.  ``scripts/bench_snapshot.py`` runs the same
probes at acceptance scale and archives them in ``BENCH_engine.json``.
"""

from __future__ import annotations

import os
import random

from repro.core.cellindex import CellIndex
from repro.core.guide import build_guide
from repro.core.polar import run_polar
from repro.core.tgoa import run_tgoa
from repro.experiments.figures import run_fig4_workers
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.streams.oracle import exact_oracle
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator

BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", str(min(4, os.cpu_count() or 1))))


def _polar_setup(n_per_side: int):
    config = SyntheticConfig(n_workers=n_per_side, n_tasks=n_per_side)
    generator = SyntheticGenerator(config)
    instance = generator.generate()
    worker_counts, task_counts = exact_oracle(generator)
    slot_minutes = generator.timeline.slot_minutes
    guide = build_guide(
        worker_counts,
        task_counts,
        generator.grid,
        generator.timeline,
        generator.travel,
        config.worker_duration_slots * slot_minutes,
        config.task_duration_slots * slot_minutes,
    )
    return instance, guide


def test_polar_event_loop(benchmark, bench_scale):
    """The optimized POLAR loop (cached typing, inline occupancy)."""
    n = max(2_000, int(50_000 * bench_scale))
    instance, guide = _polar_setup(n)
    instance.typed_arrivals()  # warm the shared cache once
    fast = benchmark.pedantic(
        lambda: run_polar(instance, guide), rounds=3, iterations=1
    )
    # Parity with the per-event fallback path (explicit stream).
    slow = run_polar(instance, guide, stream=list(instance.arrival_stream()))
    assert fast.matching.pairs() == slow.matching.pairs()
    print(f"\n[polar loop: {2 * n} arrivals, matched {fast.size}]")


def test_polar_event_loop_legacy_path(benchmark, bench_scale):
    """The per-event typing fallback — the seed implementation's cost
    model (stream rebuilt and typed per run).  Compare against
    ``test_polar_event_loop`` for the single-core speedup."""
    n = max(2_000, int(50_000 * bench_scale))
    instance, guide = _polar_setup(n)
    stream = list(instance.arrival_stream())
    benchmark.pedantic(
        lambda: run_polar(instance, guide, stream=stream), rounds=3, iterations=1
    )


def test_cellindex_sparse_queries(benchmark):
    """Ring queries on a sparse 200×200 grid — the occupied-bbox cutoff
    turns the old full-grid ring walk into O(occupied extent)."""
    rng = random.Random(11)
    grid = Grid.square(200)
    index = CellIndex(grid)
    live = {}
    for ident in range(64):
        p = Point(rng.uniform(0, 25), rng.uniform(0, 25))
        index.add(ident, p)
        live[ident] = p
    origins = [Point(rng.uniform(0, 200), rng.uniform(0, 200)) for _ in range(300)]

    def query_all():
        total = 0
        for origin in origins:
            total += len(index.within(origin, 40.0))
            index.nearest_feasible(origin, lambda _i, _d: True, 40.0)
        return total

    total = benchmark.pedantic(query_all, rounds=3, iterations=1)
    brute = sum(
        1
        for origin in origins
        for p in live.values()
        if origin.distance_to(p) <= 40.0
    )
    assert total == brute


def test_tgoa_indexed_vs_dense(benchmark):
    """TGOA with persistent cell indexes; parity with the dense scan."""
    config = SyntheticConfig(
        n_workers=400, n_tasks=400, grid_side=50, n_slots=12, seed=5
    )
    instance = SyntheticGenerator(config).generate()
    indexed = benchmark.pedantic(
        lambda: run_tgoa(instance, indexed=True), rounds=3, iterations=1
    )
    dense = run_tgoa(instance, indexed=False)
    assert indexed.matching.pairs() == dense.matching.pairs()


def test_session_bulk_fast_path(benchmark, bench_scale):
    """MatchingSession over an InstanceSource — the routed harness path.
    Must track the bare adapter (same hot loop, one extra call)."""
    from repro.core.engine import PolarMatcher
    from repro.serving.session import InstanceSource, MatchingSession

    n = max(2_000, int(50_000 * bench_scale))
    instance, guide = _polar_setup(n)
    instance.typed_arrivals()  # warm the shared cache once
    session = MatchingSession(PolarMatcher(guide), InstanceSource(instance))
    outcome = benchmark.pedantic(session.run, rounds=3, iterations=1)
    reference = run_polar(instance, guide)
    assert outcome.matching.pairs() == reference.matching.pairs()


def test_session_stepwise_serving(benchmark, bench_scale):
    """Per-arrival observe() — what a live serving loop pays per event.
    Parity with the bulk path is asserted; compare the time against
    ``test_session_bulk_fast_path`` for the stepwise overhead."""
    from repro.core.engine import PolarMatcher
    from repro.serving.session import IteratorSource, MatchingSession

    n = max(2_000, int(20_000 * bench_scale))
    instance, guide = _polar_setup(n)
    session = MatchingSession(
        PolarMatcher(guide), IteratorSource(instance.arrival_stream())
    )
    outcome = benchmark.pedantic(session.run, rounds=3, iterations=1)
    reference = run_polar(instance, guide)
    assert outcome.matching.pairs() == reference.matching.pairs()


def test_sweep_serial_vs_parallel(benchmark, bench_scale):
    """One fig4 sweep through the SweepExecutor pool; asserts parity with
    the serial run.  Wall-clock gains need real cores — the snapshot
    records the host's count."""
    algorithms = ("SimpleGreedy", "GR", "POLAR", "POLAR-OP", "OPT")
    parallel = benchmark.pedantic(
        lambda: run_fig4_workers(
            scale=bench_scale,
            measure_memory=False,
            algorithms=algorithms,
            jobs=BENCH_JOBS,
        ),
        rounds=1,
        iterations=1,
    )
    serial = run_fig4_workers(
        scale=bench_scale, measure_memory=False, algorithms=algorithms, jobs=1
    )
    for algorithm in algorithms:
        assert parallel.series(algorithm, "size") == serial.series(algorithm, "size")
    print(f"\n[sweep parity ok at jobs={BENCH_JOBS}]")


def test_churn_stream_throughput(benchmark, bench_scale):
    """Matcher throughput over a 10%-churn stream (stepwise sessions).

    Churn events flow through the matchers' eager purge/reindex paths;
    the probe asserts the churn run completes with every counter sane
    and never out-matches the churn-free run.
    """
    from repro.core.engine import GreedyMatcher
    from repro.serving.session import IteratorSource, MatchingSession
    from repro.streams.churn import ChurnConfig

    n = max(1_000, int(10_000 * bench_scale))
    config = SyntheticConfig(
        n_workers=n, n_tasks=n, grid_side=30, n_slots=12, seed=5
    )
    instance = SyntheticGenerator(config).generate()
    # Departure-only churn: departures strictly remove matching
    # opportunity, so the probe can assert non-increase; uniform moves
    # would give objects second chances and can raise greedy matching.
    stream = instance.churn_stream(ChurnConfig(departure_rate=0.1, seed=1))

    def run_churned():
        session = MatchingSession(
            GreedyMatcher(instance.travel, grid=instance.grid, indexed=True),
            IteratorSource(stream),
        )
        return session.run()

    churned = benchmark.pedantic(run_churned, rounds=3, iterations=1)
    clean = MatchingSession(
        GreedyMatcher(instance.travel, grid=instance.grid, indexed=True),
        IteratorSource(instance.arrival_stream()),
    ).run()
    assert churned.departed_workers + churned.departed_tasks > 0
    assert churned.matching.size <= clean.matching.size
    print(
        f"\n[churn: {len(stream)} events, matched {churned.matching.size} "
        f"vs {clean.matching.size} churn-free]"
    )
