"""Exception hierarchy for the FTOA reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers embedding the library can catch one base class.  Subclasses are
deliberately fine-grained: configuration mistakes, infeasible model
constructions and algorithmic misuse are different failure modes and
deserve different handling upstream.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InvalidEntityError",
    "GridError",
    "TimelineError",
    "GraphError",
    "FlowError",
    "MatchingError",
    "PredictionError",
    "SimulationError",
    "ExperimentError",
    "GatewayError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """A parameter object or experiment configuration is invalid."""


class InvalidEntityError(ReproError):
    """A worker or task was constructed with inconsistent attributes."""


class GridError(ReproError):
    """A spatial grid operation received an out-of-range location or index."""


class TimelineError(ReproError):
    """A time-slot operation received an out-of-range instant or slot index."""


class GraphError(ReproError):
    """A flow network or bipartite graph was built or queried incorrectly."""


class FlowError(GraphError):
    """A max-flow / min-cost flow computation was asked for something invalid."""


class MatchingError(ReproError):
    """A matching violates its one-to-one or feasibility invariants."""


class PredictionError(ReproError):
    """A predictor was fit or queried with inconsistent data."""


class SimulationError(ReproError):
    """The online simulation engine detected an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment run failed."""


class GatewayError(ReproError):
    """The serving gateway was misused (push after drain, full queue, …)."""
