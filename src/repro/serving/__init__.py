"""The streaming session layer: drive matchers from any event source.

* :mod:`repro.serving.session` — :class:`MatchingSession`, the driver
  that feeds one :class:`repro.core.engine.Matcher` from an event source
  (a pregenerated :class:`~repro.model.instance.Instance`, a live
  generator, or any iterator of stream events — arrivals plus
  ``Departure`` / ``Move`` churn) with mid-stream metric snapshots.
* :mod:`repro.serving.replay` — JSONL event-stream codec (arrival,
  departure and move records) and the ``repro replay`` / ``repro dump``
  CLI drivers.
* :mod:`repro.serving.forecast` — forecast-driven guides: fit a
  :mod:`repro.prediction` model on a history JSONL instead of the
  perfect-hindsight self-guide (``repro replay --guide from-forecast``).
* :mod:`repro.serving.shard` — consistent spatial hashing of grid cells
  to per-shard sessions, the :class:`ShardBackend` execution protocol
  (inline vs worker-pool shards), and per-shard guide construction
  (:func:`build_shard_guides`).
* :mod:`repro.serving.gateway` — the asyncio serving gateway: JSONL
  ingest over TCP/unix sockets and an in-process queue, sharded
  sessions, bounded backpressure, graceful drain, and the
  ``/metrics`` + ``/snapshot`` HTTP endpoint (``repro serve``).
* :mod:`repro.serving.workers` + :mod:`repro.serving.ipc` — the
  multi-process shard backend: one forked worker process per shard
  behind length-prefixed pickle pipes (``repro serve --workers N``),
  bit-identical to the inline backend at equal shard counts; a
  :class:`WorkerSupervisor` restores crashed/hung workers from
  checkpoints + journal replay (still bit-identical) and degrades
  cleanly past the restart cap.
* :mod:`repro.serving.faults` — declarative fault injection for chaos
  runs (``repro serve --fault-plan``, ``gateway_smoke.py --chaos``).
* :mod:`repro.serving.loadgen` — the async load generator that replays
  JSONL or synthetic streams against a gateway and reports throughput
  and latency percentiles (``repro loadgen``).
* :mod:`repro.serving.telemetry` — stage-level pipeline tracing: sampled
  monotonic-ns stamps carried across the process boundary, fixed
  log2-bucket latency histograms (Prometheus ``histogram`` series +
  ``/snapshot`` rollups), and a bounded trace recorder exported as
  Chrome ``trace_event`` JSON (``repro serve --trace``, ``/trace``).

This is the seam a traffic-serving deployment plugs into: the experiment
harness (:mod:`repro.experiments.runner`) routes its per-cell algorithm
executions through the same session the CLI replay uses, so batch
reproduction and stepwise serving can never drift apart.
"""

from repro.serving.gateway import Gateway, GatewaySnapshot, render_prometheus
from repro.serving.loadgen import LoadgenReport, loadgen, run_loadgen
from repro.serving.replay import (
    dump_stream,
    event_to_record,
    load_stream,
    record_to_event,
)
from repro.serving.session import (
    EventSource,
    InstanceSource,
    IteratorSource,
    MatchingSession,
    SessionSnapshot,
    as_source,
)
from repro.serving.shard import (
    InlineShardBackend,
    Shard,
    ShardBackend,
    ShardRouter,
    SpatialHashRing,
    build_shard_guides,
    build_shards,
    split_counts_by_shard,
)
from repro.serving.faults import FaultInjector, FaultPlan, FaultSpec
from repro.serving.telemetry import (
    STAGES,
    LatencyHistogram,
    Stamped,
    Stamps,
    Telemetry,
    TraceRecorder,
)
from repro.serving.workers import ShardOutcome, WorkerPool, WorkerSupervisor

_LAZY_FORECAST = (
    "forecast_guide",
    "forecast_counts",
    "history_from_stream",
    "forecast_volume",
    "forecast_halfway",
)


def __getattr__(name):
    """Lazy forecast exports (PEP 562).

    ``repro.serving.forecast`` drags the whole :mod:`repro.prediction`
    stack along; only ``--guide from-forecast`` needs it, so plain
    ``import repro.serving`` (every serve/loadgen/replay run) must not
    pay that import cost.
    """
    if name in _LAZY_FORECAST:
        from repro.serving import forecast

        return getattr(forecast, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "MatchingSession",
    "SessionSnapshot",
    "EventSource",
    "InstanceSource",
    "IteratorSource",
    "as_source",
    "dump_stream",
    "load_stream",
    "event_to_record",
    "record_to_event",
    "forecast_guide",
    "forecast_counts",
    "history_from_stream",
    "forecast_volume",
    "forecast_halfway",
    "Gateway",
    "GatewaySnapshot",
    "render_prometheus",
    "LoadgenReport",
    "loadgen",
    "run_loadgen",
    "Shard",
    "ShardBackend",
    "InlineShardBackend",
    "ShardRouter",
    "SpatialHashRing",
    "WorkerPool",
    "WorkerSupervisor",
    "ShardOutcome",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "Telemetry",
    "Stamps",
    "Stamped",
    "STAGES",
    "LatencyHistogram",
    "TraceRecorder",
    "build_shards",
    "build_shard_guides",
    "split_counts_by_shard",
]
