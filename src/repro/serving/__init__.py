"""The streaming session layer: drive matchers from any event source.

* :mod:`repro.serving.session` — :class:`MatchingSession`, the driver
  that feeds one :class:`repro.core.engine.Matcher` from an event source
  (a pregenerated :class:`~repro.model.instance.Instance`, a live
  generator, or any iterator of arrivals) with mid-stream metric
  snapshots.
* :mod:`repro.serving.replay` — JSONL arrival-stream codec and the
  ``repro replay`` / ``repro dump`` CLI drivers.

This is the seam a traffic-serving deployment plugs into: the experiment
harness (:mod:`repro.experiments.runner`) routes its per-cell algorithm
executions through the same session the CLI replay uses, so batch
reproduction and stepwise serving can never drift apart.
"""

from repro.serving.replay import dump_stream, load_stream
from repro.serving.session import (
    EventSource,
    InstanceSource,
    IteratorSource,
    MatchingSession,
    SessionSnapshot,
    as_source,
)

__all__ = [
    "MatchingSession",
    "SessionSnapshot",
    "EventSource",
    "InstanceSource",
    "IteratorSource",
    "as_source",
    "dump_stream",
    "load_stream",
]
