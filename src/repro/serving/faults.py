"""Fault injection for the worker-pool backend: declarative chaos.

Self-healing code that has never watched a worker die is a hypothesis,
not a property.  This module is the declarative half of the chaos
harness: a :class:`FaultPlan` describes *what* should go wrong inside
which shard worker and when, and :func:`~repro.serving.workers.shard_worker_main`
applies it (the imperative half — kills, sleeps, torn writes — lives
with the worker loop, next to the I/O it corrupts).  Plans ride into
the children through ``fork``, so nothing here needs to be picklable
or to exist on the wire.

Actions (all fire on the Nth ``EVENT`` frame a worker *incarnation*
receives, counted from 1):

* ``kill`` — ``SIGKILL`` self before processing the event: the classic
  crash, the event unacked and unprocessed.
* ``torn`` — process the event, write *half* of its ack frame, then
  ``SIGKILL`` self: a crash mid-frame-write, the parent sees a frame
  torn at an arbitrary byte boundary.
* ``hang`` — sleep ``seconds`` (default: effectively forever) before
  processing: the worker is alive but unresponsive, the shape a
  ``SIGSTOP`` or a deadlock takes; only the supervisor's heartbeat
  timeout can clear it.
* ``delay`` — sleep ``seconds`` then continue normally: transient
  slowness that must *not* trigger recovery.
* ``drop`` — discard the event frame (no processing, no ack): the next
  reply's sequence number exposes the desync.
* ``corrupt`` — process the event but reply with an undecodable frame:
  the parent's unpickle guard treats the stream as lost.

Every action fires on both transports.  On the shared-memory transport
(``transport="shm"``) the two wire-corruption actions change shape but
not meaning: an unpublished ring slot is invisible to the parent, so
``torn`` publishes a *poisoned* slot (a reserved kind byte standing in
for a record scribbled over mid-write) and then ``SIGKILL``\\ s, and
``corrupt`` publishes the same poisoned slot and keeps running.  The
parent's codec rejects the slot with the same
:class:`~repro.errors.GatewayError` the pipe path raises for an
undecodable frame, so recovery is transport-blind.

Sticky specs (``sticky=True``) are inherited by replacement workers
after a restart, so a restart-storm (crash → restart → crash …) can be
scripted to prove the restart cap and degraded mode; non-sticky specs
fire once, in the first incarnation only, which is what bit-identical
recovery tests want.

The CLI / smoke-script grammar (:meth:`FaultPlan.parse`)::

    kill:shard=0,at=50
    kill:shard=0,at=5,sticky;delay:shard=1,at=10,seconds=0.2

— ``;``-separated specs, each ``action[:key=value,...]`` with keys
``at`` (event ordinal, default 1), ``shard`` (default: every shard),
``seconds`` and the bare ``sticky`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import GatewayError

__all__ = ["FaultSpec", "FaultPlan", "FaultInjector"]

ACTIONS = ("kill", "torn", "hang", "delay", "drop", "corrupt")

# "hang" means "until the supervisor loses patience", so the default
# sleep only has to outlast any plausible heartbeat timeout.
_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault inside one worker incarnation.

    Attributes:
        action: one of :data:`ACTIONS`.
        at: the 1-based ordinal of the ``EVENT`` frame that triggers it,
            counted per incarnation (a replayed stream re-counts from 1).
        shard: restrict to one shard id (None = every shard).
        seconds: sleep length for ``hang`` / ``delay``.
        sticky: replacement workers inherit the spec after a restart.
    """

    action: str
    at: int = 1
    shard: Optional[int] = None
    seconds: float = _HANG_SECONDS
    sticky: bool = False

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise GatewayError(
                f"unknown fault action {self.action!r}; "
                f"use one of {', '.join(ACTIONS)}"
            )
        if self.at < 1:
            raise GatewayError(f"fault 'at' must be >= 1, got {self.at}")
        if self.seconds < 0:
            raise GatewayError(
                f"fault 'seconds' must be >= 0, got {self.seconds}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A set of :class:`FaultSpec`\\ s for one serving run."""

    specs: Tuple[FaultSpec, ...]

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI grammar (see the module docstring).

        Raises:
            GatewayError: for an empty plan, an unknown action or key,
                or an unparsable value.
        """
        specs: List[FaultSpec] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            action, _, rest = chunk.partition(":")
            kwargs = {}
            for pair in (p.strip() for p in rest.split(",") if p.strip()):
                key, sep, value = pair.partition("=")
                key = key.strip()
                value = value.strip()
                try:
                    if key == "at":
                        kwargs["at"] = int(value)
                    elif key == "shard":
                        kwargs["shard"] = int(value)
                    elif key == "seconds":
                        kwargs["seconds"] = float(value)
                    elif key == "sticky":
                        kwargs["sticky"] = (
                            True
                            if not sep
                            else value.lower() in ("1", "true", "yes")
                        )
                    else:
                        raise GatewayError(
                            f"unknown fault key {key!r} in {chunk!r}"
                        )
                except ValueError as exc:
                    raise GatewayError(
                        f"bad fault value {pair!r} in {chunk!r}: {exc}"
                    ) from exc
            specs.append(FaultSpec(action=action.strip(), **kwargs))
        if not specs:
            raise GatewayError(f"empty fault plan: {text!r}")
        return cls(tuple(specs))

    def for_shard(
        self, shard_id: int, incarnation: int = 0
    ) -> Tuple[FaultSpec, ...]:
        """The specs one worker incarnation should apply.

        The first incarnation (``incarnation=0``) gets every spec aimed
        at its shard; replacements get only the sticky ones.
        """
        return tuple(
            spec
            for spec in self.specs
            if (spec.shard is None or spec.shard == shard_id)
            and (incarnation == 0 or spec.sticky)
        )

    def describe(self) -> str:
        """One human-readable line (the serve banner)."""
        parts = []
        for spec in self.specs:
            where = "all shards" if spec.shard is None else f"shard {spec.shard}"
            sticky = ", sticky" if spec.sticky else ""
            parts.append(f"{spec.action}@{spec.at} ({where}{sticky})")
        return "; ".join(parts)

    def __bool__(self) -> bool:
        return bool(self.specs)


class FaultInjector:
    """Worker-side trigger: counts ``EVENT`` frames, pops firing specs.

    Each spec fires at most once per incarnation; when several specs
    share an ordinal, the first in plan order wins for that event and
    the rest keep waiting (they can never fire again at that ordinal,
    by construction — plans should use distinct ordinals).
    """

    def __init__(self, specs: Tuple[FaultSpec, ...]) -> None:
        self._specs = list(specs)
        self._count = 0

    def next_event_fault(self) -> Optional[FaultSpec]:
        """Advance the event counter; return the spec firing now, if any."""
        self._count += 1
        for index, spec in enumerate(self._specs):
            if spec.at == self._count:
                del self._specs[index]
                return spec
        return None
