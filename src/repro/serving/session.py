"""The matching session: one matcher, one event stream, live metrics.

FTOA's online model is a platform observing "a single totally-ordered
stream of arrivals" (Definition 4).  :class:`MatchingSession` is that
platform loop, decoupled from where arrivals come from:

* a pregenerated :class:`~repro.model.instance.Instance` (the experiment
  harness's case — :class:`InstanceSource`);
* any iterator of :data:`~repro.model.events.StreamEvent` objects —
  arrivals plus churn (``Departure`` / ``Move``) — from a live generator
  in :mod:`repro.streams`, a JSONL replay (:mod:`repro.serving.replay`),
  or a network feed (:class:`IteratorSource`);
* or no source at all: the push API (:meth:`MatchingSession.begin` /
  :meth:`~MatchingSession.push` / :meth:`~MatchingSession.finish`) lets a
  caller hand events over one by one as they happen.

Sessions sample :class:`SessionSnapshot` metrics mid-stream (every
``snapshot_every`` arrivals, plus a final end-of-stream sample when it
adds information), so long replays report progress without waiting for
the final outcome.

Performance: when the source is an :class:`InstanceSource` whose
discretisation matches a typed matcher's guide, :meth:`MatchingSession.
run` feeds the matcher's bulk ``consume_typed`` loop from the instance's
cached vectorized typing pass — the exact hot path the ``run_*``
adapters use, so routing the experiment harness through sessions costs
nothing.  Stepwise feeding (``push`` or a bare iterator) runs the same
loop one arrival at a time; the snapshot in ``BENCH_engine.json``
quantifies the per-arrival overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Union

from repro.core.engine import Matcher, TypedMatcher
from repro.core.outcome import AssignmentOutcome, Decision
from repro.errors import ConfigurationError
from repro.model.events import ARRIVAL, Arrival, StreamEvent
from repro.model.instance import Instance

__all__ = [
    "SessionSnapshot",
    "EventSource",
    "InstanceSource",
    "IteratorSource",
    "MatchingSession",
    "as_source",
]


@dataclass(frozen=True)
class SessionSnapshot:
    """Point-in-time metrics of a running (or finished) session.

    Attributes:
        arrivals: arrivals observed so far (churn events not included).
        workers / tasks: per-kind arrival counts.
        matched: committed pairs so far.
        ignored_workers / ignored_tasks: objects with no guide node.
        departed: objects that left unmatched via churn departures.
        moves: effective churn relocations observed.
        stream_time: the last observed event's platform time (None
            before the first event).
        wall_seconds: wall-clock seconds since the session began.
        profile: the matcher's :class:`~repro.core.engine.
            MatcherProfile` counters (ring expansions, pool scans,
            bipartite build sizes) as a dict, or None while all zero —
            the serving stack surfaces these per shard.
    """

    arrivals: int
    workers: int
    tasks: int
    matched: int
    ignored_workers: int
    ignored_tasks: int
    stream_time: Optional[float]
    wall_seconds: float
    departed: int = 0
    moves: int = 0
    profile: Optional[dict] = None

    def summary(self) -> str:
        """One human-readable progress line."""
        when = "-" if self.stream_time is None else f"{self.stream_time:g}"
        churn = (
            f" departed={self.departed} moves={self.moves}"
            if self.departed or self.moves
            else ""
        )
        return (
            f"[t={when} arrivals={self.arrivals} "
            f"(w={self.workers}, r={self.tasks}) matched={self.matched} "
            f"ignored={self.ignored_workers}/{self.ignored_tasks}"
            f"{churn} wall={self.wall_seconds:.2f}s]"
        )


# ---------------------------------------------------------------------- #
# Event sources
# ---------------------------------------------------------------------- #


class IteratorSource:
    """Any iterable of arrivals: a live generator, a replay, a feed.

    The iterable is consumed once per :meth:`MatchingSession.run`; pass a
    re-iterable (list) if the session will be run repeatedly.
    """

    def __init__(self, events: Iterable[StreamEvent]) -> None:
        self._events = events

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self._events)


class InstanceSource(IteratorSource):
    """The canonical (or overridden) arrival stream of an instance.

    Keeping the instance visible lets the session use its cached
    vectorized typing pass for typed matchers — bit-identical to the
    per-arrival path, much faster.
    """

    def __init__(
        self, instance: Instance, stream: Optional[Iterable[Arrival]] = None
    ) -> None:
        self.instance = instance
        self.stream = stream

    def __iter__(self) -> Iterator[Arrival]:
        if self.stream is None:
            return iter(self.instance.arrival_stream())
        return iter(self.stream)


EventSource = Union[InstanceSource, IteratorSource]


def as_source(events) -> EventSource:
    """Coerce an instance or an iterable of arrivals into a source."""
    if isinstance(events, (InstanceSource, IteratorSource)):
        return events
    if isinstance(events, Instance):
        return InstanceSource(events)
    return IteratorSource(events)


def _progressed(last: SessionSnapshot, current: SessionSnapshot) -> bool:
    """Whether ``current`` adds information over ``last`` (wall time
    alone doesn't count)."""
    return (
        current.arrivals != last.arrivals
        or current.matched != last.matched
        or current.workers != last.workers
        or current.tasks != last.tasks
        or current.ignored_workers != last.ignored_workers
        or current.ignored_tasks != last.ignored_tasks
        or current.departed != last.departed
        or current.moves != last.moves
    )


# ---------------------------------------------------------------------- #
# The session
# ---------------------------------------------------------------------- #


class MatchingSession:
    """Drives one matcher over one arrival stream.

    Two usage styles:

    * **pull** — construct with a source and call :meth:`run`; the
      session consumes the whole stream and returns the outcome.
    * **push** — construct with ``source=None``, then call
      :meth:`begin`, :meth:`push` per arrival, and :meth:`finish`.

    Args:
        matcher: the algorithm, as an incremental
            :class:`~repro.core.engine.Matcher`.
        source: an :class:`~repro.model.instance.Instance`, an iterable
            of arrivals, or None for push-style use.
        snapshot_every: sample a :class:`SessionSnapshot` every N
            arrivals (recorded in :attr:`snapshots`; None disables
            periodic sampling).  :meth:`finish` records a final snapshot
            when sampling or a callback is configured, unless it would
            exactly duplicate the last periodic one.
        on_snapshot: optional callback invoked with each snapshot.

    Raises:
        ConfigurationError: for a non-positive ``snapshot_every``.
    """

    def __init__(
        self,
        matcher: Matcher,
        source=None,
        snapshot_every: Optional[int] = None,
        on_snapshot: Optional[Callable[[SessionSnapshot], None]] = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every <= 0:
            raise ConfigurationError(
                f"snapshot_every must be positive, got {snapshot_every}"
            )
        self.matcher = matcher
        self.source: Optional[EventSource] = (
            None if source is None else as_source(source)
        )
        self.snapshot_every = snapshot_every
        self.on_snapshot = on_snapshot
        self.snapshots: List[SessionSnapshot] = []
        self.outcome: Optional[AssignmentOutcome] = None
        self._arrivals = 0
        self._last_time: Optional[float] = None
        self._started: Optional[float] = None

    # -- push API ------------------------------------------------------ #

    def begin(self) -> None:
        """Start (or restart) the session and its matcher."""
        self.matcher.begin()
        self.snapshots = []
        self.outcome = None
        self._arrivals = 0
        self._last_time = None
        self._started = time.perf_counter()

    def push(self, event: StreamEvent) -> Decision:
        """Feed one stream event; returns the matcher's decision.

        Accepts the full event union — arrivals and churn
        (``Departure`` / ``Move``).  Only arrivals advance the arrival
        counter (and therefore the periodic snapshot cadence); churn
        events still advance :attr:`SessionSnapshot.stream_time`.

        Raises:
            SimulationError: for a churn event referencing an object the
                matcher never saw arrive.
        """
        decision = self.matcher.observe(event)
        is_arrival = event.event_kind is ARRIVAL
        if is_arrival:
            self._arrivals += 1
        self._last_time = event.time
        every = self.snapshot_every
        if every is not None and is_arrival and self._arrivals % every == 0:
            self._emit()
        return decision

    def finish(self) -> AssignmentOutcome:
        """Close the stream; flushes end-of-stream work, final snapshot.

        The final snapshot is skipped when it would duplicate the last
        periodic one (a stream whose length is an exact multiple of
        ``snapshot_every`` and a matcher whose ``finish`` commits
        nothing new); end-of-stream flushes (GR's window drain) always
        surface.
        """
        self.outcome = self.matcher.finish()
        if self.snapshot_every is not None or self.on_snapshot is not None:
            snapshot = self.snapshot()
            if not self.snapshots or _progressed(self.snapshots[-1], snapshot):
                self.snapshots.append(snapshot)
                if self.on_snapshot is not None:
                    self.on_snapshot(snapshot)
        return self.outcome

    # -- pull API ------------------------------------------------------ #

    def run(self) -> AssignmentOutcome:
        """Consume the whole source and return the outcome.

        Sessions are restartable: each ``run`` begins a fresh matcher
        run, so repeated calls on a re-iterable source (an instance)
        produce identical outcomes.
        """
        if self.source is None:
            raise ConfigurationError(
                "session has no event source; use the push API instead"
            )
        self.begin()
        source = self.source
        matcher = self.matcher
        instance = getattr(source, "instance", None)
        if (
            instance is not None
            and getattr(source, "stream", None) is None
            and isinstance(matcher, TypedMatcher)
            and matcher.grid == instance.grid
            and matcher.timeline == instance.timeline
        ):
            self._run_typed_bulk(instance, matcher)
        else:
            push = self.push
            for arrival in source:
                push(arrival)
        return self.finish()

    def _run_typed_bulk(self, instance: Instance, matcher: TypedMatcher) -> None:
        """The vectorized fast path: cached typing pass + bulk loop.

        Snapshot sampling chunks the bulk loop; matcher state persists
        across chunks, so chunked and unchunked runs are bit-identical.
        """
        events, types = instance.typed_arrivals()
        n = len(events)
        every = self.snapshot_every
        if every is None and self.on_snapshot is None:
            matcher.consume_typed(zip(events, types))
            self._arrivals = n
            if n:
                self._last_time = events[-1].time
            return
        chunk = every if every is not None else max(n, 1)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            matcher.consume_typed(zip(events[start:stop], types[start:stop]))
            self._arrivals = stop
            self._last_time = events[stop - 1].time
            if every is not None and stop % every == 0:
                self._emit()

    # -- metrics ------------------------------------------------------- #

    def snapshot(self) -> SessionSnapshot:
        """Sample the session's current metrics."""
        outcome = self.outcome
        if outcome is not None:
            matched = outcome.matching.size
            workers = len(outcome.worker_decisions)
            tasks = len(outcome.task_decisions)
            ignored_workers = outcome.ignored_workers
            ignored_tasks = outcome.ignored_tasks
            departed = outcome.departed_workers + outcome.departed_tasks
            moves = outcome.moves
        else:
            matcher = self.matcher
            matched = matcher.matched
            workers = matcher.workers_seen
            tasks = matcher.tasks_seen
            ignored_workers = matcher.ignored_workers
            ignored_tasks = matcher.ignored_tasks
            departed = matcher.departed_workers + matcher.departed_tasks
            moves = matcher.moves
        wall = 0.0 if self._started is None else time.perf_counter() - self._started
        matcher_profile = getattr(self.matcher, "profile", None)
        return SessionSnapshot(
            arrivals=self._arrivals,
            workers=workers,
            tasks=tasks,
            matched=matched,
            ignored_workers=ignored_workers,
            ignored_tasks=ignored_tasks,
            stream_time=self._last_time,
            wall_seconds=wall,
            departed=departed,
            moves=moves,
            profile=None if matcher_profile is None else matcher_profile.as_dict(),
        )

    def _emit(self) -> None:
        snapshot = self.snapshot()
        self.snapshots.append(snapshot)
        if self.on_snapshot is not None:
            self.on_snapshot(snapshot)
