"""Stage-level pipeline telemetry: stamps, histograms, trace export.

The gateway's counters say *how much* work flowed; this module says
*where each event's microseconds went*.  A sampled event carries a
:class:`Stamps` record of monotonic-ns timestamps through the pipeline::

    ingest ──> dispatch-queue ──> transport-send ──> worker-recv
                                                         │
           ack-write <── collector <── ACK <── match ────┘

Consecutive stamps bound the five pipeline **stages** (:data:`STAGES`):
``ingest`` (queue wait), ``dispatch`` (dispatcher + outbox),
``transport`` (the IPC hop), ``match`` (matcher compute) and ``ack``
(reply hop + collector).  ``time.monotonic_ns`` is CLOCK_MONOTONIC,
which is system-wide on Linux, so deltas spanning the fork boundary are
valid.

Sampling keeps the subsystem cheap: the gateway stamps every
``sample_every``-th accepted event (default
:data:`DEFAULT_SAMPLE_EVERY`); unsampled events pay one counter
decrement at ingest and a ``type(...) is Stamped`` check per hop.  The
``telemetry_overhead`` probe in ``scripts/bench_snapshot.py`` holds the
flat-out ingest cost at default sampling to ≤ 2 %.

Crossing the process boundary:

* **pipe transport** — the sampled event is wrapped in a
  :class:`Stamped` carrier and piggybacks on the ordinary pickle frame;
  the worker unwraps, stamps ``worker_recv``/``match_done``, and ships
  the decision back as ``Stamped(decision, stamps)`` on the ACK frame.
* **shm transport** — the ring's fixed 88-byte slots cannot carry
  stamps, and widening them would break the bit-parity story.  Instead a
  ``Stamped`` payload deliberately fails ``pack_request``/``pack_reply``
  and takes the ring's existing ESC escape hatch: the full pickled
  carrier travels the side-channel pipe while an in-ring ESC record
  preserves total order (see :mod:`repro.serving.shmring`).  The slot
  layout and parity gates are untouched; the measured ``transport``
  stage for shm-sampled events is the escape path's (pipe) latency,
  which the docs call out.

Per-stage durations feed fixed log2-bucket :class:`LatencyHistogram`\\ s
(bucket *i* holds durations in ``(2^(i-1), 2^i]`` ns), rendered as real
Prometheus ``histogram`` series
(``ftoa_gateway_stage_duration_seconds_bucket{stage=...,shard=...}``)
and rolled up as p50/p90/p99 in ``/snapshot``.  A bounded
:class:`TraceRecorder` keeps the first *head* and last *tail* sampled
events plus every event slower than a threshold, exported as Chrome
``trace_event`` JSON (``chrome://tracing`` / Perfetto) via the
gateway's ``/trace`` endpoint and ``repro serve --trace out.json``.

The module is stdlib-only and import-free within the package, so the
worker child, the shm ring and the gateway can all use it without
cycles.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "STAGES",
    "DEFAULT_SAMPLE_EVERY",
    "Stamps",
    "Stamped",
    "LatencyHistogram",
    "TraceRecorder",
    "Telemetry",
    "bucket_index",
    "bucket_edge_ns",
]

#: Pipeline stages, in flow order.  Each is bounded by two stamps.
STAGES = ("ingest", "dispatch", "transport", "match", "ack")

#: Stamp-field pairs bounding each stage (start, end).
_STAGE_BOUNDS = (
    ("ingest", "ingest", "dispatch"),
    ("dispatch", "dispatch", "send"),
    ("transport", "send", "worker_recv"),
    ("match", "worker_recv", "match_done"),
    ("ack", "match_done", "ack_write"),
)

#: Default sampling period: one stamped event per this many accepted.
DEFAULT_SAMPLE_EVERY = 128

# Log2 bucket count: 2^63 ns ≈ 292 years, enough for any duration.
_NBUCKETS = 64

# Prometheus exposition renders this contiguous bucket slice; counts
# below fold into the first rendered bucket's cumulative value and
# counts above land in +Inf.  2^12 ns ≈ 4.1 µs .. 2^34 ns ≈ 17.2 s.
_PROM_MIN_BUCKET = 12
_PROM_MAX_BUCKET = 34

_HISTOGRAM_METRIC = "ftoa_gateway_stage_duration_seconds"


def bucket_index(duration_ns: int) -> int:
    """The log2 bucket of a duration: smallest ``i`` with ``ns <= 2^i``.

    Durations ≤ 1 ns land in bucket 0; the index is clamped to the
    top bucket so pathological values cannot index out of range.
    """
    if duration_ns <= 1:
        return 0
    index = (duration_ns - 1).bit_length()
    return index if index < _NBUCKETS else _NBUCKETS - 1


def bucket_edge_ns(index: int) -> int:
    """The inclusive upper edge of bucket ``index`` in nanoseconds."""
    return 1 << index


class Stamps:
    """Monotonic-ns stage stamps carried by one sampled event.

    Fields are ``time.monotonic_ns()`` readings (or ``None`` while the
    event has not reached that point):

    * ``ingest`` — accepted into the gateway queue;
    * ``dispatch`` — popped by the dispatcher;
    * ``send`` — written to the worker transport (inline: = dispatch);
    * ``worker_recv`` — received by the shard worker;
    * ``match_done`` — the matcher's decision returned;
    * ``ack_write`` — the ack line built for the client.

    ``seq`` labels the event for trace output.  Instances pickle across
    the fork boundary (``__slots__`` classes pickle natively under
    protocol 2+).
    """

    __slots__ = ("seq", "ingest", "dispatch", "send", "worker_recv",
                 "match_done", "ack_write")

    def __init__(self, seq: int = 0, ingest: Optional[int] = None) -> None:
        self.seq = seq
        self.ingest = ingest
        self.dispatch: Optional[int] = None
        self.send: Optional[int] = None
        self.worker_recv: Optional[int] = None
        self.match_done: Optional[int] = None
        self.ack_write: Optional[int] = None

    def stage_durations(self) -> Iterator[Tuple[str, int]]:
        """``(stage, duration_ns)`` for every stage with both stamps.

        Durations are clamped at 0: a theoretical same-tick inversion
        (two reads of the same clock) must not corrupt a histogram.
        """
        for stage, start_field, end_field in _STAGE_BOUNDS:
            start = getattr(self, start_field)
            end = getattr(self, end_field)
            if start is not None and end is not None:
                yield stage, max(end - start, 0)

    def total_ns(self) -> Optional[int]:
        """End-to-end ns (ingest → ack-write), or None if incomplete."""
        if self.ingest is None or self.ack_write is None:
            return None
        return max(self.ack_write - self.ingest, 0)


class Stamped:
    """A telemetry carrier wrapping one pipeline payload.

    ``Stamped(event, stamps)`` rides the worker transport in place of
    the raw event; ``Stamped(decision, stamps)`` rides the ACK back.
    On the shm transport the wrapper intentionally fails the fixed-slot
    packers and takes the ESC side channel (module docstring).  Every
    hop unwraps with an exact ``type(payload) is Stamped`` check — the
    one branch unsampled traffic pays.
    """

    __slots__ = ("value", "stamps")

    def __init__(self, value, stamps: Stamps) -> None:
        self.value = value
        self.stamps = stamps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stamped({self.value!r}, seq={self.stamps.seq})"


class LatencyHistogram:
    """A fixed log2-bucket duration histogram (nanosecond domain).

    Bucket ``i`` counts durations in ``(2^(i-1), 2^i]`` ns (bucket 0:
    ``<= 1`` ns).  Fixed edges make merge a vector add — worker and
    gateway histograms, or before/after snapshots, combine exactly.
    """

    __slots__ = ("counts", "count", "sum_ns")

    def __init__(self) -> None:
        self.counts = [0] * _NBUCKETS
        self.count = 0
        self.sum_ns = 0

    def record(self, duration_ns: int) -> None:
        """Add one duration."""
        self.counts[bucket_index(duration_ns)] += 1
        self.count += 1
        self.sum_ns += duration_ns

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram into this one (same fixed edges)."""
        counts = self.counts
        for i, c in enumerate(other.counts):
            if c:
                counts[i] += c
        self.count += other.count
        self.sum_ns += other.sum_ns

    def percentile(self, q: float) -> float:
        """The q-quantile in ns, linearly interpolated within a bucket.

        Exact at the bucket granularity (a factor-of-2 band), which is
        all a rollup needs; 0.0 while empty.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cumulative + c >= rank:
                lower = 0.0 if i == 0 else float(1 << (i - 1))
                upper = float(1 << i)
                fraction = (rank - cumulative) / c
                return lower + fraction * (upper - lower)
            cumulative += c
        return float(1 << (_NBUCKETS - 1))  # pragma: no cover - clamp

    def as_dict(self) -> dict:
        """JSON-ready rollup: count, sum, p50/p90/p99 (ms), buckets.

        ``buckets`` maps bucket index → count (sparse, non-zero only),
        so a client can reconstruct and difference histograms — the
        loadgen's before/after stage table does exactly that via
        :meth:`from_dict` and :meth:`subtract`.
        """
        return {
            "count": self.count,
            "sum_ms": round(self.sum_ns / 1e6, 6),
            "p50_ms": round(self.percentile(0.50) / 1e6, 6),
            "p90_ms": round(self.percentile(0.90) / 1e6, 6),
            "p99_ms": round(self.percentile(0.99) / 1e6, 6),
            "buckets": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`as_dict` output."""
        histogram = cls()
        for key, c in (payload.get("buckets") or {}).items():
            histogram.counts[int(key)] = int(c)
        histogram.count = int(payload.get("count", 0))
        histogram.sum_ns = int(round(float(payload.get("sum_ms", 0.0)) * 1e6))
        return histogram

    def subtract(self, earlier: "LatencyHistogram") -> "LatencyHistogram":
        """The histogram of events recorded after ``earlier`` was taken.

        Counts are clamped at 0 per bucket, so a snapshot pair from a
        restarted or reset source degrades to the later snapshot
        instead of going negative.
        """
        diff = LatencyHistogram()
        for i in range(_NBUCKETS):
            diff.counts[i] = max(self.counts[i] - earlier.counts[i], 0)
        diff.count = sum(diff.counts)
        diff.sum_ns = max(self.sum_ns - earlier.sum_ns, 0)
        return diff

    def prometheus_lines(self, labels: str) -> List[str]:
        """Exposition lines for one series (no HELP/TYPE header).

        Cumulative ``le`` buckets over the rendered slice
        (``2^12``–``2^34`` ns as seconds), then ``+Inf``, ``_sum`` and
        ``_count`` — a real Prometheus ``histogram``, quantile-able
        with ``histogram_quantile()``.
        """
        lines: List[str] = []
        cumulative = sum(self.counts[: _PROM_MIN_BUCKET])
        for i in range(_PROM_MIN_BUCKET, _PROM_MAX_BUCKET + 1):
            cumulative += self.counts[i]
            le = f"{(1 << i) / 1e9:.9g}"
            lines.append(
                f'{_HISTOGRAM_METRIC}_bucket{{{labels},le="{le}"}} '
                f"{cumulative}"
            )
        lines.append(
            f'{_HISTOGRAM_METRIC}_bucket{{{labels},le="+Inf"}} {self.count}'
        )
        lines.append(
            f"{_HISTOGRAM_METRIC}_sum{{{labels}}} {self.sum_ns / 1e9:.9g}"
        )
        lines.append(f"{_HISTOGRAM_METRIC}_count{{{labels}}} {self.count}")
        return lines


class TraceRecorder:
    """A bounded recorder of sampled events for trace export.

    Keeps three views so a long run stays exportable at fixed memory:

    * **head** — the first ``head`` sampled events (startup behaviour);
    * **tail** — a ring of the last ``tail`` sampled events;
    * **slow** — a ring of the last ``slow`` events whose end-to-end
      time crossed ``slow_threshold_ns`` (outliers survive even after
      the tail ring has wrapped past them).
    """

    __slots__ = ("_head_capacity", "_head", "_tail", "_slow",
                 "slow_threshold_ns", "seen", "slow_events")

    def __init__(
        self,
        head: int = 64,
        tail: int = 256,
        slow: int = 64,
        slow_threshold_ns: int = 50_000_000,
    ) -> None:
        self._head_capacity = int(head)
        self._head: List[Tuple[int, Stamps]] = []
        self._tail: deque = deque(maxlen=int(tail))
        self._slow: deque = deque(maxlen=int(slow))
        self.slow_threshold_ns = int(slow_threshold_ns)
        self.seen = 0
        self.slow_events = 0

    def record(self, shard_id: int, stamps: Stamps) -> None:
        """Admit one completed sampled event."""
        entry = (shard_id, stamps)
        self.seen += 1
        if len(self._head) < self._head_capacity:
            self._head.append(entry)
        else:
            self._tail.append(entry)
        total = stamps.total_ns()
        if total is not None and total >= self.slow_threshold_ns:
            self.slow_events += 1
            self._slow.append(entry)

    def entries(self) -> List[Tuple[int, Stamps]]:
        """Retained entries, oldest first, slow outliers deduplicated."""
        kept = list(self._head) + list(self._tail)
        seen_ids = {id(stamps) for _shard, stamps in kept}
        for entry in self._slow:
            if id(entry[1]) not in seen_ids:
                kept.append(entry)
        kept.sort(key=lambda e: e[1].ingest or 0)
        return kept

    def chrome_trace(self) -> dict:
        """The retained entries as a Chrome ``trace_event`` document.

        One complete ("X") event per stage per sampled event, ``ts`` /
        ``dur`` in microseconds on the monotonic clock, ``tid`` = the
        owning shard (named via thread metadata records).  Load in
        ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        events: List[dict] = []
        shards = set()
        for shard_id, stamps in self.entries():
            shards.add(shard_id)
            cursor = stamps.ingest
            for stage, duration_ns in stamps.stage_durations():
                if cursor is None:  # pragma: no cover - defensive
                    break
                events.append({
                    "name": stage,
                    "cat": "pipeline",
                    "ph": "X",
                    "ts": cursor / 1e3,
                    "dur": duration_ns / 1e3,
                    "pid": 1,
                    "tid": shard_id,
                    "args": {"seq": stamps.seq},
                })
                cursor += duration_ns
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": "ftoa-gateway"},
            }
        ]
        for shard_id in sorted(shards):
            metadata.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": shard_id,
                "args": {"name": f"shard {shard_id}"},
            })
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "sampled_events": self.seen,
                "slow_events": self.slow_events,
                "slow_threshold_ms": self.slow_threshold_ns / 1e6,
            },
        }


class Telemetry:
    """The gateway's telemetry hub: sampling, histograms, recorder.

    Single-threaded by construction (everything runs on the gateway's
    event loop), so recording is plain integer arithmetic — no locks.

    Args:
        sample_every: stamp one event per this many accepted (0 or
            ``None`` disables stamping entirely; the first accepted
            event is always sampled so short runs still trace).
        n_shards: pre-creates every ``(stage, shard)`` histogram so
            ``/metrics`` exposes the full series grid from the first
            scrape.
        trace_head / trace_tail / trace_slow: recorder bounds.
        slow_threshold_ms: end-to-end threshold for the slow ring.
    """

    __slots__ = ("sample_every", "enabled", "sampled", "_countdown",
                 "histograms", "recorder", "_n_shards")

    def __init__(
        self,
        sample_every: Optional[int] = DEFAULT_SAMPLE_EVERY,
        n_shards: int = 1,
        trace_head: int = 64,
        trace_tail: int = 256,
        trace_slow: int = 64,
        slow_threshold_ms: float = 50.0,
    ) -> None:
        self.sample_every = int(sample_every or 0)
        self.enabled = self.sample_every > 0
        self.sampled = 0
        self._countdown = 1  # sample the very first accepted event
        self._n_shards = int(n_shards)
        self.histograms: Dict[Tuple[str, int], LatencyHistogram] = {}
        if self.enabled:
            for shard_id in range(self._n_shards):
                for stage in STAGES:
                    self.histograms[(stage, shard_id)] = LatencyHistogram()
        self.recorder = TraceRecorder(
            head=trace_head,
            tail=trace_tail,
            slow=trace_slow,
            slow_threshold_ns=int(slow_threshold_ms * 1e6),
        )

    def begin(self, seq: int) -> Optional[Stamps]:
        """Sampling gate at ingest: stamps for 1-in-``sample_every``.

        The per-event cost for unsampled traffic is one decrement and
        one comparison.
        """
        if not self.enabled:
            return None
        self._countdown -= 1
        if self._countdown > 0:
            return None
        self._countdown = self.sample_every
        return Stamps(seq=seq, ingest=time.monotonic_ns())

    def record(self, shard_id: int, stamps: Stamps) -> None:
        """Fold one completed sampled event into histograms + recorder."""
        self.sampled += 1
        histograms = self.histograms
        for stage, duration_ns in stamps.stage_durations():
            histogram = histograms.get((stage, shard_id))
            if histogram is None:
                histogram = LatencyHistogram()
                histograms[(stage, shard_id)] = histogram
            histogram.record(duration_ns)
        self.recorder.record(shard_id, stamps)

    def stage_summary(self) -> dict:
        """Per-stage rollups merged across shards (the ``/snapshot``
        ``stage_latency`` payload)."""
        merged: Dict[str, LatencyHistogram] = {}
        for (stage, _shard_id), histogram in self.histograms.items():
            into = merged.get(stage)
            if into is None:
                merged[stage] = into = LatencyHistogram()
            into.merge(histogram)
        summary = {
            stage: merged[stage].as_dict() for stage in STAGES
            if stage in merged
        }
        summary["sampled"] = self.sampled
        summary["sample_every"] = self.sample_every
        return summary

    def prometheus_lines(self) -> List[str]:
        """The stage-duration histogram series for ``/metrics``."""
        lines = [
            f"# HELP {_HISTOGRAM_METRIC} pipeline stage durations of "
            f"sampled events (1 in {self.sample_every})",
            f"# TYPE {_HISTOGRAM_METRIC} histogram",
        ]
        for (stage, shard_id) in sorted(self.histograms):
            labels = f'stage="{stage}",shard="{shard_id}"'
            lines.extend(
                self.histograms[(stage, shard_id)].prometheus_lines(labels)
            )
        lines.append(
            "# HELP ftoa_gateway_telemetry_sampled_total events stamped "
            "by the telemetry sampler"
        )
        lines.append("# TYPE ftoa_gateway_telemetry_sampled_total counter")
        lines.append(f"ftoa_gateway_telemetry_sampled_total {self.sampled}")
        return lines

    def chrome_trace(self) -> dict:
        """The trace recorder's Chrome ``trace_event`` document."""
        return self.recorder.chrome_trace()
