"""Sharded sessions: consistent spatial hashing of grid cells to shards.

The gateway scales FTOA horizontally the way a spatial platform does in
practice: the city is partitioned into regions and each region is served
by its own matcher.  Region identity is the matching grid's *cell* (the
same (area) discretisation :class:`~repro.core.cellindex.CellIndex`
buckets by), and cells are mapped to shards with **consistent hashing**
— a fixed ring of virtual-node tokens per shard — so that

* the cell → shard map is deterministic across processes and runs (the
  ring hashes with :func:`hashlib.blake2b`, never Python's seeded
  ``hash``);
* growing the shard count from ``n`` to ``n+1`` remaps only the cells
  whose ring arc the new shard's tokens claim, instead of reshuffling
  the whole city (the classic consistent-hashing property — live
  resharding only has to migrate a ``~1/(n+1)`` slice).

Each :class:`Shard` owns one push-style
:class:`~repro.serving.session.MatchingSession`; a single-shard gateway
therefore degenerates to exactly the offline session and is bit-identical
to it (test-enforced).  With multiple shards, matching happens *within*
a shard: cross-region pairs are traded away for parallel ingest, which is
the standard hyperlocal-serving compromise.

Telemetry contract: :class:`InlineShardBackend` always receives *raw*
events — the gateway's dispatcher stamps sampled events around the
synchronous ``submit`` call itself.  Only the process backend
(:class:`~repro.serving.workers.WorkerPool` and the supervisor) sees
:class:`~repro.serving.telemetry.Stamped` carriers, because there the
transport hop is real and worth measuring.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
from typing import Callable, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.core.engine import Matcher
from repro.core.outcome import AssignmentOutcome, Decision
from repro.errors import ConfigurationError
from repro.model.events import ARRIVAL, Arrival, StreamEvent
from repro.serving.session import MatchingSession, SessionSnapshot
from repro.spatial.grid import Grid

__all__ = [
    "SpatialHashRing",
    "ShardRouter",
    "Shard",
    "ShardBackend",
    "InlineShardBackend",
    "build_shards",
    "split_counts_by_shard",
    "build_shard_guides",
]

# Virtual nodes per shard.  Enough for an even spread over a few dozen
# shards; cheap to build (shards × replicas blake2b digests, once).
_DEFAULT_REPLICAS = 64


def _stable_hash(key: bytes) -> int:
    """A 64-bit position on the ring, stable across processes."""
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


class SpatialHashRing:
    """A consistent-hash ring mapping integer keys to shard ids.

    Args:
        n_shards: number of shards (ring members).
        replicas: virtual nodes per shard.

    Raises:
        ConfigurationError: for non-positive shard or replica counts.
    """

    def __init__(self, n_shards: int, replicas: int = _DEFAULT_REPLICAS) -> None:
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        if replicas <= 0:
            raise ConfigurationError(f"replicas must be positive, got {replicas}")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        tokens: List[Tuple[int, int]] = []
        for shard in range(self.n_shards):
            for replica in range(self.replicas):
                token = _stable_hash(b"shard:%d:replica:%d" % (shard, replica))
                tokens.append((token, shard))
        tokens.sort()
        self._tokens = [token for token, _shard in tokens]
        self._owners = [shard for _token, shard in tokens]
        self._retired: set = set()

    def shard_of(self, key: int) -> int:
        """The shard owning ``key``: first token clockwise of its hash."""
        position = _stable_hash(b"cell:%d" % key)
        index = bisect.bisect_right(self._tokens, position)
        if index == len(self._tokens):
            index = 0  # wrap around the ring
        return self._owners[index]

    def retire(self, shard_id: int) -> None:
        """Drop one shard's tokens from the ring (degraded-mode remap).

        Keys the retired shard owned fall through to the next surviving
        token clockwise — exactly the consistent-hashing arc-takeover
        property, so only the retired shard's cells move.  Idempotent.

        Raises:
            ConfigurationError: when retiring would empty the ring (a
                gateway with no live shard cannot reroute anywhere).
        """
        if shard_id in self._retired:
            return
        if len(self._retired) + 1 >= self.n_shards:
            raise ConfigurationError(
                f"cannot retire shard {shard_id}: it is the last live "
                "shard on the ring"
            )
        self._retired.add(shard_id)
        kept = [
            (token, owner)
            for token, owner in zip(self._tokens, self._owners)
            if owner != shard_id
        ]
        self._tokens = [token for token, _owner in kept]
        self._owners = [owner for _token, owner in kept]

    @property
    def retired(self) -> frozenset:
        """Shard ids removed from the ring."""
        return frozenset(self._retired)


class ShardRouter:
    """Routes arrivals to shards by the grid cell of their location.

    The cell → shard map is resolved through the consistent-hash ring and
    memoised per cell (the cell space is bounded by ``grid.n_areas``).

    Args:
        grid: the matching grid whose cells partition the city.
        n_shards: shard count.
        replicas: virtual nodes per shard on the ring.
    """

    def __init__(
        self, grid: Grid, n_shards: int, replicas: int = _DEFAULT_REPLICAS
    ) -> None:
        self.grid = grid
        self.ring = SpatialHashRing(n_shards, replicas=replicas)
        self._cell_cache: Dict[int, int] = {}

    @property
    def n_shards(self) -> int:
        """Number of shards routed to."""
        return self.ring.n_shards

    def shard_of_cell(self, area: int) -> int:
        """The shard owning one grid cell (memoised ring lookup)."""
        shard = self._cell_cache.get(area)
        if shard is None:
            shard = self.ring.shard_of(area)
            self._cell_cache[area] = shard
        return shard

    def shard_of(self, arrival: Arrival) -> int:
        """The shard owning an arrival's location."""
        return self.shard_of_cell(self.grid.area_of(arrival.entity.location))

    def retire_shard(self, shard_id: int) -> None:
        """Remap a degraded shard's cells to the survivors.

        Delegates to :meth:`SpatialHashRing.retire` and invalidates the
        memoised cell map, so *new* arrivals in the retired shard's
        cells route to the next live shard on the ring.  Objects already
        inside the dead shard are lost with it — reroute bounds the
        blast radius, it does not resurrect state (that is the
        supervisor's checkpoint/replay job, which runs first).

        Raises:
            ConfigurationError: when this is the last live shard.
        """
        self.ring.retire(shard_id)
        self._cell_cache.clear()


class Shard:
    """One region shard: a push-style session plus live counters.

    The shard is begun on construction and fed via :meth:`push`;
    :meth:`finish` closes the stream (idempotent — finishing an empty or
    already-finished shard is safe, so a gateway drain never trips over
    regions that saw no traffic).

    Args:
        shard_id: position in the gateway's shard list.
        matcher: this shard's private matcher instance (matchers are
            stateful; shards never share one).
    """

    def __init__(self, shard_id: int, matcher: Matcher) -> None:
        self.shard_id = shard_id
        self.session = MatchingSession(matcher)
        self.session.begin()
        self.arrivals = 0
        self.outcome: Optional[AssignmentOutcome] = None

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has run."""
        return self.outcome is not None

    def push(self, event: StreamEvent) -> Decision:
        """Feed one stream event (arrival or churn) to the session."""
        decision = self.session.push(event)
        if event.event_kind is ARRIVAL:
            self.arrivals += 1
        return decision

    def finish(self) -> AssignmentOutcome:
        """Close the shard's stream; repeated calls return the outcome."""
        if self.outcome is None:
            self.outcome = self.session.finish()
        return self.outcome

    def snapshot(self) -> SessionSnapshot:
        """The shard session's current metrics (live or final)."""
        return self.session.snapshot()


def build_shards(
    n_shards: int, matcher_factory: Callable[[int], Matcher]
) -> List[Shard]:
    """Construct ``n_shards`` shards from a per-shard matcher factory."""
    return [Shard(i, matcher_factory(i)) for i in range(n_shards)]


# ---------------------------------------------------------------------- #
# Shard execution backends
# ---------------------------------------------------------------------- #


class ShardBackend(Protocol):
    """Where a gateway's shards execute: one interface, two homes.

    The gateway's dispatcher speaks this protocol only, so the shard
    fleet can live in-process (:class:`InlineShardBackend`) or across a
    pool of worker processes (:class:`repro.serving.workers.WorkerPool`)
    without the gateway caring.  The contract the dispatcher relies on:

    * :meth:`submit` returns an :class:`asyncio.Future` resolving to the
      shard's :class:`~repro.core.outcome.Decision` (or raising the
      shard's rejection).  Submission order per shard **is** that
      shard's stream order — backends must process a shard's events
      strictly FIFO (Definition 4's per-shard total order).  ``submit``
      may await internal backpressure (a bounded per-worker outbox)
      before returning.
    * :meth:`snapshots` is a cheap, synchronous read of the latest known
      per-shard :class:`~repro.serving.session.SessionSnapshot` rows
      (possibly stale for out-of-process shards);
      :meth:`refresh_snapshots` performs the round trip.
    * :meth:`finish` is the drain barrier: every shard's stream closes
      and the per-shard outcomes come back (a structured
      :class:`~repro.serving.workers.ShardOutcome` for a shard whose
      executor was lost for good).
    * :attr:`crashes` counts shard executors lost mid-run and
      :attr:`restarts` the replacements forked by a supervisor (both
      always 0 in-process); :meth:`health` reports each shard as
      ``healthy`` / ``restarting`` / ``degraded``.
    * :attr:`transport` names how events reach the shards:
      ``"inline"`` (same process), ``"pipe"`` (pickle frames), or
      ``"shm"`` (shared-memory rings — see
      :mod:`repro.serving.shmring`).
    """

    name: str
    transport: str

    @property
    def n_shards(self) -> int: ...

    @property
    def crashes(self) -> int: ...

    @property
    def restarts(self) -> int: ...

    def health(self) -> List[str]: ...

    @property
    def outcomes(self) -> Optional[List[Optional[AssignmentOutcome]]]: ...

    async def start(self) -> None: ...

    async def submit(
        self, shard_id: int, event: StreamEvent
    ) -> "asyncio.Future[Decision]": ...

    def snapshots(self) -> List[SessionSnapshot]: ...

    async def refresh_snapshots(self) -> List[SessionSnapshot]: ...

    async def finish(self) -> List[Optional[AssignmentOutcome]]: ...

    async def aclose(self) -> None: ...


class InlineShardBackend:
    """All shards on the caller's event loop — the single-process home.

    ``submit`` executes the shard's push synchronously and hands back an
    already-resolved future, so the dispatcher's awaits never suspend:
    a single-shard inline gateway stays bit-identical to (and about as
    fast as) the pre-backend dispatcher.
    """

    name = "inline"
    transport = "inline"

    def __init__(self, shards: List[Shard]) -> None:
        self.shards = shards
        self._outcomes: Optional[List[Optional[AssignmentOutcome]]] = None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def crashes(self) -> int:
        """In-process shards cannot crash independently of the gateway."""
        return 0

    @property
    def restarts(self) -> int:
        """Nothing to supervise in-process."""
        return 0

    def health(self) -> List[str]:
        """In-process shards are healthy for exactly the gateway's life."""
        return ["healthy"] * len(self.shards)

    @property
    def outcomes(self) -> Optional[List[Optional[AssignmentOutcome]]]:
        return self._outcomes

    async def start(self) -> None:  # pragma: no cover - trivial
        return None

    async def submit(
        self, shard_id: int, event: StreamEvent
    ) -> "asyncio.Future[Decision]":
        future = asyncio.get_running_loop().create_future()
        try:
            future.set_result(self.shards[shard_id].push(event))
        except Exception as exc:  # noqa: BLE001 — the caller unwraps
            future.set_exception(exc)
        return future

    def snapshots(self) -> List[SessionSnapshot]:
        return [shard.snapshot() for shard in self.shards]

    async def refresh_snapshots(self) -> List[SessionSnapshot]:
        return self.snapshots()

    async def finish(self) -> List[Optional[AssignmentOutcome]]:
        self._outcomes = [shard.finish() for shard in self.shards]
        return self._outcomes

    async def aclose(self) -> None:  # pragma: no cover - trivial
        return None


# ---------------------------------------------------------------------- #
# Sharded guides
# ---------------------------------------------------------------------- #


def split_counts_by_shard(
    counts: np.ndarray, router: ShardRouter
) -> List[np.ndarray]:
    """Per-shard copies of a ``(slot, area)`` count tensor.

    Shard ``k`` keeps the columns of the grid cells it owns on the
    router's ring and zeros everywhere else, so the shard slices
    partition the original mass exactly (every cell has one owner).
    This is the serving fix for guided sharding: a *global* guide pairs
    predicted nodes across region shards, and those cross-shard partners
    can never meet inside one shard's matcher — per-shard guides keep
    every guide pair servable by the shard that will see both arrivals.
    """
    counts = np.asarray(counts)
    flat = counts.reshape(-1, router.grid.n_areas)
    owners = np.fromiter(
        (router.shard_of_cell(area) for area in range(router.grid.n_areas)),
        dtype=np.int64,
        count=router.grid.n_areas,
    )
    return [
        np.where(owners[None, :] == shard, flat, 0).reshape(counts.shape)
        for shard in range(router.n_shards)
    ]


def build_shard_guides(
    worker_counts: np.ndarray,
    task_counts: np.ndarray,
    router: ShardRouter,
    timeline,
    travel,
    worker_duration: float,
    task_duration: float,
    method: str = "auto",
) -> List["object"]:
    """One Algorithm-1 guide per shard from that shard's predicted counts.

    Args:
        worker_counts / task_counts: the full-city ``(slot, area)``
            prediction tensors (a forecast or a stream's own counts).
        router: the gateway's cell → shard map; its grid is the guide
            grid.
        timeline / travel: the serving discretisation.
        worker_duration / task_duration: representative ``Dw`` / ``Dr``
            (global means — durations are a per-side property, not a
            per-region one).
        method: forwarded to :func:`repro.core.guide.build_guide`.

    Returns:
        ``router.n_shards`` :class:`~repro.core.guide.OfflineGuide`\\ s,
        indexed by shard id.
    """
    from repro.core.guide import build_guide

    worker_splits = split_counts_by_shard(worker_counts, router)
    task_splits = split_counts_by_shard(task_counts, router)
    return [
        build_guide(
            worker_splits[shard],
            task_splits[shard],
            router.grid,
            timeline,
            travel,
            worker_duration,
            task_duration,
            method=method,
        )
        for shard in range(router.n_shards)
    ]
