"""Length-prefixed pickle framing for gateway ↔ shard-worker pipes.

The worker-pool backend (:mod:`repro.serving.workers`) runs each shard's
:class:`~repro.serving.session.MatchingSession` in its own OS process and
talks to it over a pair of anonymous pipes.  This module is the wire
layer both sides share:

* **Framing** — every message is ``!I`` big-endian length prefix +
  pickle payload (:func:`encode_frame`).  Pickle, not JSON, because the
  payloads are the library's own event/decision/outcome objects and the
  two endpoints are the same interpreter build forked from one process —
  the classic trusted-duplex-pipe case.  The frame length is bounded
  (:data:`MAX_FRAME`) so a corrupted prefix fails loudly instead of
  allocating gigabytes.
* **Blocking endpoint** — :class:`BlockingEndpoint` is the worker
  child's side: plain buffered file objects over the raw pipe fds, one
  ``recv``/``send`` per message, EOF surfaced as :class:`EOFError` (the
  gateway hanging up is the worker's shutdown signal).
* **Async side** — :func:`read_frame` decodes one frame from an
  :class:`asyncio.StreamReader`; writers just ``write(encode_frame(m))``
  and ``drain()``.

Message schema (tuples, not classes, to keep frames small):

* requests (gateway → worker): ``(tag, seq, payload)`` where ``tag`` is
  :data:`EVENT` (payload: a stream event), :data:`SNAPSHOT` /
  :data:`FINISH` / :data:`CHECKPOINT` / :data:`PING` (payload ``None``),
  or :data:`STOP` (no reply).
* replies (worker → gateway): ``(ACK, seq, decision)``,
  ``(NACK, seq, error text)``, ``(SNAP, seq, session snapshot)``,
  ``(CHKPT, seq, shard state or None)``, ``(PONG, seq, None)``,
  ``(DONE, seq, (outcome, final snapshot))``.

``seq`` echoes the request's sequence number; since a worker serves its
pipe strictly FIFO, the gateway correlates replies by order and uses the
echoed ``seq`` purely as a protocol-corruption check.

The recovery layer (:mod:`repro.serving.workers`) leans on this module's
failure semantics: a pipe closed mid-frame is :class:`EOFError` (a torn
ack is indistinguishable from a crash, by design), an over-limit length
prefix or an *undecodable* payload is
:class:`~repro.errors.GatewayError` (the stream is desynchronized or
corrupt — the only safe response is to drop the worker and replay), and
both are recoverable without poisoning any other worker's stream.

The shared-memory transport (:mod:`repro.serving.shmring`) reuses these
same frames as its *escape hatch*: messages too large or too variable
for a fixed ring slot (checkpoints, snapshots, FINISH outcomes) still
travel as pickle frames over the pipe, announced in-order by an escape
marker in the ring, so this module stays the single source of truth for
the variable-payload wire format on both transports.

Telemetry piggybacks on these frames with zero wire changes: a sampled
event travels as ``(EVENT, seq, Stamped(event, stamps))`` and its ack as
``(ACK, seq, Stamped(decision, stamps))`` — frames pickle anything, so
the :class:`~repro.serving.telemetry.Stamped` carrier is just another
payload (and on the shm transport it deliberately fails the fixed-slot
packers, escaping onto this pipe as the sampled side channel).
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Any

import asyncio

from repro.errors import GatewayError

__all__ = [
    "EVENT",
    "SNAPSHOT",
    "FINISH",
    "CHECKPOINT",
    "PING",
    "STOP",
    "ACK",
    "NACK",
    "SNAP",
    "CHKPT",
    "PONG",
    "DONE",
    "MAX_FRAME",
    "encode_frame",
    "decode_frame",
    "raw_frame",
    "read_frame",
    "BlockingEndpoint",
]

# Request tags (gateway → worker).
EVENT = "event"
SNAPSHOT = "snapshot"
FINISH = "finish"
CHECKPOINT = "checkpoint"  # ship your full shard state back (CHKPT)
PING = "ping"              # liveness probe (PONG)
STOP = "stop"

# Reply tags (worker → gateway).
ACK = "ack"
NACK = "nack"
SNAP = "snap"
CHKPT = "chkpt"
PONG = "pong"
DONE = "done"

_HEADER = struct.Struct("!I")

# Upper bound on one frame.  Events are a few hundred bytes; the big
# frame is a DONE reply carrying a whole AssignmentOutcome (decision
# dicts over every object a shard saw) — 256 MiB leaves paper-scale
# outcomes room while still catching a garbage length prefix.
MAX_FRAME = 256 * 1024 * 1024


def encode_frame(message: Any) -> bytes:
    """One message as a length-prefixed pickle frame.

    Raises:
        GatewayError: if the pickled message exceeds :data:`MAX_FRAME`.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise GatewayError(
            f"IPC frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Any:
    """Inverse of :func:`encode_frame`'s payload part.

    Raises:
        GatewayError: when the payload does not unpickle.  A corrupt
            frame means the byte stream can no longer be trusted — the
            reader must treat the peer as lost, never crash its own
            loop on an arbitrary unpickling exception.
    """
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 — any unpickle failure
        raise GatewayError(
            f"undecodable IPC frame ({type(exc).__name__}: {exc}); "
            "stream is corrupt"
        ) from exc


def raw_frame(payload: bytes) -> bytes:
    """A frame around pre-encoded (or deliberately garbage) bytes.

    The fault injector and the IPC edge-case tests use this to place
    arbitrary payloads on the wire with a valid length prefix.
    """
    return _HEADER.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> Any:
    """Read one frame from an async pipe reader.

    Raises:
        EOFError: when the pipe closes (cleanly or mid-frame — a frame
            torn in half means the peer died, which callers treat the
            same as a close).
        GatewayError: for a length prefix beyond :data:`MAX_FRAME`.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        raise EOFError("pipe closed") from None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise GatewayError(
            f"IPC frame announces {length} bytes (limit {MAX_FRAME}); "
            "stream is corrupt"
        )
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        raise EOFError("pipe closed mid-frame") from None
    return decode_frame(payload)


class BlockingEndpoint:
    """The worker child's blocking side of the duplex pipe pair.

    Args:
        recv_fd: fd the worker reads requests from.
        send_fd: fd the worker writes replies to.

    Both fds are owned (and closed) by the endpoint.
    """

    def __init__(self, recv_fd: int, send_fd: int) -> None:
        self._recv = os.fdopen(recv_fd, "rb")
        self._send = os.fdopen(send_fd, "wb")

    def recv(self) -> Any:
        """Block for one request frame.

        Raises:
            EOFError: when the gateway side closed the pipe.
            GatewayError: for an over-limit length prefix.
        """
        header = self._read_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise GatewayError(
                f"IPC frame announces {length} bytes (limit {MAX_FRAME}); "
                "stream is corrupt"
            )
        return decode_frame(self._read_exact(length))

    def send(self, message: Any) -> None:
        """Write one reply frame and flush it to the pipe."""
        self._send.write(encode_frame(message))
        self._send.flush()

    def send_raw(self, data: bytes) -> None:
        """Write arbitrary bytes (fault injection: torn/garbage frames)."""
        self._send.write(data)
        self._send.flush()

    def close(self) -> None:
        """Close both pipe ends (idempotent)."""
        for stream in (self._recv, self._send):
            try:
                stream.close()
            except OSError:
                pass

    def _read_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._recv.read(remaining)
            if not chunk:
                raise EOFError("pipe closed")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)
