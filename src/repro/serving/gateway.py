"""The async serving gateway: live JSONL ingest over sharded sessions.

This is the I/O shell the ROADMAP called for on top of the PR 2 matcher
protocol: an asyncio event-loop driver that turns the reproduction into a
network-facing assignment server.

Data path::

    TCP / unix socket readers ──┐
                                ├──> bounded asyncio.Queue ──> dispatcher
    in-process submit()/offer() ┘          (backpressure)         │
                                                                  ▼
                                       ShardRouter (consistent spatial
                                       hashing over grid cells)
                                                                  │
                                       ShardBackend.submit(shard, event)
                                                                  │
                                  ┌───────────────┬───────────────┤
                                  ▼               ▼               ▼
                               Shard 0         Shard 1         Shard k
                          (MatchingSession) (MatchingSession)   ...
                                  │               │               │
                                  └──── futures, awaited FIFO ────┘
                                                  ▼
                                       collector ──> per-connection
                                                     ack channels

* **Execution backends** — the dispatcher routes events through a
  :class:`~repro.serving.shard.ShardBackend`: ``backend="inline"``
  (default) keeps every shard's session on this event loop, exactly the
  classic single-process gateway; ``backend="process"`` runs each shard
  in its own forked worker process
  (:class:`~repro.serving.workers.WorkerPool`) over length-prefixed
  pickle pipes, buying one core per shard.  A **collector** task awaits
  the per-event decision futures in dispatch order, so replies keep the
  send order on every connection and the two backends are bit-identical
  (pairs, decisions, counters) at equal shard counts — the parity gate
  tests and CI enforce.

* **Ingest protocol** — one JSON object per line, the same event schema
  :mod:`repro.serving.replay` dumps: arrivals plus the churn records
  (``{"kind": "departure", ...}`` / ``{"kind": "move", ...}``).  Each
  event is acknowledged with a decision line (``{"kind", "id", "shard",
  "decision", "partner"}``; churn acks add ``"side"``), so clients can
  measure end-to-end latency.  Churn events are routed to the shard
  that owns the object (recorded at its arrival); a ``Move`` whose new
  location hashes to a *different* shard migrates: the old shard gets a
  departure, the new one a deadline-preserving arrival at the new
  location stamped at the move instant (start = move time, duration =
  the remaining window), and the object→shard registry flips atomically
  (the ack carries ``"migrated": true`` and the new shard).  Churn for an object
  the gateway never saw — including one whose registry entry was
  expiry-swept after its deadline — is a malformed line.  Control
  records: ``{"kind":
  "snapshot"}`` returns the live snapshot, ``{"kind": "drain"}``
  triggers the graceful drain and returns the final snapshot;
  ``config`` records are acknowledged and skipped.  Malformed lines get
  an ``{"error": ...}`` line, a counter bump, and the connection stays
  open.
* **Ordering** — a single dispatcher consumes the queue FIFO, so the
  gateway's ingest order is the stream's total order (Definition 4) and
  a single-shard gateway is bit-identical to an offline
  :class:`~repro.serving.session.MatchingSession` over the same events
  (test-enforced).  Arrivals whose timestamp regresses are processed in
  ingest order and counted in ``out_of_order``.
* **Backpressure** — the queue is bounded (``queue_size``).  Socket
  readers await space (TCP's own flow control propagates the stall to
  the sender, ``backpressure_waits`` counts the stalls); the
  non-blocking :meth:`Gateway.offer` refuses instead
  (``backpressure_rejected``).
* **Drain semantics** — :meth:`Gateway.drain` stops intake, lets the
  dispatcher empty the queue, then calls ``finish()`` on every shard
  (shards that saw no traffic finish cleanly).  Drain is terminal:
  arrivals after it are refused with an error line, and the final
  snapshot is frozen for late ``/snapshot`` readers.
* **Metrics** — a stdlib-only HTTP endpoint serves ``/metrics``
  (Prometheus text), ``/snapshot`` (JSON), ``/healthz`` and ``/trace``
  (Chrome ``trace_event`` JSON), aggregating
  :class:`~repro.serving.session.SessionSnapshot` counters across
  shards, including per-shard health and the supervisor's
  crash/restart counters.
* **Telemetry** — a sampled :class:`~repro.serving.telemetry.Telemetry`
  hub stamps 1-in-N accepted events with monotonic-ns stage times
  (ingest → dispatch → transport → match → ack), carried across the
  process boundary as :class:`~repro.serving.telemetry.Stamped`
  payloads: piggybacked on pipe frames, and on the shm transport via
  the ring's ESC side channel (slot layout and parity untouched).
  Stage durations feed per-``(stage, shard)`` log2 histograms exposed
  as Prometheus ``histogram`` series plus p50/p90/p99 rollups in
  ``/snapshot``; a bounded trace recorder backs ``/trace``.
* **Self-healing** — with the process backend, a
  :class:`~repro.serving.workers.WorkerSupervisor` restores crashed or
  hung workers from checkpoints and journal replay (bit-identical to a
  crash-free run — see :mod:`repro.serving.workers`); a shard out of
  restarts degrades to clean error acks, or — with
  ``degraded_mode="reroute"`` — retires from the consistent-hash ring
  so new arrivals remap to the survivors.  ``fault_plan`` injects
  scripted chaos (:mod:`repro.serving.faults`) to prove all of it.
* **Auth** — an optional shared-secret handshake (``auth_token``): the
  first line of every ingest connection must present the token or the
  connection gets one error line and closes.
"""

from __future__ import annotations

import asyncio
import heapq
import hmac
import json
import logging
import os
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.engine import Matcher
from repro.core.outcome import Decision
from repro.errors import GatewayError, ReproError
from repro.model.entities import Task, Worker
from repro.model.events import ARRIVAL, DEPARTURE, MOVE, Arrival, Departure, Move, StreamEvent
from repro.serving.replay import record_to_event
from repro.serving.shard import (
    InlineShardBackend,
    Shard,
    ShardBackend,
    ShardRouter,
    build_shards,
)
from repro.serving.telemetry import Stamped, Telemetry
from repro.spatial.grid import Grid

__all__ = ["Gateway", "GatewaySnapshot", "render_prometheus"]

_LOGGER = logging.getLogger("repro.serving.gateway")


def _shard_logger(shard_id: int) -> logging.Logger:
    """The per-shard child logger (``repro.serving.gateway.shard.N``)."""
    return _LOGGER.getChild(f"shard.{shard_id}")

_DRAIN = object()  # queue sentinel: everything before it is processed first

# Per-connection ack queue bound (acks).  A client that stops reading
# accumulates acks in its own queue — never in the dispatcher — and is
# dropped when the queue fills.
_ACK_QUEUE_LIMIT = 4096

# Gateway lifecycle states.
_SERVING = "serving"
_DRAINING = "draining"
_CLOSED = "closed"


@dataclass
class _TrackedObject:
    """One churn-registry entry: which shard owns an admitted object.

    The entity is retained so a cross-shard ``Move`` can re-admit the
    object at its new location with its original deadline (``start`` and
    ``duration`` are immutable; only the location changes).
    """

    shard_id: int
    entity: Union[Worker, Task]


class _AckChannel:
    """Per-connection buffered ack writer.

    The single dispatcher serves every connection, so it must never
    block on (or even notice) one client's socket.  Each ingest
    connection owns a bounded ack queue drained by its own writer task:
    the dispatcher enqueues non-blocking, the writer task serialises,
    writes and ``drain()``\\ s — so a slow reader stalls only its own
    drain task, and TCP flow control applies per connection instead of
    head-of-line blocking the dispatcher's ack fan-out.  When the queue
    overflows, the client is dropped (``on_drop`` counts it) rather
    than stalling anybody.
    """

    __slots__ = ("_writer", "_queue", "_task", "_on_drop", "_writing", "dropped")

    def __init__(self, writer: asyncio.StreamWriter, on_drop, limit: int) -> None:
        self._writer = writer
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=limit)
        self._on_drop = on_drop
        self._writing = False
        self.dropped = False
        self._task = asyncio.create_task(self._drain_loop())

    def send(self, payload: dict) -> None:
        """Enqueue one reply; never blocks, drops the client on overflow."""
        if self.dropped or self._writer.is_closing():
            return
        try:
            self._queue.put_nowait(payload)
        except asyncio.QueueFull:
            # The client stopped reading its acks: cap its memory and
            # cut it loose — dispatch for everyone else continues.
            self.dropped = True
            self._on_drop()
            self._writer.close()

    @property
    def busy(self) -> bool:
        """Whether acks are still queued or being written."""
        return self._writing or not self._queue.empty()

    async def _drain_loop(self) -> None:
        writer = self._writer
        queue = self._queue
        dumps = json.dumps
        try:
            while True:
                payload = await queue.get()
                self._writing = True
                # Batch every immediately-available ack into one write +
                # one drain: under flat-out ingest the dispatcher lands
                # many acks per event-loop tick, and per-ack drains
                # would let the queue overflow needlessly.
                chunks = [dumps(payload).encode(), b"\n"]
                while not queue.empty():
                    chunks.append(dumps(queue.get_nowait()).encode())
                    chunks.append(b"\n")
                writer.write(b"".join(chunks))
                await writer.drain()
                self._writing = False
        except (ConnectionError, OSError):
            self._writing = False
        except asyncio.CancelledError:
            self._writing = False
            raise

    async def aclose(self, flush_deadline: float = 2.0) -> None:
        """Stop the writer task, giving queued acks a moment to land."""
        if not self.dropped and not self._writer.is_closing():
            deadline = time.perf_counter() + flush_deadline
            while self.busy and time.perf_counter() < deadline:
                await asyncio.sleep(0.01)
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass


@dataclass(frozen=True)
class GatewaySnapshot:
    """Point-in-time aggregate metrics of the gateway and its shards.

    Attributes:
        state: ``serving`` / ``draining`` / ``closed``.
        n_shards: shard count.
        ingested: arrivals accepted into the queue.
        processed: arrivals dispatched to a shard so far.
        malformed: rejected input lines (bad JSON, bad records,
            out-of-bounds locations).
        rejected: arrivals refused because the gateway was draining.
        out_of_order: arrivals whose timestamp regressed (still served,
            in ingest order).
        backpressure_waits: times a socket reader stalled on a full queue.
        backpressure_rejected: times :meth:`Gateway.offer` refused.
        slow_consumer_drops: connections dropped because their ack queue
            overflowed (the client stopped reading).
        queue_depth: events queued but not yet dispatched.
        connections: currently open ingest connections.
        arrivals / workers / tasks / matched / ignored_workers /
            ignored_tasks: totals over all shards.
        departed / moves: churn totals over all shards (migration
            departures included — ``arrivals`` similarly counts a
            migrated object once per hosting shard, so ``arrivals ==
            unique arrivals + migrations``).
        shards: per-shard ``(arrivals, workers, tasks, matched)`` rows.
        wall_seconds: seconds since the gateway was constructed.
        backend: shard execution backend (``inline`` or ``process``).
        transport: how events reach the shards — ``inline`` (same
            process), ``pipe`` (pickle frames), or ``shm``
            (shared-memory rings).  Process-backend shard rows with the
            shm transport also carry ``ring_request_depth`` /
            ``ring_reply_depth`` occupancy gauges.
        migrations: cross-shard ``Move`` migrations performed.
        worker_crashes: shard worker processes lost mid-run (always 0
            for the inline backend).
        worker_restarts: replacement workers forked by the supervisor
            (always 0 for the inline backend).
        auth_failures: connections refused by the shared-secret
            handshake (0 when ``--auth-token`` is unset).
        registry_size: live entries in the object→shard churn registry
            (bounded by live objects via the deadline expiry sweep).
        stage_latency: per-stage latency rollups of telemetry-sampled
            events (count, p50/p90/p99 ms, sparse log2 buckets — see
            :mod:`repro.serving.telemetry`), or None with telemetry
            disabled.

    Per-shard rows carry a ``health`` field
    (``healthy`` / ``restarting`` / ``degraded``) alongside counters,
    and a ``profile`` dict of matcher profiling counters (ring
    expansions, pool scans, bipartite build sizes) once any are
    non-zero.
    """

    state: str
    n_shards: int
    ingested: int
    processed: int
    malformed: int
    rejected: int
    out_of_order: int
    backpressure_waits: int
    backpressure_rejected: int
    queue_depth: int
    connections: int
    arrivals: int
    workers: int
    tasks: int
    matched: int
    ignored_workers: int
    ignored_tasks: int
    shards: Tuple[Dict[str, int], ...]
    wall_seconds: float
    departed: int = 0
    moves: int = 0
    slow_consumer_drops: int = 0
    backend: str = "inline"
    transport: str = "inline"
    migrations: int = 0
    worker_crashes: int = 0
    worker_restarts: int = 0
    auth_failures: int = 0
    registry_size: int = 0
    stage_latency: Optional[dict] = None

    def as_dict(self) -> dict:
        """A JSON-ready dict (the ``/snapshot`` payload)."""
        payload = {
            "kind": "snapshot",
            "state": self.state,
            "n_shards": self.n_shards,
            "ingested": self.ingested,
            "processed": self.processed,
            "malformed": self.malformed,
            "rejected": self.rejected,
            "out_of_order": self.out_of_order,
            "backpressure_waits": self.backpressure_waits,
            "backpressure_rejected": self.backpressure_rejected,
            "queue_depth": self.queue_depth,
            "connections": self.connections,
            "arrivals": self.arrivals,
            "workers": self.workers,
            "tasks": self.tasks,
            "matched": self.matched,
            "ignored_workers": self.ignored_workers,
            "ignored_tasks": self.ignored_tasks,
            "departed": self.departed,
            "moves": self.moves,
            "slow_consumer_drops": self.slow_consumer_drops,
            "backend": self.backend,
            "transport": self.transport,
            "migrations": self.migrations,
            "worker_crashes": self.worker_crashes,
            "worker_restarts": self.worker_restarts,
            "auth_failures": self.auth_failures,
            "registry_size": self.registry_size,
            "shards": list(self.shards),
            "wall_seconds": round(self.wall_seconds, 3),
        }
        if self.stage_latency is not None:
            payload["stage_latency"] = self.stage_latency
        return payload

    def summary(self) -> str:
        """One human-readable line."""
        return (
            f"[gateway {self.state}: shards={self.n_shards} "
            f"arrivals={self.arrivals} matched={self.matched} "
            f"malformed={self.malformed} queue={self.queue_depth} "
            f"wall={self.wall_seconds:.2f}s]"
        )


def render_prometheus(
    snapshot: GatewaySnapshot, telemetry: Optional[Telemetry] = None
) -> str:
    """The snapshot as Prometheus exposition text (``/metrics``).

    With a ``telemetry`` hub attached (the gateway passes its own), the
    per-stage duration histogram series
    (``ftoa_gateway_stage_duration_seconds``) are appended.
    """
    lines: List[str] = []

    def gauge(name: str, value, help_text: str, kind: str = "gauge") -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {value}")

    gauge("ftoa_gateway_up", 1 if snapshot.state != _CLOSED else 0,
          "1 while the gateway accepts arrivals")
    lines.append(
        "# HELP ftoa_gateway_transport active shard transport "
        "(info label: inline, pipe, or shm)"
    )
    lines.append("# TYPE ftoa_gateway_transport gauge")
    lines.append(
        f'ftoa_gateway_transport{{transport="{snapshot.transport}"}} 1'
    )
    gauge("ftoa_gateway_shards", snapshot.n_shards, "configured shard count")
    gauge("ftoa_gateway_arrivals_total", snapshot.arrivals,
          "arrivals observed by all shards", "counter")
    gauge("ftoa_gateway_workers_total", snapshot.workers,
          "worker arrivals observed", "counter")
    gauge("ftoa_gateway_tasks_total", snapshot.tasks,
          "task arrivals observed", "counter")
    gauge("ftoa_gateway_matched_total", snapshot.matched,
          "committed worker-task pairs", "counter")
    gauge("ftoa_gateway_ignored_workers_total", snapshot.ignored_workers,
          "workers with no guide node", "counter")
    gauge("ftoa_gateway_ignored_tasks_total", snapshot.ignored_tasks,
          "tasks with no guide node", "counter")
    gauge("ftoa_gateway_departed_total", snapshot.departed,
          "objects that left unmatched via churn departures", "counter")
    gauge("ftoa_gateway_moves_total", snapshot.moves,
          "churn relocations of waiting objects", "counter")
    gauge("ftoa_gateway_slow_consumer_drops_total",
          snapshot.slow_consumer_drops,
          "connections dropped on ack-queue overflow", "counter")
    gauge("ftoa_gateway_migrations_total", snapshot.migrations,
          "cross-shard move migrations", "counter")
    gauge("ftoa_gateway_worker_crashes_total", snapshot.worker_crashes,
          "shard worker processes lost mid-run", "counter")
    gauge("ftoa_gateway_worker_restarts_total", snapshot.worker_restarts,
          "replacement shard workers forked by the supervisor", "counter")
    gauge("ftoa_gateway_auth_failures_total", snapshot.auth_failures,
          "connections refused by the auth handshake", "counter")
    gauge("ftoa_gateway_registry_size", snapshot.registry_size,
          "live object->shard churn-registry entries")
    gauge("ftoa_gateway_malformed_total", snapshot.malformed,
          "rejected input lines", "counter")
    gauge("ftoa_gateway_rejected_total", snapshot.rejected,
          "arrivals refused after drain", "counter")
    gauge("ftoa_gateway_out_of_order_total", snapshot.out_of_order,
          "arrivals with regressing timestamps", "counter")
    gauge("ftoa_gateway_backpressure_waits_total", snapshot.backpressure_waits,
          "socket reader stalls on a full queue", "counter")
    gauge("ftoa_gateway_backpressure_rejected_total",
          snapshot.backpressure_rejected,
          "non-blocking offers refused on a full queue", "counter")
    gauge("ftoa_gateway_queue_depth", snapshot.queue_depth,
          "arrivals queued, not yet dispatched")
    gauge("ftoa_gateway_connections", snapshot.connections,
          "open ingest connections")

    lines.append("# HELP ftoa_shard_arrivals_total arrivals per shard")
    lines.append("# TYPE ftoa_shard_arrivals_total counter")
    for row in snapshot.shards:
        lines.append(
            f'ftoa_shard_arrivals_total{{shard="{row["shard"]}"}} '
            f'{row["arrivals"]}'
        )
    lines.append("# HELP ftoa_shard_matched_total committed pairs per shard")
    lines.append("# TYPE ftoa_shard_matched_total counter")
    for row in snapshot.shards:
        lines.append(
            f'ftoa_shard_matched_total{{shard="{row["shard"]}"}} '
            f'{row["matched"]}'
        )
    lines.append(
        "# HELP ftoa_shard_up 1 while the shard's worker is healthy"
    )
    lines.append("# TYPE ftoa_shard_up gauge")
    for row in snapshot.shards:
        up = 1 if row.get("health", "healthy") == "healthy" else 0
        lines.append(f'ftoa_shard_up{{shard="{row["shard"]}"}} {up}')
    if any("ring_request_depth" in row for row in snapshot.shards):
        lines.append(
            "# HELP ftoa_shard_ring_depth occupied slots per shm ring"
        )
        lines.append("# TYPE ftoa_shard_ring_depth gauge")
        for row in snapshot.shards:
            if "ring_request_depth" not in row:
                continue
            lines.append(
                f'ftoa_shard_ring_depth{{shard="{row["shard"]}",'
                f'ring="request"}} {row["ring_request_depth"]}'
            )
            lines.append(
                f'ftoa_shard_ring_depth{{shard="{row["shard"]}",'
                f'ring="reply"}} {row["ring_reply_depth"]}'
            )
    if telemetry is not None and telemetry.enabled:
        lines.extend(telemetry.prometheus_lines())
    return "\n".join(lines) + "\n"


class Gateway:
    """The asyncio serving gateway over sharded matching sessions.

    Args:
        grid: the matching grid (shard routing keys off its cells).
        matcher_factory: builds shard ``i``'s private matcher; called
            once per shard at construction.
        n_shards: shard count (1 reproduces the offline session exactly).
        queue_size: bound of the ingest queue (the backpressure limit).
        replicas: virtual nodes per shard on the consistent-hash ring.
        ack_queue_size: per-connection ack buffer bound; a client whose
            queue overflows (it stopped reading) is dropped.
        backend: shard execution backend — ``"inline"`` (every shard on
            this event loop) or ``"process"`` (one forked worker process
            per shard, :class:`~repro.serving.workers.WorkerPool`).
            Same shard count ⇒ bit-identical results either way.
        worker_outbox_size: per-worker IPC outbox bound (``process``
            backend only).
        max_worker_restarts: crash recoveries per shard before it
            degrades (``process`` only; ``None`` = the pool's default,
            ``0`` = the pre-recovery behaviour where the first crash
            degrades).
        degraded_mode: what happens to a shard that is out of restarts —
            ``"reject"`` (default: every event for it gets a clean error
            ack) or ``"reroute"`` (its ring tokens retire, so *new*
            arrivals remap to surviving shards; objects the dead shard
            owned are still lost).
        fault_plan: scripted chaos for the worker fleet
            (:class:`~repro.serving.faults.FaultPlan`; ``process``
            backend only).
        auth_token: shared secret for ingest sockets.  When set, a
            connection's first line must be ``{"kind": "auth", "token":
            <secret>}``; a wrong or missing token gets one error line
            and the connection closes.  In-process :meth:`submit` /
            :meth:`offer` and the metrics endpoint are unaffected.
        worker_config: extra :class:`~repro.serving.workers.WorkerPool`
            keyword overrides (``checkpoint_every``,
            ``heartbeat_interval``, ``restart_backoff``,
            ``ring_slots`` …) for tests and tuning.
        transport: how events reach ``process``-backend workers —
            ``"pipe"`` (length-prefixed pickle frames, the default) or
            ``"shm"`` (shared-memory rings of fixed-width records; see
            :mod:`repro.serving.shmring`).  Ignored by the inline
            backend except that ``"shm"`` there is an error.  Same
            shard count ⇒ bit-identical results on every transport.
        telemetry: the stage-latency telemetry hub
            (:class:`~repro.serving.telemetry.Telemetry`).  ``None``
            (default) builds one at the default sampling rate; pass
            ``Telemetry(sample_every=0)`` to disable stamping, or a
            configured hub to tune sampling and trace bounds.

    Usage::

        gateway = Gateway(grid, lambda i: GreedyMatcher(travel), n_shards=4)
        await gateway.start(port=0, metrics_port=0)
        await gateway.submit(arrival)          # or sockets / offer()
        snapshot = await gateway.drain()       # terminal
        await gateway.close()

    Raises:
        repro.errors.ConfigurationError: for bad shard/queue parameters.
    """

    def __init__(
        self,
        grid: Grid,
        matcher_factory: Callable[[int], Matcher],
        n_shards: int = 1,
        queue_size: int = 1024,
        replicas: int = 64,
        ack_queue_size: int = _ACK_QUEUE_LIMIT,
        backend: str = "inline",
        worker_outbox_size: int = 512,
        max_worker_restarts: Optional[int] = None,
        degraded_mode: str = "reject",
        fault_plan=None,
        auth_token: Optional[str] = None,
        worker_config: Optional[dict] = None,
        transport: str = "pipe",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if queue_size <= 0:
            raise GatewayError(f"queue_size must be positive, got {queue_size}")
        if ack_queue_size <= 0:
            raise GatewayError(
                f"ack_queue_size must be positive, got {ack_queue_size}"
            )
        if degraded_mode not in ("reject", "reroute"):
            raise GatewayError(
                f"unknown degraded_mode {degraded_mode!r}; "
                "use 'reject' or 'reroute'"
            )
        self.grid = grid
        self.router = ShardRouter(grid, n_shards, replicas=replicas)
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(n_shards=n_shards)
        )
        self.degraded_mode = degraded_mode
        self.auth_token = auth_token
        self.auth_failures = 0
        self._degraded_shards: set = set()
        if transport not in ("pipe", "shm"):
            raise GatewayError(
                f"unknown transport {transport!r}; use 'pipe' or 'shm'"
            )
        if backend == "inline":
            if fault_plan:
                raise GatewayError(
                    "fault plans need worker processes to hurt; "
                    "use backend='process'"
                )
            if transport == "shm":
                raise GatewayError(
                    "the shm transport needs worker processes; "
                    "use backend='process'"
                )
            self._backend: ShardBackend = InlineShardBackend(
                build_shards(n_shards, matcher_factory)
            )
        elif backend == "process":
            from repro.serving.workers import WorkerPool

            pool_kwargs = dict(worker_config or {})
            if max_worker_restarts is not None:
                pool_kwargs["max_restarts"] = max_worker_restarts
            pool_kwargs.setdefault("transport", transport)
            self._backend = WorkerPool(
                n_shards,
                matcher_factory,
                outbox_size=worker_outbox_size,
                fault_plan=fault_plan,
                on_degraded=self._on_shard_degraded,
                extra_close_fds=self._child_close_fds,
                **pool_kwargs,
            )
        else:
            raise GatewayError(
                f"unknown backend {backend!r}; use 'inline' or 'process'"
            )
        self.queue_size = int(queue_size)
        self.ack_queue_size = int(ack_queue_size)
        self._queue: Optional[asyncio.Queue] = None
        self._replies: Optional[asyncio.Queue] = None
        self._state = _SERVING
        self._seq = 0
        self._last_time: Optional[float] = None
        self._dispatch_time: Optional[float] = None
        self._started = time.perf_counter()
        # Counters (names match GatewaySnapshot fields).
        self.ingested = 0
        self.processed = 0
        self.malformed = 0
        self.rejected = 0
        self.out_of_order = 0
        self.backpressure_waits = 0
        self.backpressure_rejected = 0
        self.slow_consumer_drops = 0
        self.migrations = 0
        self.connections = 0
        # Object → shard registry: churn events name an object, not a
        # location, so they are routed to the shard that admitted it.
        # The entry keeps the arrival entity (cross-shard Move migration
        # rebuilds a deadline-preserving arrival from it) and is bounded
        # by *live* objects: a deadline-indexed heap sweeps entries once
        # stream time passes their deadline, when no legal churn can
        # reference them any more.
        self._objects: Dict[Tuple[str, int], _TrackedObject] = {}
        self._expiry: List[Tuple[float, str, int]] = []
        # Async plumbing, created by start().
        self._dispatcher: Optional[asyncio.Task] = None
        self._collector: Optional[asyncio.Task] = None
        self._drained: Optional[asyncio.Event] = None
        self._drain_requested = False
        self._final_snapshot: Optional[GatewaySnapshot] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._conn_writers: set = set()
        self._channels: set = set()
        self._inflight_replies = 0
        self._tcp_port: Optional[int] = None
        self._metrics_port: Optional[int] = None
        self._unix_path: Optional[str] = None

    @property
    def shards(self) -> List[Shard]:
        """The in-process shard list (inline backend only)."""
        shards = getattr(self._backend, "shards", None)
        if shards is None:
            raise GatewayError(
                "the worker-pool backend has no in-process shards; use "
                "shard_outcomes() and snapshot() instead"
            )
        return shards

    @property
    def backend_name(self) -> str:
        """``inline`` or ``process``."""
        return self._backend.name

    @property
    def degraded_shards(self) -> frozenset:
        """Shard ids the supervisor has given up on."""
        return frozenset(self._degraded_shards)

    def _on_shard_degraded(self, shard_id: int) -> None:
        """Worker-pool callback: one shard is out of restarts.

        ``reject`` mode leaves routing alone — events for the shard keep
        failing fast into clean error acks.  ``reroute`` retires the
        shard's ring tokens so *new* arrivals remap to the survivors
        (the consistent-hashing arc takeover); churn for objects the
        dead shard owned still errors, because their state died with it.
        """
        self._degraded_shards.add(shard_id)
        _shard_logger(shard_id).error(
            "shard %d degraded: worker out of restarts (%s mode)",
            shard_id, self.degraded_mode,
        )
        if self.degraded_mode == "reroute":
            try:
                self.router.retire_shard(shard_id)
            except ReproError:
                # The last live shard: nowhere to reroute to — reject
                # semantics apply by default.
                pass

    def _child_close_fds(self) -> List[int]:
        """Fds a *re-forked* worker must close (best-effort, fork-time).

        The initial fork happens before any listener exists, but
        replacement workers fork from a gateway with live server and
        connection sockets; a child holding a dup of those would pin
        ports open (and hold peers' EOF hostage) past the gateway's own
        close.
        """
        fds: List[int] = []
        for server in self._servers:
            for sock in getattr(server, "sockets", None) or ():
                try:
                    fds.append(sock.fileno())
                except (OSError, ValueError):  # pragma: no cover - closing
                    pass
        for writer in list(self._conn_writers):
            sock = writer.get_extra_info("socket")
            if sock is not None:
                try:
                    fds.append(sock.fileno())
                except (OSError, ValueError):  # pragma: no cover - closing
                    pass
        return [fd for fd in fds if fd >= 0]

    # -- lifecycle ----------------------------------------------------- #

    async def start(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        metrics_host: str = "127.0.0.1",
        metrics_port: Optional[int] = None,
    ) -> None:
        """Start the dispatcher and any configured listeners.

        ``port`` / ``metrics_port`` may be 0 for an ephemeral bind; the
        bound ports are then readable from :attr:`tcp_port` /
        :attr:`metrics_port`.  All listeners are optional — a gateway
        without sockets is driven purely by :meth:`submit` /
        :meth:`offer`.
        """
        if self._dispatcher is not None:
            raise GatewayError("gateway already started")
        # The backend forks worker processes (when backend="process"),
        # so it must start before any listening socket exists — children
        # must never inherit server fds and pin ports open.
        await self._backend.start()
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._replies = asyncio.Queue(maxsize=self.queue_size)
        self._drained = asyncio.Event()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._collector = asyncio.create_task(self._collect_loop())
        try:
            if port is not None:
                server = await asyncio.start_server(
                    self._handle_ingest, host, port
                )
                self._servers.append(server)
                self._tcp_port = server.sockets[0].getsockname()[1]
            if unix_path is not None:
                # Stale socket files from crashed runs are no concern:
                # asyncio's create_unix_server unlinks any pre-existing
                # socket path before binding.
                server = await asyncio.start_unix_server(
                    self._handle_ingest, path=unix_path
                )
                self._servers.append(server)
                self._unix_path = unix_path
            if metrics_port is not None:
                server = await asyncio.start_server(
                    self._handle_http, metrics_host, metrics_port
                )
                self._servers.append(server)
                self._metrics_port = server.sockets[0].getsockname()[1]
        except Exception:
            # Roll back a partial start: no leaked listeners, pending
            # loop tasks or orphaned workers — the gateway stays
            # startable.
            for server in self._servers:
                server.close()
            self._servers = []
            for task in (self._dispatcher, self._collector):
                if task is not None:
                    task.cancel()
                    try:
                        await task
                    except asyncio.CancelledError:
                        pass
            await self._backend.aclose()
            self._dispatcher = None
            self._collector = None
            self._queue = None
            self._replies = None
            self._drained = None
            self._tcp_port = None
            self._metrics_port = None
            self._unix_path = None
            raise

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound ingest TCP port (after :meth:`start`)."""
        return self._tcp_port

    @property
    def metrics_port(self) -> Optional[int]:
        """The bound metrics HTTP port (after :meth:`start`)."""
        return self._metrics_port

    @property
    def state(self) -> str:
        """``serving`` / ``draining`` / ``closed``."""
        return self._state

    async def drain(self) -> GatewaySnapshot:
        """Graceful drain: flush the queue, ``finish()`` every shard.

        Terminal and idempotent — concurrent and repeated calls all
        return the same frozen final snapshot.
        """
        self._require_started()
        if self._state == _SERVING:
            self._state = _DRAINING
        if not self._drain_requested:
            self._drain_requested = True
            await self._queue.put(_DRAIN)
        await self._drained.wait()
        return self._final_snapshot

    async def close(self) -> GatewaySnapshot:
        """Stop the listeners, drain, and return the final snapshot."""
        snapshot = await self.drain()
        for server in self._servers:
            server.close()
        # Handlers woken by the same drain event may still owe their
        # client a reply (the drain-record snapshot), and the buffered
        # ack channels may still be writing queued acks out; give both
        # a moment to land before cutting connections.
        deadline = time.perf_counter() + 2.0
        while (
            self._inflight_replies or any(c.busy for c in self._channels)
        ) and time.perf_counter() < deadline:
            await asyncio.sleep(0.01)
        # Python 3.12's Server.wait_closed() waits for every connection
        # handler to finish, and idle ingest handlers sit in readline()
        # until the *client* hangs up — close their transports first or
        # shutdown would hang behind any lingering connection.
        for writer in list(self._conn_writers):
            writer.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers = []
        # The drain barrier already collected every worker's outcome;
        # now reap the processes themselves (no-op for inline shards).
        await self._backend.aclose()
        if self._unix_path is not None:
            # asyncio does not unlink unix sockets on close; a stale
            # path would make the next `repro serve --unix` fail with
            # EADDRINUSE.
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
            self._unix_path = None
        return snapshot

    async def wait_drained(self) -> GatewaySnapshot:
        """Block until some client or caller drains the gateway."""
        self._require_started()
        await self._drained.wait()
        return self._final_snapshot

    def shard_outcomes(self):
        """Per-shard :class:`AssignmentOutcome`\\ s (after the drain).

        A shard whose worker was lost for good contributes a structured
        :class:`~repro.serving.workers.ShardOutcome` carrying the
        failure, restart count and final health state.
        """
        if self._state != _CLOSED:
            raise GatewayError("shard outcomes are available after drain()")
        return list(self._backend.outcomes)

    # -- in-process ingest --------------------------------------------- #

    def _route(self, event: StreamEvent) -> int:
        """The shard one event belongs to at ingest time (no side effects).

        Arrivals route by location (consistent spatial hashing); churn
        events route to the shard that admitted the object.  The
        dispatcher re-resolves churn ownership at dispatch time, because
        an in-flight cross-shard migration may have moved the object
        between ingest and dispatch.  Callers register accepted arrivals
        via :meth:`_register` (like stamping, registration must cover
        *accepted* events only, or a refused offer would leave a phantom
        object behind).

        Raises:
            GatewayError: for a churn event naming an unknown object.
        """
        if event.event_kind is ARRIVAL:
            return self.router.shard_of(event)
        entry = self._objects.get((event.kind, event.object_id))
        if entry is None:
            raise GatewayError(
                f"{event.event_kind} of unknown {event.kind} "
                f"{event.object_id}: the gateway never saw it arrive"
            )
        return entry.shard_id

    def _register(self, event: StreamEvent, shard_id: int) -> None:
        """Record an accepted arrival's owning shard for churn routing."""
        if event.event_kind is ARRIVAL:
            entity = event.entity
            self._objects[(event.kind, entity.id)] = _TrackedObject(
                shard_id, entity
            )
            heapq.heappush(
                self._expiry, (entity.deadline, event.kind, entity.id)
            )

    def _trim_registry(self) -> None:
        """Expiry sweep: drop registry entries whose deadline has passed.

        Once stream time moves strictly past an object's deadline, no
        legal churn can reference it (churn is sampled inside the
        availability window), so matched/expired entries stop pinning
        memory and the registry is bounded by *live* objects.

        The clock is the **dispatcher's** running max of dispatched
        event times, not the ingest side's: every registry read that
        *behaves* on the entry (migration targeting, ownership) happens
        at dispatch, and the ingest side can run thousands of events
        ahead of a worker-pool backend — sweeping on ingest time would
        make registry contents (and therefore migrations) depend on
        queue depth instead of stream order.
        """
        now = self._dispatch_time
        if now is None:
            return
        expiry = self._expiry
        objects = self._objects
        while expiry and expiry[0][0] < now:
            _deadline, kind, object_id = heapq.heappop(expiry)
            entry = objects.get((kind, object_id))
            if entry is not None and entry.entity.deadline < now:
                del objects[(kind, object_id)]

    async def submit(self, event: StreamEvent) -> None:
        """Enqueue one event, waiting for queue space (backpressure)."""
        self._require_started()
        if self._state != _SERVING:
            self.rejected += 1
            raise GatewayError("gateway is draining; push refused")
        shard_id = self._route(event)
        if self._queue.full():
            self.backpressure_waits += 1
        # Count before the (possibly blocking) put: the dispatcher may
        # process this very event while we park, and a metrics scrape
        # must never observe processed > ingested.
        self._stamp(event)
        self._register(event, shard_id)
        self.ingested += 1
        stamps = self.telemetry.begin(event.seq)
        await self._queue.put(("event", event, shard_id, None, stamps))

    def offer(self, event: StreamEvent) -> bool:
        """Non-blocking enqueue; False when the backpressure limit is hit.

        Raises:
            GatewayError: when the gateway is draining or closed, or for
                a churn event naming an unknown object.
        """
        self._require_started()
        if self._state != _SERVING:
            self.rejected += 1
            raise GatewayError("gateway is draining; push refused")
        shard_id = self._route(event)
        stamps = self.telemetry.begin(event.seq)
        try:
            self._queue.put_nowait(("event", event, shard_id, None, stamps))
        except asyncio.QueueFull:
            self.backpressure_rejected += 1
            return False
        # Stamp and register only accepted events, or refused offers
        # would corrupt the out_of_order accounting and leave phantom
        # objects in the churn-routing registry.
        self._stamp(event)
        self._register(event, shard_id)
        self.ingested += 1
        return True

    # -- metrics ------------------------------------------------------- #

    def snapshot(self) -> GatewaySnapshot:
        """Aggregate the shard sessions plus the gateway counters.

        Synchronous: with the worker-pool backend the per-shard rows are
        the *latest known* worker snapshots, which may lag the live
        sessions — :meth:`snapshot_refreshed` performs the round trip.
        """
        if self._final_snapshot is not None:
            return self._final_snapshot
        return self._snapshot_live()

    async def snapshot_refreshed(self) -> GatewaySnapshot:
        """Like :meth:`snapshot`, but round-trips out-of-process shards
        first (a no-op for the inline backend)."""
        if self._final_snapshot is not None:
            return self._final_snapshot
        await self._backend.refresh_snapshots()
        return self._snapshot_live()

    def _snapshot_live(self) -> GatewaySnapshot:
        rows = []
        arrivals = workers = tasks = matched = 0
        ignored_workers = ignored_tasks = departed = moves = 0
        health = self._backend.health()
        ring_depths = None
        depths_probe = getattr(self._backend, "ring_depths", None)
        if depths_probe is not None:
            ring_depths = depths_probe()
        for shard_id, snap in enumerate(self._backend.snapshots()):
            arrivals += snap.arrivals
            workers += snap.workers
            tasks += snap.tasks
            matched += snap.matched
            ignored_workers += snap.ignored_workers
            ignored_tasks += snap.ignored_tasks
            departed += snap.departed
            moves += snap.moves
            row = {
                "shard": shard_id,
                "arrivals": snap.arrivals,
                "workers": snap.workers,
                "tasks": snap.tasks,
                "matched": snap.matched,
                "health": health[shard_id]
                if shard_id < len(health)
                else "healthy",
            }
            if ring_depths is not None and shard_id < len(ring_depths):
                req_depth, rep_depth = ring_depths[shard_id]
                row["ring_request_depth"] = req_depth
                row["ring_reply_depth"] = rep_depth
            if snap.profile is not None:
                row["profile"] = snap.profile
            rows.append(row)
        return GatewaySnapshot(
            state=self._state,
            n_shards=self._backend.n_shards,
            ingested=self.ingested,
            processed=self.processed,
            malformed=self.malformed,
            rejected=self.rejected,
            out_of_order=self.out_of_order,
            backpressure_waits=self.backpressure_waits,
            backpressure_rejected=self.backpressure_rejected,
            queue_depth=self._queue.qsize() if self._queue is not None else 0,
            connections=self.connections,
            arrivals=arrivals,
            workers=workers,
            tasks=tasks,
            matched=matched,
            ignored_workers=ignored_workers,
            ignored_tasks=ignored_tasks,
            shards=tuple(rows),
            wall_seconds=time.perf_counter() - self._started,
            departed=departed,
            moves=moves,
            slow_consumer_drops=self.slow_consumer_drops,
            backend=self._backend.name,
            transport=self._backend.transport,
            migrations=self.migrations,
            worker_crashes=self._backend.crashes,
            worker_restarts=self._backend.restarts,
            auth_failures=self.auth_failures,
            registry_size=len(self._objects),
            stage_latency=(
                self.telemetry.stage_summary()
                if self.telemetry.enabled
                else None
            ),
        )

    # -- internals ----------------------------------------------------- #

    def _require_started(self) -> None:
        if self._dispatcher is None:
            raise GatewayError("gateway not started; call await start() first")

    def _stamp(self, event: StreamEvent) -> StreamEvent:
        """Track stream-order metadata for one accepted event."""
        if self._last_time is not None and event.time < self._last_time:
            self.out_of_order += 1
        else:
            self._last_time = event.time
        return event

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    async def _dispatch_loop(self) -> None:
        """The single router: queue order is the stream's total order.

        The dispatcher never waits for decisions — it routes each event
        to its shard through the backend (which may park on a bounded
        worker outbox: the backpressure path) and forwards the decision
        *future* to the collector.  Per-shard submission order therefore
        equals ingest order, which is all Definition 4 needs, while
        worker processes execute their shards' streams concurrently.

        Churn ownership is re-resolved here (not at ingest) because a
        cross-shard migration ahead in the queue may have moved the
        object; a ``Move`` whose new location hashes to a foreign shard
        takes the migration path (:meth:`_migrate`), which is the one
        place dispatch synchronises on a decision.

        Inline fast path: with the inline backend every future resolves
        synchronously, so the dispatcher builds and sends the reply
        itself — no reply-queue hop, no collector wake-up — making the
        backend abstraction free for the classic single-process
        gateway.  Reply order is trivially dispatch order either way.
        """
        queue = self._queue
        replies = self._replies
        backend = self._backend
        fast = isinstance(backend, InlineShardBackend)
        while True:
            item = await queue.get()
            if item is _DRAIN:
                break
            tag, payload, shard_id, channel, stamps = item
            if tag != "event":
                if fast:
                    if channel is not None:
                        channel.send(payload)
                else:
                    await replies.put(
                        ("reply", payload, shard_id, channel, None, None)
                    )
                continue
            if stamps is not None:
                stamps.dispatch = time.monotonic_ns()
            # Advance the dispatch clock and expiry-sweep the registry
            # *before* resolving churn ownership: both are functions of
            # queue order alone, so every backend sees identical routing.
            if self._dispatch_time is None or payload.time > self._dispatch_time:
                self._dispatch_time = payload.time
                self._trim_registry()
            migrated = None
            if payload.event_kind is not ARRIVAL:
                key = (payload.kind, payload.object_id)
                entry = self._objects.get(key)
                if entry is not None:
                    shard_id = entry.shard_id
                if payload.event_kind is MOVE and entry is not None:
                    target = self._move_target(payload)
                    if (
                        target is not None
                        and target != shard_id
                        # Re-admission stamps the remaining window
                        # (below); an object at/past its deadline has
                        # none, so its move falls through to the owning
                        # shard's deadline-aware no-op instead.
                        and entry.entity.deadline > payload.time
                    ):
                        migrated = await self._migrate(
                            payload, entry, shard_id, target
                        )
                if migrated is None and payload.event_kind is DEPARTURE:
                    # A departed object can never legally churn again:
                    # drop its registry entry now, in dispatch order, so
                    # later lookups are deterministic regardless of how
                    # far acks lag.  Matched and expired objects keep
                    # theirs until the deadline sweep — a departure
                    # *after* a match is a legal, common record (the
                    # worker leaves to serve) and keeps getting its
                    # no-op ack while the object's window is open.
                    # Deliberate trade-off: the pop happens before the
                    # shard's verdict, so a departure the matcher then
                    # *rejects* (a poisoned timestamp) still erases the
                    # entry and later churn for that object errors at
                    # ingest.  Gating the pop on the ack would reopen
                    # the ingest-lag nondeterminism between backends;
                    # degraded-but-deterministic wins for a client that
                    # already sent a malformed departure.
                    self._objects.pop(key, None)
            if migrated is not None:
                # A migration is two internal submissions; its stages
                # don't map onto the single-event pipeline, so the
                # move's sample is dropped rather than recorded skewed.
                tag, payload, shard_id, future = migrated
                stamps = None
            elif fast:
                tag = "event"
                if stamps is not None:
                    # Inline backend: no transport hop and the shard
                    # runs right here — send/recv collapse to one stamp
                    # and the synchronous submit bounds the match stage.
                    now = time.monotonic_ns()
                    stamps.send = now
                    stamps.worker_recv = now
                    future = await backend.submit(shard_id, payload)
                    stamps.match_done = time.monotonic_ns()
                else:
                    future = await backend.submit(shard_id, payload)
            else:
                tag = "event"
                if stamps is None:
                    future = await backend.submit(shard_id, payload)
                else:
                    # Sampled event: the Stamped carrier piggybacks on
                    # the pipe frame (or takes the shm ESC side
                    # channel); the worker unwraps and stamps.
                    future = await backend.submit(
                        shard_id, Stamped(payload, stamps)
                    )
            if fast:
                reply = await self._resolve_reply(
                    tag, payload, shard_id, future, stamps
                )
                if channel is not None:
                    channel.send(reply)
            else:
                await replies.put(
                    (tag, payload, shard_id, channel, future, stamps)
                )
        await replies.put(_DRAIN)

    def _move_target(self, move: Move) -> Optional[int]:
        """The shard owning a move's destination, or None off-grid.

        An out-of-bounds destination is left for the owning shard's
        matcher to reject, so the error ack matches the inline,
        pre-migration behaviour exactly.
        """
        try:
            return self.router.shard_of_cell(self.grid.area_of(move.location))
        except ReproError:
            return None

    async def _migrate(
        self,
        move: Move,
        entry: _TrackedObject,
        owner: int,
        target: int,
    ) -> Tuple[str, StreamEvent, int, "asyncio.Future"]:
        """Cross-shard ``Move``: departure from the old shard, then a
        deadline-preserving arrival at the new one.

        The dispatcher blocks on the old shard's departure ack — the
        only way to learn, deterministically and in stream order,
        whether the object was still waiting (migrate) or already
        settled (the move is a no-op, exactly as within-shard churn
        treats settled objects).  Cross-shard moves are rare; the brief
        pipeline stall is the price of both backends staying
        bit-identical.  The registry entry flips to the new shard before
        any later event is routed — single dispatcher, so the update is
        atomic with respect to routing.

        Returns the reply-pipeline item ``(tag, event, shard, future)``
        for the move's ack slot.
        """
        departure = Departure(
            time=move.time, seq=move.seq, kind=move.kind,
            object_id=move.object_id,
        )
        loop = asyncio.get_running_loop()
        try:
            decision = await (await self._backend.submit(owner, departure))
        except Exception as exc:  # noqa: BLE001 — serve loop survives
            resolved = loop.create_future()
            resolved.set_exception(exc)
            return ("event", move, owner, resolved)
        if decision.action != Decision.DEPARTED:
            # Matched, ignored or expired: nothing to migrate — ack the
            # standing decision, the same no-op a within-shard move gets.
            resolved = loop.create_future()
            resolved.set_result(decision)
            return ("event", move, owner, resolved)
        # The re-admission is stamped at the move instant with the
        # *remaining* window: start' = move time, duration' = deadline −
        # move time, so the deadline is preserved exactly while the new
        # shard's matcher evaluates expiry and feasibility at the move
        # time — not at the original (stale) arrival instant, which
        # could pair the migrant with partners that expired long before
        # the move.  The caller guaranteed deadline > move.time.  The
        # seq is the triggering move's, so reruns are deterministic on
        # every ingest path.
        entity = replace(
            entry.entity,
            location=move.location,
            start=move.time,
            duration=entry.entity.deadline - move.time,
        )
        arrival = Arrival(
            time=move.time, seq=move.seq, kind=move.kind, entity=entity
        )
        self._objects[(move.kind, move.object_id)] = _TrackedObject(
            target, entity
        )
        self.migrations += 1
        future = await self._backend.submit(target, arrival)
        return ("migrate", move, target, future)

    async def _resolve_reply(
        self,
        tag: str,
        payload: StreamEvent,
        shard_id: int,
        future: "asyncio.Future",
        stamps=None,
    ) -> dict:
        """Await one decision future and build its ack line.

        Shared by the collector (worker-pool backend) and the
        dispatcher's inline fast path; a rejected event — including one
        whose worker crashed — becomes an error reply and a
        ``malformed`` bump, never a hang.  A sampled event's decision
        comes back wrapped in :class:`Stamped` from the worker path;
        this is the single unwrap point, where the ack-write stamp
        closes the pipeline and the durations land in the telemetry
        hub.
        """
        try:
            decision = await future
        except Exception as exc:  # noqa: BLE001 — serve loop survives
            self.malformed += 1
            _shard_logger(shard_id).debug(
                "event rejected by shard: %s", exc
            )
            return {"error": f"event rejected by shard: {exc}"}
        if type(decision) is Stamped:
            # The worker's copy carries every stamp up to match_done;
            # prefer it over the local reference (they diverge across
            # the pickle boundary on the process backend).
            stamps = decision.stamps
            decision = decision.value
        if stamps is not None:
            stamps.ack_write = time.monotonic_ns()
            self.telemetry.record(shard_id, stamps)
        self.processed += 1
        if tag == "migrate":
            return {
                "kind": MOVE,
                "side": payload.kind,
                "id": payload.object_id,
                "shard": shard_id,
                "decision": decision.action,
                "partner": decision.partner_id,
                "migrated": True,
            }
        if payload.event_kind is ARRIVAL:
            return {
                "kind": payload.kind,
                "id": payload.entity.id,
                "shard": shard_id,
                "decision": decision.action,
                "partner": decision.partner_id,
            }
        return {
            "kind": payload.event_kind,
            "side": payload.kind,
            "id": payload.object_id,
            "shard": shard_id,
            "decision": decision.action,
            "partner": decision.partner_id,
        }

    async def _collect_loop(self) -> None:
        """Ordered ack collection: award replies in dispatch order.

        Futures resolve as workers ack, possibly out of global order;
        awaiting them FIFO restores it, so a connection's reply order
        always equals its send order — clients may pair replies to
        sends by position.  Error replies for rejected lines travel
        through the same pipeline ("reply" items).  A matcher that
        rejects an accepted event (an out-of-horizon timestamp hitting
        ``Timeline.slot_of``, a churn event for an object its shard
        never admitted) — or a crashed worker failing its in-flight
        futures — yields an error reply and a ``malformed`` bump; one
        poisoned event or dead worker must never hang a connection.
        Replies go through each connection's buffered
        :class:`_AckChannel`, so the collector never blocks on a slow
        reader.  On the drain sentinel the collector runs the backend's
        ``finish()`` barrier and freezes the final snapshot.
        """
        replies = self._replies
        while True:
            item = await replies.get()
            if item is _DRAIN:
                break
            tag, payload, shard_id, channel, future, stamps = item
            if tag == "reply":
                reply = payload
            else:
                # Registry upkeep (departure pops, expiry sweep) already
                # happened in dispatch order.
                reply = await self._resolve_reply(
                    tag, payload, shard_id, future, stamps
                )
            if channel is not None:
                channel.send(reply)
        # Drain barrier: every shard's stream closes (idempotently) and
        # the final snapshot freezes for late /snapshot readers.
        await self._backend.finish()
        self._state = _CLOSED
        self._final_snapshot = self._snapshot_live()
        self._drained.set()

    # -- socket ingest ------------------------------------------------- #

    def _count_slow_consumer_drop(self) -> None:
        self.slow_consumer_drops += 1
        _LOGGER.warning(
            "dropped a slow consumer: ack queue overflowed "
            "(limit %d)", self.ack_queue_size,
        )

    async def _handle_ingest(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        self._conn_writers.add(writer)
        channel = _AckChannel(
            writer, self._count_slow_consumer_drop, self.ack_queue_size
        )
        self._channels.add(channel)
        try:
            if self.auth_token is not None and not await self._authenticate(
                reader, channel
            ):
                return  # finally flushes the error line, then closes
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line or line.startswith(b"#"):
                    continue
                await self._ingest_line(line, channel)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Event-loop shutdown while parked in readline(): finish the
            # handler cleanly so teardown doesn't log the cancellation.
            pass
        finally:
            self.connections -= 1
            # Flush the channel's owed acks (the client may half-close
            # after sending and still read replies), then tear down.
            await channel.aclose()
            self._channels.discard(channel)
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Loop teardown may cancel the handler while it waits
                # for the transport close; ending the task cancelled
                # would make the protocol's completion callback log a
                # spurious error.
                pass

    async def _authenticate(
        self, reader: asyncio.StreamReader, channel: _AckChannel
    ) -> bool:
        """First-line shared-secret handshake (``auth_token`` is set).

        The connection's first line must be ``{"kind": "auth", "token":
        <secret>}``; the reply is ``{"kind": "auth", "ok": true}``.
        Anything else — wrong token, missing token, malformed JSON, a
        data line sent first, EOF — earns one clean error line and the
        connection closes.  The error never discloses whether the token
        was wrong or missing.
        """
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            line = b""
        token = None
        if line:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                record = None
            if isinstance(record, dict) and record.get("kind") == "auth":
                token = record.get("token")
        if not isinstance(token, str) or not hmac.compare_digest(
            token, self.auth_token
        ):
            self.auth_failures += 1
            _LOGGER.warning("ingest connection refused: auth handshake failed")
            channel.send(
                {"error": "authentication failed: bad or missing token"}
            )
            return False
        channel.send({"kind": "auth", "ok": True})
        return True

    async def _ingest_line(self, line: bytes, channel: _AckChannel) -> None:
        """Parse one line; enqueue an event or reply.

        Replies to data lines (decision acks *and* error lines) travel
        through the dispatcher queue while serving, and wait for the
        drain to complete afterwards; every reply then funnels through
        the connection's FIFO ack channel — so a connection's *data*
        replies come back in exactly its send order.  ``config`` /
        ``snapshot`` control records are still answered out of band
        (their reply enters the channel immediately, ahead of acks the
        dispatcher has not produced yet): clients pairing replies to
        sends by position must not interleave them with unacknowledged
        data lines.  The ``drain`` record, sent last, is safe — its
        reply is sequenced after the flushed queue.
        """

        async def reply_in_order(payload: dict) -> None:
            if self._state != _SERVING:
                # The dispatcher is draining or gone; items enqueued now
                # would sit behind the _DRAIN sentinel forever.
                await self._reply_after_drain(channel, payload)
                return
            if self._queue.full():
                self.backpressure_waits += 1
            await self._queue.put(("error", payload, None, channel, None))

        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            self.malformed += 1
            await reply_in_order({"error": f"invalid JSON: {exc}"})
            return
        if not isinstance(record, dict):
            self.malformed += 1
            await reply_in_order({"error": "expected a JSON object"})
            return
        kind = record.get("kind")
        if kind == "config":
            # Streams dumped by `repro dump` open with a config record;
            # the gateway's discretisation is fixed at startup, so the
            # record is acknowledged and skipped.
            channel.send({"kind": "config", "ok": True})
            return
        if kind == "snapshot":
            channel.send((await self.snapshot_refreshed()).as_dict())
            return
        if kind == "drain":
            await self._reply_after_drain(channel, None, trigger=True)
            return
        if self._state != _SERVING:
            self.rejected += 1
            await self._reply_after_drain(
                channel, {"error": "gateway is draining; arrival refused"}
            )
            return
        try:
            event = record_to_event(record, seq=self._seq)
            shard_id = self._route(event)
        except (ReproError, ValueError, TypeError) as exc:
            self.malformed += 1
            await reply_in_order({"error": str(exc)})
            return
        self._next_seq()
        if self._queue.full():
            self.backpressure_waits += 1
        # Counters first — see submit(): a scrape during a blocking put
        # must never observe processed > ingested.
        self._stamp(event)
        self._register(event, shard_id)
        self.ingested += 1
        stamps = self.telemetry.begin(event.seq)
        await self._queue.put(("event", event, shard_id, channel, stamps))

    async def _reply_after_drain(
        self,
        channel: _AckChannel,
        payload: Optional[dict],
        trigger: bool = False,
    ) -> None:
        """Send a reply sequenced *after* the drained queue's acks.

        Waiting for the drain keeps the per-connection send-order reply
        contract once the dispatcher is gone (the dispatcher has already
        funnelled every owed ack into the channel by then, so the FIFO
        channel preserves the order).  ``trigger=True`` starts the drain
        itself and replies with the final snapshot (the ``drain``
        control record); the in-flight counter lets :meth:`close` hold
        connection teardown until these replies are enqueued and the
        channels flushed.
        """
        self._inflight_replies += 1
        try:
            if trigger:
                snapshot = await self.drain()
            else:
                await self._drained.wait()
                snapshot = self._final_snapshot
            reply = snapshot.as_dict() if payload is None else payload
            channel.send(reply)
        finally:
            self._inflight_replies -= 1

    # -- metrics HTTP -------------------------------------------------- #

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request_line = await asyncio.wait_for(reader.readline(), 5.0)
            except asyncio.TimeoutError:
                return
            parts = request_line.decode("latin-1").split()
            # Consume headers until the blank line ending the request.
            while True:
                header = await asyncio.wait_for(reader.readline(), 5.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            if len(parts) < 2 or parts[0] != "GET":
                self._http_reply(writer, 405, "text/plain", "method not allowed\n")
            else:
                path = parts[1].split("?", 1)[0]
                if path == "/metrics":
                    self._http_reply(
                        writer,
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        render_prometheus(
                            await self.snapshot_refreshed(),
                            telemetry=self.telemetry,
                        ),
                    )
                elif path == "/trace":
                    self._http_reply(
                        writer,
                        200,
                        "application/json",
                        json.dumps(self.telemetry.chrome_trace()) + "\n",
                    )
                elif path == "/snapshot":
                    self._http_reply(
                        writer,
                        200,
                        "application/json",
                        json.dumps(
                            (await self.snapshot_refreshed()).as_dict()
                        )
                        + "\n",
                    )
                elif path == "/healthz":
                    self._http_reply(writer, 200, "text/plain", self._state + "\n")
                else:
                    self._http_reply(writer, 404, "text/plain", "not found\n")
            await writer.drain()
        except (ConnectionError, asyncio.TimeoutError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _http_reply(
        writer: asyncio.StreamWriter, status: int, content_type: str, body: str
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}.get(
            status, "Error"
        )
        payload = body.encode()
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode() + payload)
