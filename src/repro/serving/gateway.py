"""The async serving gateway: live JSONL ingest over sharded sessions.

This is the I/O shell the ROADMAP called for on top of the PR 2 matcher
protocol: an asyncio event-loop driver that turns the reproduction into a
network-facing assignment server.

Data path::

    TCP / unix socket readers ──┐
                                ├──> bounded asyncio.Queue ──> dispatcher
    in-process submit()/offer() ┘          (backpressure)         │
                                                                  ▼
                                       ShardRouter (consistent spatial
                                       hashing over grid cells)
                                                                  │
                                  ┌───────────────┬───────────────┤
                                  ▼               ▼               ▼
                               Shard 0         Shard 1         Shard k
                          (MatchingSession) (MatchingSession)   ...

* **Ingest protocol** — one JSON object per line, the same arrival
  schema :mod:`repro.serving.replay` dumps.  Each arrival is acknowledged
  with a decision line (``{"kind", "id", "shard", "decision",
  "partner"}``), so clients can measure end-to-end latency.  Control
  records: ``{"kind": "snapshot"}`` returns the live snapshot,
  ``{"kind": "drain"}`` triggers the graceful drain and returns the
  final snapshot; ``config`` records are acknowledged and skipped.
  Malformed lines get an ``{"error": ...}`` line, a counter bump, and
  the connection stays open.
* **Ordering** — a single dispatcher consumes the queue FIFO, so the
  gateway's ingest order is the stream's total order (Definition 4) and
  a single-shard gateway is bit-identical to an offline
  :class:`~repro.serving.session.MatchingSession` over the same events
  (test-enforced).  Arrivals whose timestamp regresses are processed in
  ingest order and counted in ``out_of_order``.
* **Backpressure** — the queue is bounded (``queue_size``).  Socket
  readers await space (TCP's own flow control propagates the stall to
  the sender, ``backpressure_waits`` counts the stalls); the
  non-blocking :meth:`Gateway.offer` refuses instead
  (``backpressure_rejected``).
* **Drain semantics** — :meth:`Gateway.drain` stops intake, lets the
  dispatcher empty the queue, then calls ``finish()`` on every shard
  (shards that saw no traffic finish cleanly).  Drain is terminal:
  arrivals after it are refused with an error line, and the final
  snapshot is frozen for late ``/snapshot`` readers.
* **Metrics** — a stdlib-only HTTP endpoint serves ``/metrics``
  (Prometheus text), ``/snapshot`` (JSON) and ``/healthz``, aggregating
  :class:`~repro.serving.session.SessionSnapshot` counters across
  shards.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.engine import Matcher
from repro.errors import GatewayError, ReproError
from repro.model.events import Arrival
from repro.serving.replay import record_to_arrival
from repro.serving.shard import Shard, ShardRouter, build_shards
from repro.spatial.grid import Grid

__all__ = ["Gateway", "GatewaySnapshot", "render_prometheus"]

_DRAIN = object()  # queue sentinel: everything before it is processed first

# Per-connection ack backlog (bytes) above which a client that stopped
# reading is dropped — caps memory per slow client while keeping the
# happy path free of per-ack drain overhead, and keeps the single
# dispatcher from ever waiting on one connection.
_ACK_BUFFER_LIMIT = 64 * 1024

# Gateway lifecycle states.
_SERVING = "serving"
_DRAINING = "draining"
_CLOSED = "closed"


@dataclass(frozen=True)
class GatewaySnapshot:
    """Point-in-time aggregate metrics of the gateway and its shards.

    Attributes:
        state: ``serving`` / ``draining`` / ``closed``.
        n_shards: shard count.
        ingested: arrivals accepted into the queue.
        processed: arrivals dispatched to a shard so far.
        malformed: rejected input lines (bad JSON, bad records,
            out-of-bounds locations).
        rejected: arrivals refused because the gateway was draining.
        out_of_order: arrivals whose timestamp regressed (still served,
            in ingest order).
        backpressure_waits: times a socket reader stalled on a full queue.
        backpressure_rejected: times :meth:`Gateway.offer` refused.
        queue_depth: arrivals queued but not yet dispatched.
        connections: currently open ingest connections.
        arrivals / workers / tasks / matched / ignored_workers /
            ignored_tasks: totals over all shards.
        shards: per-shard ``(arrivals, workers, tasks, matched)`` rows.
        wall_seconds: seconds since the gateway was constructed.
    """

    state: str
    n_shards: int
    ingested: int
    processed: int
    malformed: int
    rejected: int
    out_of_order: int
    backpressure_waits: int
    backpressure_rejected: int
    queue_depth: int
    connections: int
    arrivals: int
    workers: int
    tasks: int
    matched: int
    ignored_workers: int
    ignored_tasks: int
    shards: Tuple[Dict[str, int], ...]
    wall_seconds: float

    def as_dict(self) -> dict:
        """A JSON-ready dict (the ``/snapshot`` payload)."""
        payload = {
            "kind": "snapshot",
            "state": self.state,
            "n_shards": self.n_shards,
            "ingested": self.ingested,
            "processed": self.processed,
            "malformed": self.malformed,
            "rejected": self.rejected,
            "out_of_order": self.out_of_order,
            "backpressure_waits": self.backpressure_waits,
            "backpressure_rejected": self.backpressure_rejected,
            "queue_depth": self.queue_depth,
            "connections": self.connections,
            "arrivals": self.arrivals,
            "workers": self.workers,
            "tasks": self.tasks,
            "matched": self.matched,
            "ignored_workers": self.ignored_workers,
            "ignored_tasks": self.ignored_tasks,
            "shards": list(self.shards),
            "wall_seconds": round(self.wall_seconds, 3),
        }
        return payload

    def summary(self) -> str:
        """One human-readable line."""
        return (
            f"[gateway {self.state}: shards={self.n_shards} "
            f"arrivals={self.arrivals} matched={self.matched} "
            f"malformed={self.malformed} queue={self.queue_depth} "
            f"wall={self.wall_seconds:.2f}s]"
        )


def render_prometheus(snapshot: GatewaySnapshot) -> str:
    """The snapshot as Prometheus exposition text (``/metrics``)."""
    lines: List[str] = []

    def gauge(name: str, value, help_text: str, kind: str = "gauge") -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {value}")

    gauge("ftoa_gateway_up", 1 if snapshot.state != _CLOSED else 0,
          "1 while the gateway accepts arrivals")
    gauge("ftoa_gateway_shards", snapshot.n_shards, "configured shard count")
    gauge("ftoa_gateway_arrivals_total", snapshot.arrivals,
          "arrivals observed by all shards", "counter")
    gauge("ftoa_gateway_workers_total", snapshot.workers,
          "worker arrivals observed", "counter")
    gauge("ftoa_gateway_tasks_total", snapshot.tasks,
          "task arrivals observed", "counter")
    gauge("ftoa_gateway_matched_total", snapshot.matched,
          "committed worker-task pairs", "counter")
    gauge("ftoa_gateway_ignored_workers_total", snapshot.ignored_workers,
          "workers with no guide node", "counter")
    gauge("ftoa_gateway_ignored_tasks_total", snapshot.ignored_tasks,
          "tasks with no guide node", "counter")
    gauge("ftoa_gateway_malformed_total", snapshot.malformed,
          "rejected input lines", "counter")
    gauge("ftoa_gateway_rejected_total", snapshot.rejected,
          "arrivals refused after drain", "counter")
    gauge("ftoa_gateway_out_of_order_total", snapshot.out_of_order,
          "arrivals with regressing timestamps", "counter")
    gauge("ftoa_gateway_backpressure_waits_total", snapshot.backpressure_waits,
          "socket reader stalls on a full queue", "counter")
    gauge("ftoa_gateway_backpressure_rejected_total",
          snapshot.backpressure_rejected,
          "non-blocking offers refused on a full queue", "counter")
    gauge("ftoa_gateway_queue_depth", snapshot.queue_depth,
          "arrivals queued, not yet dispatched")
    gauge("ftoa_gateway_connections", snapshot.connections,
          "open ingest connections")

    lines.append("# HELP ftoa_shard_arrivals_total arrivals per shard")
    lines.append("# TYPE ftoa_shard_arrivals_total counter")
    for row in snapshot.shards:
        lines.append(
            f'ftoa_shard_arrivals_total{{shard="{row["shard"]}"}} '
            f'{row["arrivals"]}'
        )
    lines.append("# HELP ftoa_shard_matched_total committed pairs per shard")
    lines.append("# TYPE ftoa_shard_matched_total counter")
    for row in snapshot.shards:
        lines.append(
            f'ftoa_shard_matched_total{{shard="{row["shard"]}"}} '
            f'{row["matched"]}'
        )
    return "\n".join(lines) + "\n"


class Gateway:
    """The asyncio serving gateway over sharded matching sessions.

    Args:
        grid: the matching grid (shard routing keys off its cells).
        matcher_factory: builds shard ``i``'s private matcher; called
            once per shard at construction.
        n_shards: shard count (1 reproduces the offline session exactly).
        queue_size: bound of the ingest queue (the backpressure limit).
        replicas: virtual nodes per shard on the consistent-hash ring.

    Usage::

        gateway = Gateway(grid, lambda i: GreedyMatcher(travel), n_shards=4)
        await gateway.start(port=0, metrics_port=0)
        await gateway.submit(arrival)          # or sockets / offer()
        snapshot = await gateway.drain()       # terminal
        await gateway.close()

    Raises:
        repro.errors.ConfigurationError: for bad shard/queue parameters.
    """

    def __init__(
        self,
        grid: Grid,
        matcher_factory: Callable[[int], Matcher],
        n_shards: int = 1,
        queue_size: int = 1024,
        replicas: int = 64,
    ) -> None:
        if queue_size <= 0:
            raise GatewayError(f"queue_size must be positive, got {queue_size}")
        self.grid = grid
        self.router = ShardRouter(grid, n_shards, replicas=replicas)
        self.shards: List[Shard] = build_shards(n_shards, matcher_factory)
        self.queue_size = int(queue_size)
        self._queue: Optional[asyncio.Queue] = None
        self._state = _SERVING
        self._seq = 0
        self._last_time: Optional[float] = None
        self._started = time.perf_counter()
        # Counters (names match GatewaySnapshot fields).
        self.ingested = 0
        self.processed = 0
        self.malformed = 0
        self.rejected = 0
        self.out_of_order = 0
        self.backpressure_waits = 0
        self.backpressure_rejected = 0
        self.connections = 0
        # Async plumbing, created by start().
        self._dispatcher: Optional[asyncio.Task] = None
        self._drained: Optional[asyncio.Event] = None
        self._drain_requested = False
        self._final_snapshot: Optional[GatewaySnapshot] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._conn_writers: set = set()
        self._inflight_replies = 0
        self._tcp_port: Optional[int] = None
        self._metrics_port: Optional[int] = None
        self._unix_path: Optional[str] = None

    # -- lifecycle ----------------------------------------------------- #

    async def start(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        metrics_host: str = "127.0.0.1",
        metrics_port: Optional[int] = None,
    ) -> None:
        """Start the dispatcher and any configured listeners.

        ``port`` / ``metrics_port`` may be 0 for an ephemeral bind; the
        bound ports are then readable from :attr:`tcp_port` /
        :attr:`metrics_port`.  All listeners are optional — a gateway
        without sockets is driven purely by :meth:`submit` /
        :meth:`offer`.
        """
        if self._dispatcher is not None:
            raise GatewayError("gateway already started")
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._drained = asyncio.Event()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        try:
            if port is not None:
                server = await asyncio.start_server(
                    self._handle_ingest, host, port
                )
                self._servers.append(server)
                self._tcp_port = server.sockets[0].getsockname()[1]
            if unix_path is not None:
                # Stale socket files from crashed runs are no concern:
                # asyncio's create_unix_server unlinks any pre-existing
                # socket path before binding.
                server = await asyncio.start_unix_server(
                    self._handle_ingest, path=unix_path
                )
                self._servers.append(server)
                self._unix_path = unix_path
            if metrics_port is not None:
                server = await asyncio.start_server(
                    self._handle_http, metrics_host, metrics_port
                )
                self._servers.append(server)
                self._metrics_port = server.sockets[0].getsockname()[1]
        except Exception:
            # Roll back a partial start: no leaked listeners or pending
            # dispatcher task, and the gateway stays startable.
            for server in self._servers:
                server.close()
            self._servers = []
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
            self._queue = None
            self._drained = None
            self._tcp_port = None
            self._metrics_port = None
            self._unix_path = None
            raise

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound ingest TCP port (after :meth:`start`)."""
        return self._tcp_port

    @property
    def metrics_port(self) -> Optional[int]:
        """The bound metrics HTTP port (after :meth:`start`)."""
        return self._metrics_port

    @property
    def state(self) -> str:
        """``serving`` / ``draining`` / ``closed``."""
        return self._state

    async def drain(self) -> GatewaySnapshot:
        """Graceful drain: flush the queue, ``finish()`` every shard.

        Terminal and idempotent — concurrent and repeated calls all
        return the same frozen final snapshot.
        """
        self._require_started()
        if self._state == _SERVING:
            self._state = _DRAINING
        if not self._drain_requested:
            self._drain_requested = True
            await self._queue.put(_DRAIN)
        await self._drained.wait()
        return self._final_snapshot

    async def close(self) -> GatewaySnapshot:
        """Stop the listeners, drain, and return the final snapshot."""
        snapshot = await self.drain()
        for server in self._servers:
            server.close()
        # Handlers woken by the same drain event may still owe their
        # client a reply (the drain-record snapshot); give those writes
        # a moment to land before cutting connections.
        deadline = time.perf_counter() + 2.0
        while self._inflight_replies and time.perf_counter() < deadline:
            await asyncio.sleep(0.01)
        # Python 3.12's Server.wait_closed() waits for every connection
        # handler to finish, and idle ingest handlers sit in readline()
        # until the *client* hangs up — close their transports first or
        # shutdown would hang behind any lingering connection.
        for writer in list(self._conn_writers):
            writer.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers = []
        if self._unix_path is not None:
            # asyncio does not unlink unix sockets on close; a stale
            # path would make the next `repro serve --unix` fail with
            # EADDRINUSE.
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
            self._unix_path = None
        return snapshot

    async def wait_drained(self) -> GatewaySnapshot:
        """Block until some client or caller drains the gateway."""
        self._require_started()
        await self._drained.wait()
        return self._final_snapshot

    def shard_outcomes(self):
        """Per-shard :class:`AssignmentOutcome`s (after the drain)."""
        if self._state != _CLOSED:
            raise GatewayError("shard outcomes are available after drain()")
        return [shard.outcome for shard in self.shards]

    # -- in-process ingest --------------------------------------------- #

    async def submit(self, arrival: Arrival) -> None:
        """Enqueue one arrival, waiting for queue space (backpressure)."""
        self._require_started()
        if self._state != _SERVING:
            self.rejected += 1
            raise GatewayError("gateway is draining; push refused")
        shard_id = self.router.shard_of(arrival)
        if self._queue.full():
            self.backpressure_waits += 1
        # Count before the (possibly blocking) put: the dispatcher may
        # process this very arrival while we park, and a metrics scrape
        # must never observe processed > ingested.
        self._stamp(arrival)
        self.ingested += 1
        await self._queue.put(("event", arrival, shard_id, None))

    def offer(self, arrival: Arrival) -> bool:
        """Non-blocking enqueue; False when the backpressure limit is hit.

        Raises:
            GatewayError: when the gateway is draining or closed.
        """
        self._require_started()
        if self._state != _SERVING:
            self.rejected += 1
            raise GatewayError("gateway is draining; push refused")
        shard_id = self.router.shard_of(arrival)
        try:
            self._queue.put_nowait(("event", arrival, shard_id, None))
        except asyncio.QueueFull:
            self.backpressure_rejected += 1
            return False
        # Stamp only accepted arrivals, or refused offers would corrupt
        # the out_of_order accounting.
        self._stamp(arrival)
        self.ingested += 1
        return True

    # -- metrics ------------------------------------------------------- #

    def snapshot(self) -> GatewaySnapshot:
        """Aggregate the shard sessions plus the gateway counters."""
        if self._final_snapshot is not None:
            return self._final_snapshot
        return self._snapshot_live()

    def _snapshot_live(self) -> GatewaySnapshot:
        rows = []
        arrivals = workers = tasks = matched = 0
        ignored_workers = ignored_tasks = 0
        for shard in self.shards:
            snap = shard.snapshot()
            arrivals += snap.arrivals
            workers += snap.workers
            tasks += snap.tasks
            matched += snap.matched
            ignored_workers += snap.ignored_workers
            ignored_tasks += snap.ignored_tasks
            rows.append(
                {
                    "shard": shard.shard_id,
                    "arrivals": snap.arrivals,
                    "workers": snap.workers,
                    "tasks": snap.tasks,
                    "matched": snap.matched,
                }
            )
        return GatewaySnapshot(
            state=self._state,
            n_shards=len(self.shards),
            ingested=self.ingested,
            processed=self.processed,
            malformed=self.malformed,
            rejected=self.rejected,
            out_of_order=self.out_of_order,
            backpressure_waits=self.backpressure_waits,
            backpressure_rejected=self.backpressure_rejected,
            queue_depth=self._queue.qsize() if self._queue is not None else 0,
            connections=self.connections,
            arrivals=arrivals,
            workers=workers,
            tasks=tasks,
            matched=matched,
            ignored_workers=ignored_workers,
            ignored_tasks=ignored_tasks,
            shards=tuple(rows),
            wall_seconds=time.perf_counter() - self._started,
        )

    # -- internals ----------------------------------------------------- #

    def _require_started(self) -> None:
        if self._dispatcher is None:
            raise GatewayError("gateway not started; call await start() first")

    def _stamp(self, arrival: Arrival) -> Arrival:
        """Track stream-order metadata for one accepted arrival."""
        if self._last_time is not None and arrival.time < self._last_time:
            self.out_of_order += 1
        else:
            self._last_time = arrival.time
        return arrival

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    async def _dispatch_loop(self) -> None:
        """The single consumer: queue order is the stream's total order.

        Error replies for rejected lines travel through the same queue
        ("error" items), so a connection's reply order always equals its
        send order — clients may pair replies to sends by position.  A
        matcher that rejects an accepted arrival (e.g. an out-of-horizon
        timestamp hitting ``Timeline.slot_of``) yields an error reply
        and a ``malformed`` bump; one poisoned event must never kill the
        dispatcher and hang every connection.
        """
        queue = self._queue
        shards = self.shards
        while True:
            item = await queue.get()
            if item is _DRAIN:
                break
            tag, payload, shard_id, writer = item
            if tag == "event":
                try:
                    decision = shards[shard_id].push(payload)
                except Exception as exc:  # noqa: BLE001 — serve loop survives
                    self.malformed += 1
                    reply = {"error": f"arrival rejected by shard: {exc}"}
                else:
                    self.processed += 1
                    reply = {
                        "kind": payload.kind,
                        "id": payload.entity.id,
                        "shard": shard_id,
                        "decision": decision.action,
                        "partner": decision.partner_id,
                    }
            else:
                reply = payload
            if writer is not None and not writer.is_closing():
                writer.write(json.dumps(reply).encode() + b"\n")
                if writer.transport.get_write_buffer_size() > _ACK_BUFFER_LIMIT:
                    # The client stopped reading its acks.  The single
                    # dispatcher serves every connection, so it never
                    # waits on one: the backlogged client is dropped on
                    # the spot and dispatch continues.
                    writer.close()
        for shard in shards:
            shard.finish()
        self._state = _CLOSED
        self._final_snapshot = self._snapshot_live()
        self._drained.set()

    # -- socket ingest ------------------------------------------------- #

    async def _handle_ingest(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        self._conn_writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line or line.startswith(b"#"):
                    continue
                await self._ingest_line(line, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Event-loop shutdown while parked in readline(): finish the
            # handler cleanly so teardown doesn't log the cancellation.
            pass
        finally:
            self.connections -= 1
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _ingest_line(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Parse one line; enqueue an event or reply.

        Replies to data lines (decision acks *and* error lines) travel
        through the dispatcher queue while serving, and wait for the
        drain to complete afterwards — either way a connection's replies
        come back in exactly its send order.  Control records
        (``config`` / ``snapshot`` / ``drain``) are answered out of
        band: clients pairing replies to sends by position must not
        interleave them with unacknowledged data lines (the drain
        record, sent last, is safe — its reply is sequenced after the
        flushed queue).
        """

        def reply_now(payload: dict) -> None:
            writer.write(json.dumps(payload).encode() + b"\n")

        async def reply_in_order(payload: dict) -> None:
            if self._state != _SERVING:
                # The dispatcher is draining or gone; items enqueued now
                # would sit behind the _DRAIN sentinel forever.
                await self._reply_after_drain(writer, payload)
                return
            if self._queue.full():
                self.backpressure_waits += 1
            await self._queue.put(("error", payload, None, writer))

        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            self.malformed += 1
            await reply_in_order({"error": f"invalid JSON: {exc}"})
            return
        if not isinstance(record, dict):
            self.malformed += 1
            await reply_in_order({"error": "expected a JSON object"})
            return
        kind = record.get("kind")
        if kind == "config":
            # Streams dumped by `repro dump` open with a config record;
            # the gateway's discretisation is fixed at startup, so the
            # record is acknowledged and skipped.
            reply_now({"kind": "config", "ok": True})
            await writer.drain()
            return
        if kind == "snapshot":
            reply_now(self.snapshot().as_dict())
            await writer.drain()
            return
        if kind == "drain":
            await self._reply_after_drain(writer, None, trigger=True)
            return
        if self._state != _SERVING:
            self.rejected += 1
            await self._reply_after_drain(
                writer, {"error": "gateway is draining; arrival refused"}
            )
            return
        try:
            arrival = record_to_arrival(record, seq=self._seq)
            shard_id = self.router.shard_of(arrival)
        except (ReproError, ValueError, TypeError) as exc:
            self.malformed += 1
            await reply_in_order({"error": str(exc)})
            return
        self._next_seq()
        if self._queue.full():
            self.backpressure_waits += 1
        # Counters first — see submit(): a scrape during a blocking put
        # must never observe processed > ingested.
        self._stamp(arrival)
        self.ingested += 1
        await self._queue.put(("event", arrival, shard_id, writer))

    async def _reply_after_drain(
        self,
        writer: asyncio.StreamWriter,
        payload: Optional[dict],
        trigger: bool = False,
    ) -> None:
        """Write a reply sequenced *after* the drained queue's acks.

        Waiting for the drain keeps the per-connection send-order reply
        contract once the dispatcher is gone.  ``trigger=True`` starts
        the drain itself and replies with the final snapshot (the
        ``drain`` control record); the in-flight counter lets
        :meth:`close` hold connection teardown until these writes land.
        """
        self._inflight_replies += 1
        try:
            if trigger:
                snapshot = await self.drain()
            else:
                await self._drained.wait()
                snapshot = self._final_snapshot
            reply = snapshot.as_dict() if payload is None else payload
            writer.write(json.dumps(reply).encode() + b"\n")
            await writer.drain()
        finally:
            self._inflight_replies -= 1

    # -- metrics HTTP -------------------------------------------------- #

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request_line = await asyncio.wait_for(reader.readline(), 5.0)
            except asyncio.TimeoutError:
                return
            parts = request_line.decode("latin-1").split()
            # Consume headers until the blank line ending the request.
            while True:
                header = await asyncio.wait_for(reader.readline(), 5.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            if len(parts) < 2 or parts[0] != "GET":
                self._http_reply(writer, 405, "text/plain", "method not allowed\n")
            else:
                path = parts[1].split("?", 1)[0]
                if path == "/metrics":
                    self._http_reply(
                        writer,
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        render_prometheus(self.snapshot()),
                    )
                elif path == "/snapshot":
                    self._http_reply(
                        writer,
                        200,
                        "application/json",
                        json.dumps(self.snapshot().as_dict()) + "\n",
                    )
                elif path == "/healthz":
                    self._http_reply(writer, 200, "text/plain", self._state + "\n")
                else:
                    self._http_reply(writer, 404, "text/plain", "not found\n")
            await writer.drain()
        except (ConnectionError, asyncio.TimeoutError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _http_reply(
        writer: asyncio.StreamWriter, status: int, content_type: str, body: str
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}.get(
            status, "Error"
        )
        payload = body.encode()
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode() + payload)
