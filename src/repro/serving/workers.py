"""Multi-process shard workers: the gateway's self-healing process pool.

The inline backend runs every shard's matcher on one event loop — one
core.  :class:`WorkerPool` is the multi-core home: each shard's
:class:`~repro.serving.shard.Shard` (and therefore its
:class:`~repro.serving.session.MatchingSession`) lives in a dedicated
**forked worker process**, and the gateway becomes a front router that
fans events out over the deterministic
:class:`~repro.serving.shard.ShardRouter` map.

Topology and wire format::

    gateway (asyncio)                          worker i (blocking)
    ─────────────────                          ──────────────────
    submit(shard, event)                       Shard(i, factory(i))
      │  bounded outbox ──writer task──▶ pipe ──▶ recv loop
      │  pending FIFO  ◀──reader task◀── pipe ◀── push → ACK/NACK
      ▼                       │
    future per event          └── WorkerSupervisor (heartbeat, restart)

* **IPC** — two transports behind one seam (``transport="pipe"|"shm"``):
  length-prefixed pickle frames (:mod:`repro.serving.ipc`) over two
  anonymous pipes per worker, or zero-copy shared-memory SPSC rings of
  fixed-width packed records (:mod:`repro.serving.shmring`) with the
  pipe kept attached as the escape hatch for oversized/variable
  payloads (checkpoints, snapshots, FINISH outcomes, NACK text, tagged
  arrivals) — an in-ring ``ESC`` record hands the consumer to the pipe
  for exactly one frame, so both channels merge into a single total
  order and the recovery machinery works unchanged on either
  transport.  Workers are *forked*, so the per-shard matcher factory
  (closures, prebuilt guides and all) — and the shm segment mapping —
  is inherited; nothing needs to be picklable except events, decisions,
  snapshots, outcomes and checkpointed shard state, which all are.
* **Ordering** — one bounded outbox and one writer task per worker;
  the single writer assigns sequence numbers at write time, so pending
  futures resolve in exactly pipe order and each shard consumes its
  events in the gateway's dispatch order (Definition 4's per-shard
  total order).  Same shard count ⇒ bit-identical pairs, decisions and
  counters versus the inline backend (test- and CI-enforced).
* **Backpressure** — a full outbox parks :meth:`WorkerPool.submit`,
  which parks the gateway dispatcher, which parks socket readers on the
  bounded ingest queue: the stall propagates to the sender end-to-end.
* **Drain** — :meth:`WorkerPool.finish` is the barrier: a ``FINISH``
  frame per worker (sequenced after all of its events), one
  ``DONE(outcome, final snapshot)`` back, worker exits.

Failure & recovery (the self-healing layer)::

    checkpoint + journal          supervision                 degraded
    ───────────────────           ───────────                 ────────
    CHECKPOINT every K events     pipe EOF / torn frame       restart cap
    worker ships its Shard back   corrupt frame / seq desync  exhausted ⇒
    journal of events since       heartbeat timeout (hung)    reject acks or
    the last accepted CHKPT           │                       ring remap
          │                           ▼
          └────────▶ fork replacement from the checkpoint,
                     replay the journal in order, re-dispatch
                     in-flight requests exactly once

* **Checkpoint + journal** — the writer task appends every ``EVENT``
  frame to an in-memory journal and injects a ``CHECKPOINT`` request
  every ``checkpoint_every`` events; the worker answers with its whole
  pickled :class:`~repro.serving.shard.Shard` and the journal truncates
  to the frames the checkpoint cannot cover.  Shard state is therefore
  always reconstructible as a pure function of the shard's event order:
  checkpoint (a prefix of that order) + journal (the rest).  Below the
  first checkpoint the journal simply reaches back to the stream start.
* **Supervision** — :class:`WorkerSupervisor` watches every failure
  signal the IPC layer can emit (EOF, a frame torn mid-write, an
  undecodable frame, an out-of-sequence reply) plus a heartbeat timeout
  for workers that are alive but unresponsive (``SIGSTOP``, deadlock —
  the supervisor ``SIGKILL``\\ s them, which lands even on a stopped
  process).  Recovery forks a replacement from the last checkpoint,
  replays the journal in the original order — deadline handling is
  stream-clock driven, so a late replay expires exactly what the
  crash-free run expires — and re-dispatches in-flight requests
  **exactly once**: a replayed event whose ack already went out replays
  with a suppressed future (state rebuild only), one still awaiting its
  ack keeps its original future.  Deterministic matchers ⇒ a recovered
  shard is bit-identical to a crash-free one (test- and CI-enforced).
* **Degraded mode** — restarts back off exponentially (capped) and stop
  at ``max_restarts``; the shard then flips to ``degraded``: every
  queued and future event fails with a clean error (the gateway turns
  those into error acks — never a hang), and an optional
  ``on_degraded`` callback lets the gateway remap the shard's cells to
  the survivors (``degraded_mode="reroute"``).
* **Fault injection** — :mod:`repro.serving.faults` plans ride into the
  children through fork; replacements inherit only the sticky specs, so
  a single scripted ``kill`` proves bit-identical recovery while a
  sticky one proves the restart cap.

Forking requires a POSIX host (the ``fork`` start method); the gateway
raises a clean error elsewhere.  Workers are daemonic, ignore SIGINT
(the gateway coordinates shutdown) and exit on pipe EOF, so a dying
gateway — even SIGKILLed — never strands a worker fleet.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple, Union

from repro.core.engine import Matcher
from repro.core.outcome import AssignmentOutcome, Decision
from repro.errors import GatewayError
from repro.model.events import StreamEvent
from repro.serving import ipc, shmring
from repro.serving.faults import FaultInjector, FaultPlan, FaultSpec
from repro.serving.session import SessionSnapshot
from repro.serving.shard import Shard
from repro.serving.telemetry import Stamped

__all__ = ["WorkerPool", "WorkerSupervisor", "ShardOutcome", "shard_worker_main"]

# Per-worker outbox bound (messages).  Deep enough to keep a worker fed
# between event-loop ticks, shallow enough that one slow shard stalls
# ingest instead of buffering the whole stream in parent memory.
_DEFAULT_OUTBOX = 512

# Events between checkpoint requests.  The journal holds at most about
# one checkpoint interval plus the in-flight window, so this is also the
# replay bound after a crash.  0 disables checkpoints: the journal then
# reaches back to the stream start (fine for short streams; recovery
# replays everything).
_DEFAULT_CHECKPOINT_EVERY = 512

# Supervision defaults: restart up to 3 times with 50ms → 2s exponential
# backoff; declare a worker hung after 10s without a reply while work is
# outstanding (heartbeat pings keep idle workers observable).
_DEFAULT_MAX_RESTARTS = 3
_DEFAULT_BACKOFF = 0.05
_DEFAULT_BACKOFF_CAP = 2.0
_DEFAULT_HEARTBEAT_INTERVAL = 1.0
_DEFAULT_HEARTBEAT_TIMEOUT = 10.0

# Per-shard health states (surfaced in /snapshot and Prometheus).
HEALTHY = "healthy"
RESTARTING = "restarting"
DEGRADED = "degraded"

# An idle per-shard session snapshot: what a worker that has not
# reported yet (or died before reporting) contributes to aggregates.
_EMPTY_SNAPSHOT = SessionSnapshot(
    arrivals=0, workers=0, tasks=0, matched=0,
    ignored_workers=0, ignored_tasks=0, stream_time=None, wall_seconds=0.0,
)


class _ShardRejection(GatewayError):
    """A worker-side matcher rejected one event.

    ``str()`` is exactly the worker-side exception text, so the
    gateway's error ack (``event rejected by shard: {exc}``) is
    bit-identical to the inline backend's.
    """


@dataclass(frozen=True)
class ShardOutcome:
    """The structured result of a shard that produced no outcome.

    :meth:`WorkerPool.finish` returns one of these — instead of a bare
    ``None`` — for a shard whose worker was lost for good (degraded, or
    recovery disabled), so callers see *why* a shard is missing and how
    hard the supervisor tried.
    """

    shard_id: int
    error: str
    restarts: int = 0
    state: str = DEGRADED

    def summary(self) -> str:
        """One human-readable line."""
        return (
            f"shard {self.shard_id} {self.state} after "
            f"{self.restarts} restart(s): {self.error}"
        )


class _PipeWorkerChannel:
    """The worker child's pipe transport behind the channel seam.

    A thin adapter over :class:`~repro.serving.ipc.BlockingEndpoint`
    presenting the same surface as
    :class:`~repro.serving.shmring.ShmWorkerEndpoint`, so the worker
    loop (and the fault injector's torn/corrupt writes) is
    transport-blind.
    """

    def __init__(self, endpoint: ipc.BlockingEndpoint) -> None:
        self._endpoint = endpoint

    def recv(self):
        return self._endpoint.recv()

    def send(self, tag: str, seq: int, payload) -> None:
        self._endpoint.send((tag, seq, payload))

    def send_corrupt(self, seq: int, _decision) -> None:
        """Fault injection: a framed payload that will never unpickle."""
        self._endpoint.send_raw(ipc.raw_frame(b"\xffnot a pickle\xff"))

    def send_torn(self, seq: int, decision) -> None:
        """Fault injection: half an ack frame (the caller then dies)."""
        frame = ipc.encode_frame((ipc.ACK, seq, decision))
        self._endpoint.send_raw(frame[: max(1, len(frame) // 2)])

    def close(self) -> None:
        self._endpoint.close()


def _send_reply(channel, tag: str, seq: int, payload) -> None:
    """Send one reply; an over-limit frame degrades to a NACK.

    A reply too large to frame (a pathological outcome behind a tiny
    ``MAX_FRAME``) must not kill the worker — the event *was* served,
    only its payload cannot ship, so the requester gets a clean
    rejection instead of a torn pipe.  Transport-agnostic: on shm the
    limit can only trip on the escape-hatch pipe, and the NACK retries
    with the ring slot still unpublished.
    """
    try:
        channel.send(tag, seq, payload)
    except GatewayError as exc:
        channel.send(ipc.NACK, seq, f"reply exceeds the frame limit: {exc}")


def shard_worker_main(
    shard_id: int,
    matcher_factory: Callable[[int], Matcher],
    recv_fd: int,
    send_fd: int,
    close_fds: Tuple[int, ...] = (),
    initial_shard: Optional[Shard] = None,
    fault_specs: Tuple[FaultSpec, ...] = (),
    shm_segment=None,
    ring_slots: int = 0,
) -> None:
    """The worker child's entry point: one shard, one blocking loop.

    Builds ``Shard(shard_id, matcher_factory(shard_id))`` locally (the
    factory was inherited through fork) — or resumes from
    ``initial_shard``, a checkpointed shard the supervisor passed
    through fork when restarting — and serves the request channel FIFO
    until a ``FINISH``/``STOP`` frame or EOF.  Matcher-level rejections
    become ``NACK`` replies — a poisoned event must never kill the
    worker.

    Args:
        close_fds: parent-side pipe fds of *other* workers (plus any
            gateway listener/connection fds at restart time) inherited
            through fork; closed first so a sibling's EOF semantics
            aren't held hostage by this process's fd table.
        initial_shard: checkpointed state to resume from (restart path).
        fault_specs: scripted faults for this incarnation
            (:mod:`repro.serving.faults`).
        shm_segment: the shared-memory ring segment inherited through
            fork (``transport="shm"``), or ``None`` for pure pipes.
        ring_slots: the segment's per-ring slot count.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    try:
        # The gateway coordinates shutdown over the pipes; a terminal
        # Ctrl+C must interrupt the *gateway*, not race it worker by
        # worker.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - exotic hosts
        pass
    endpoint = ipc.BlockingEndpoint(recv_fd, send_fd)
    if shm_segment is not None:
        channel = shmring.ShmWorkerEndpoint(shm_segment, ring_slots, endpoint)
    else:
        channel = _PipeWorkerChannel(endpoint)
    if initial_shard is not None:
        shard = initial_shard
    else:
        shard = Shard(shard_id, matcher_factory(shard_id))
    injector = FaultInjector(tuple(fault_specs)) if fault_specs else None
    try:
        while True:
            try:
                tag, seq, payload = channel.recv()
            except EOFError:
                break
            if tag == ipc.EVENT:
                # A telemetry-sampled event arrives wrapped: unwrap,
                # stamp the worker-side stages, and ship the stamps
                # back on the ACK (see repro.serving.telemetry).
                stamps = None
                if type(payload) is Stamped:
                    stamps = payload.stamps
                    stamps.worker_recv = time.monotonic_ns()
                    payload = payload.value
                spec = injector.next_event_fault() if injector else None
                if spec is not None:
                    if spec.action == "kill":
                        os.kill(os.getpid(), signal.SIGKILL)
                    if spec.action in ("hang", "delay"):
                        # "hang" relies on the supervisor's SIGKILL to
                        # end the sleep; "delay" just resumes normally.
                        time.sleep(spec.seconds)
                    if spec.action == "drop":
                        continue  # frame falls on the floor, no ack
                try:
                    decision = shard.push(payload)
                except Exception as exc:  # noqa: BLE001 — serve loop survives
                    channel.send(ipc.NACK, seq, str(exc))
                    continue
                if spec is not None and spec.action == "corrupt":
                    channel.send_corrupt(seq, decision)
                elif spec is not None and spec.action == "torn":
                    channel.send_torn(seq, decision)
                    os.kill(os.getpid(), signal.SIGKILL)
                elif stamps is None:
                    _send_reply(channel, ipc.ACK, seq, decision)
                else:
                    stamps.match_done = time.monotonic_ns()
                    _send_reply(
                        channel, ipc.ACK, seq, Stamped(decision, stamps)
                    )
            elif tag == ipc.SNAPSHOT:
                _send_reply(channel, ipc.SNAP, seq, shard.snapshot())
            elif tag == ipc.CHECKPOINT:
                try:
                    channel.send(ipc.CHKPT, seq, shard)
                except Exception:  # noqa: BLE001 — unpicklable/oversized
                    # Declining is safe: the parent keeps its journal
                    # intact and replay just reaches further back.
                    channel.send(ipc.CHKPT, seq, None)
            elif tag == ipc.PING:
                channel.send(ipc.PONG, seq, None)
            elif tag == ipc.FINISH:
                outcome = shard.finish()
                _send_reply(channel, ipc.DONE, seq, (outcome, shard.snapshot()))
                break
            elif tag == ipc.STOP:
                break
            else:  # pragma: no cover - protocol corruption
                channel.send(ipc.NACK, seq, f"unknown request tag {tag!r}")
    finally:
        channel.close()


class _PipeParentTransport:
    """The gateway's pipe transport behind the parent channel seam.

    Same ``send_batch`` / ``recv`` surface as
    :class:`~repro.serving.shmring.ShmParentTransport`, so the pool's
    writer/reader loops and the supervisor's replay never branch on
    the transport.
    """

    name = "pipe"

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    async def send_batch(self, messages) -> None:
        """Frame and flush a batch of ``(tag, seq, payload)`` requests."""
        self._writer.write(
            b"".join(ipc.encode_frame(message) for message in messages)
        )
        await self._writer.drain()

    async def recv(self):
        """One reply frame (EOFError / GatewayError exactly as before)."""
        return await ipc.read_frame(self._reader)

    def recv_ready(self):
        """Pipes have no sync fast path — every frame needs an await."""
        return ()

    def depths(self) -> Tuple[int, int]:
        """Pipes have no observable in-flight depth; report empty."""
        return (0, 0)

    def close(self) -> None:
        """Nothing to release: the pool owns the pipe fds directly."""


class _WorkerHandle:
    """Parent-side state of one shard worker (across incarnations)."""

    __slots__ = (
        "shard_id", "process", "reader", "writer", "read_transport",
        "transport", "outbox", "pending", "seq", "alive", "closing",
        "reader_task", "writer_task", "last_snapshot", "outcome", "failure",
        "journal", "checkpoint", "events_since_checkpoint", "state",
        "restarts", "last_activity", "parent_fds", "recovery_task",
    )

    def __init__(self, shard_id: int, outbox_size: int) -> None:
        self.shard_id = shard_id
        self.process = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.read_transport = None
        # The IPC transport seam: _PipeParentTransport or
        # shmring.ShmParentTransport, rebuilt per incarnation.
        self.transport = None
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=outbox_size)
        # (request tag, seq, future) in pipe-write order; replies come
        # back strictly FIFO because the worker is single-threaded, and
        # each must echo its request's seq (the corruption check).
        self.pending: Deque[Tuple[str, int, Optional[asyncio.Future]]] = deque()
        self.seq = 0
        self.alive = True
        self.closing = False
        self.reader_task: Optional[asyncio.Task] = None
        self.writer_task: Optional[asyncio.Task] = None
        self.last_snapshot: SessionSnapshot = _EMPTY_SNAPSHOT
        self.outcome: Optional[AssignmentOutcome] = None
        self.failure: Optional[str] = None
        # Recovery state: (seq, event) journal since the last accepted
        # checkpoint, the checkpointed Shard itself, and bookkeeping for
        # the supervisor.
        self.journal: Deque[Tuple[int, StreamEvent]] = deque()
        self.checkpoint: Optional[Shard] = None
        self.events_since_checkpoint = 0
        self.state = HEALTHY
        self.restarts = 0
        self.last_activity = 0.0
        self.parent_fds: Tuple[int, ...] = ()
        self.recovery_task: Optional[asyncio.Task] = None


class WorkerSupervisor:
    """Crash/hang detection and recovery for one :class:`WorkerPool`.

    The supervisor owns the heartbeat monitor and the per-shard recovery
    tasks; the pool routes every failure signal (pipe EOF, torn frame,
    corrupt frame, sequence desync) through :meth:`on_crash`, which
    decides between **restart** (fork a replacement from the last
    checkpoint, replay the journal, re-dispatch in-flight requests
    exactly once) and **degrade** (fail everything cleanly, notify the
    gateway).  Restarts back off exponentially and are capped.
    """

    def __init__(
        self,
        pool: "WorkerPool",
        max_restarts: int,
        backoff: float,
        backoff_cap: float,
        heartbeat_interval: float,
        heartbeat_timeout: float,
    ) -> None:
        self.pool = pool
        self.max_restarts = max_restarts
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self._monitor_task: Optional[asyncio.Task] = None

    def start(self) -> None:
        """Start the heartbeat monitor (``heartbeat_interval=0`` disables)."""
        if self.heartbeat_interval > 0 and self._monitor_task is None:
            self._monitor_task = asyncio.get_running_loop().create_task(
                self._monitor_loop()
            )

    async def aclose(self) -> None:
        """Cancel the monitor and any in-flight recoveries."""
        tasks: List[asyncio.Task] = []
        if self._monitor_task is not None:
            tasks.append(self._monitor_task)
            self._monitor_task = None
        for handle in self.pool.handles:
            if handle.recovery_task is not None:
                tasks.append(handle.recovery_task)
                handle.recovery_task = None
        for task in tasks:
            if not task.done():
                task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- failure entry points ------------------------------------------ #

    def on_crash(self, handle: _WorkerHandle, failure: str) -> None:
        """One worker is gone (EOF/corruption): restart or degrade.

        Called by the pool with ``handle.alive`` already False and the
        writer task about to be cancelled; pending futures are left
        untouched on the restart path (replay resolves them) and failed
        on the degrade path.
        """
        if (
            not self.pool.closing
            and self.max_restarts > 0
            and handle.restarts < self.max_restarts
        ):
            handle.state = RESTARTING
            handle.recovery_task = asyncio.get_running_loop().create_task(
                self._recover(handle)
            )
        else:
            self.degrade(handle, failure)

    def degrade(self, handle: _WorkerHandle, reason: str) -> None:
        """Give up on one shard: fail everything cleanly, tell the gateway.

        Every queued and in-flight future fails with ``reason`` (the
        gateway turns those into error acks — degraded shards answer,
        they never hang), later submits fail fast, and the pool's
        ``on_degraded`` callback (the gateway's ring-remap hook) fires
        once.
        """
        handle.state = DEGRADED
        handle.alive = False
        handle.failure = reason
        if handle.writer_task is not None and not handle.writer_task.done():
            handle.writer_task.cancel()
        self.pool._fail_inflight(handle, reason)
        on_degraded = self.pool.on_degraded
        if on_degraded is not None:
            try:
                on_degraded(handle.shard_id)
            except Exception:  # noqa: BLE001 — monitoring must not cascade
                pass

    # -- recovery ------------------------------------------------------ #

    async def _recover(self, handle: _WorkerHandle) -> None:
        """Restart loop: reap → backoff → fork from checkpoint → replay.

        A replacement that itself dies before its reader task is wired
        (a sticky fault, a broken host) raises out of the spawn/replay
        step and retries here, so every incarnation — however short —
        counts against the cap.
        """
        pool = self.pool
        loop = asyncio.get_running_loop()
        while True:
            handle.restarts += 1
            pool._restarts += 1
            attempt = handle.restarts
            try:
                await self._reap(handle)
                delay = min(
                    self.backoff * (2 ** (attempt - 1)), self.backoff_cap
                )
                if delay > 0:
                    await asyncio.sleep(delay)
                await pool._spawn(handle)
                await self._replay(handle)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — retry or degrade
                if pool.closing or attempt >= self.max_restarts:
                    self.degrade(
                        handle,
                        f"shard worker {handle.shard_id} could not be "
                        f"revived after {attempt} restart(s): {exc}",
                    )
                    return
                continue
            handle.state = HEALTHY
            handle.alive = True
            handle.failure = None
            handle.reader_task = loop.create_task(pool._reader_loop(handle))
            handle.writer_task = loop.create_task(pool._writer_loop(handle))
            return

    async def _reap(self, handle: _WorkerHandle) -> None:
        """Tear down the dead incarnation: tasks, transports, process."""
        tasks = [
            task
            for task in (handle.reader_task, handle.writer_task)
            if task is not None
        ]
        for task in tasks:
            if not task.done():
                task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        handle.reader_task = None
        handle.writer_task = None
        if handle.writer is not None:
            handle.writer.close()
            handle.writer = None
        if handle.read_transport is not None:
            handle.read_transport.close()
            handle.read_transport = None
        handle.reader = None
        handle.parent_fds = ()
        process = handle.process
        if process is not None:
            # SIGKILL is idempotent and lands even on a stopped process
            # (the hung-worker path arrives here with the worker alive).
            if process.is_alive():
                process.kill()
            for _ in range(500):
                if not process.is_alive():
                    break
                await asyncio.sleep(0.01)
            process.join(timeout=0.2)
            handle.process = None
        if handle.transport is not None:
            # After the child is reaped: closing an shm transport
            # unlinks the incarnation's segment (the replacement gets a
            # fresh one); the pipe transport's close is a no-op.
            handle.transport.close()
            handle.transport = None

    async def _replay(self, handle: _WorkerHandle) -> None:
        """Rebuild the replacement's stream: journal, then in-flight rest.

        The journal replays in its original order with fresh sequence
        numbers.  A journaled event still awaiting its ack keeps its
        original future; one the gateway already acked replays with a
        suppressed (``None``) future — the replacement recomputes the
        identical decision (deterministic matchers over an identical
        prefix) but nobody is listening, so every event is acked
        **exactly once** across incarnations.  In-flight ``SNAPSHOT`` /
        ``FINISH`` requests re-dispatch after the events, preserving
        their barrier semantics; ``CHECKPOINT``/``PING`` requests are
        incarnation-local and simply resolve.
        """
        old_pending = handle.pending
        old_journal = handle.journal
        handle.pending = deque()
        handle.journal = deque()
        handle.seq = 0
        inflight = {seq: future for _tag, seq, future in old_pending}
        messages: List[Tuple[str, int, object]] = []
        for old_seq, event in old_journal:
            future = inflight.pop(old_seq, None)
            seq = handle.seq
            handle.seq = seq + 1
            handle.pending.append((ipc.EVENT, seq, future))
            handle.journal.append((seq, event))
            messages.append((ipc.EVENT, seq, event))
        for tag, old_seq, future in old_pending:
            if old_seq not in inflight:
                continue  # a journaled event, already re-queued above
            if tag in (ipc.CHECKPOINT, ipc.PING):
                _resolve(future, None)
                continue
            if tag == ipc.EVENT:  # pragma: no cover - journal invariant
                # Truncation only drops seqs the worker acked first, so
                # an in-flight event always has a journal entry; losing
                # one must fail loudly, never silently.
                _fail(
                    future,
                    GatewayError(
                        f"shard worker {handle.shard_id} lost event "
                        f"seq {old_seq} from its journal"
                    ),
                )
                continue
            seq = handle.seq
            handle.seq = seq + 1
            handle.pending.append((tag, seq, future))
            messages.append((tag, seq, None))
        handle.events_since_checkpoint = len(handle.journal)
        if messages:
            # Through the transport seam: on shm the replacement's
            # fresh rings start at position 0 exactly as ``handle.seq``
            # restarted at 0, so replay packs into the new segment.
            await handle.transport.send_batch(messages)
        handle.last_activity = asyncio.get_running_loop().time()

    # -- heartbeat ----------------------------------------------------- #

    async def _monitor_loop(self) -> None:
        """Detect hung workers: pinged when idle, killed when silent.

        A worker with outstanding requests and no reply for
        ``heartbeat_timeout`` is hung, not dead (a dead one EOFs its
        pipe immediately): ``SIGSTOP``, a deadlock, a runaway
        computation.  SIGKILL clears all three — it is delivered even
        to a stopped process — and the resulting EOF drives the normal
        recovery path.  Idle workers get a ``PING`` each interval, so a
        hung *idle* worker accumulates the ping as pending and trips the
        same timeout.
        """
        pool = self.pool
        interval = self.heartbeat_interval
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            now = loop.time()
            for handle in pool.handles:
                if not handle.alive or handle.closing or handle.state != HEALTHY:
                    continue
                idle = now - handle.last_activity
                if handle.pending:
                    if idle > self.heartbeat_timeout:
                        process = handle.process
                        if process is not None and process.is_alive():
                            process.kill()
                elif idle > interval:
                    try:
                        handle.outbox.put_nowait((ipc.PING, None, None))
                    except asyncio.QueueFull:  # pragma: no cover - racing
                        pass


class WorkerPool:
    """A self-healing :class:`~repro.serving.shard.ShardBackend` over
    forked processes.

    Args:
        n_shards: worker count — one process per shard.
        matcher_factory: builds shard ``i``'s matcher *inside* worker
            ``i`` (inherited through fork; needs no pickling).
        outbox_size: per-worker outbox bound (the IPC backpressure
            limit).
        max_restarts: crash recoveries per shard before it degrades
            (0 = the pre-recovery behaviour: first crash degrades).
        restart_backoff / restart_backoff_cap: exponential backoff
            between restarts, in seconds.
        heartbeat_interval / heartbeat_timeout: hung-worker detection
            (``heartbeat_interval=0`` disables the monitor).
        checkpoint_every: events between state checkpoints (0 = never
            checkpoint; the journal then spans the whole stream).
        fault_plan: scripted faults for chaos runs
            (:class:`~repro.serving.faults.FaultPlan`).
        on_degraded: called once with the shard id when a shard flips to
            degraded (the gateway's ring-remap hook).
        extra_close_fds: callable returning fds a *restarted* child must
            close (the gateway's live listener/connection sockets — the
            initial fork happens before any socket exists).
        transport: ``"pipe"`` (length-prefixed pickle frames, the
            default) or ``"shm"`` (shared-memory rings of fixed-width
            packed records, with the pipe kept as the oversize escape
            hatch — see :mod:`repro.serving.shmring`).
        ring_slots: per-ring slot count for the shm transport (ignored
            on pipes).

    Raises:
        GatewayError: for bad parameters, or at :meth:`start` on hosts
            without the ``fork`` start method.
    """

    name = "process"

    def __init__(
        self,
        n_shards: int,
        matcher_factory: Callable[[int], Matcher],
        outbox_size: int = _DEFAULT_OUTBOX,
        max_restarts: int = _DEFAULT_MAX_RESTARTS,
        restart_backoff: float = _DEFAULT_BACKOFF,
        restart_backoff_cap: float = _DEFAULT_BACKOFF_CAP,
        heartbeat_interval: float = _DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = _DEFAULT_HEARTBEAT_TIMEOUT,
        checkpoint_every: int = _DEFAULT_CHECKPOINT_EVERY,
        fault_plan: Optional[FaultPlan] = None,
        on_degraded: Optional[Callable[[int], None]] = None,
        extra_close_fds: Optional[Callable[[], List[int]]] = None,
        transport: str = "pipe",
        ring_slots: int = shmring.DEFAULT_RING_SLOTS,
    ) -> None:
        if transport not in ("pipe", "shm"):
            raise GatewayError(
                f"transport must be 'pipe' or 'shm', got {transport!r}"
            )
        if ring_slots < 2:
            raise GatewayError(
                f"ring_slots must be >= 2, got {ring_slots}"
            )
        if n_shards <= 0:
            raise GatewayError(f"n_shards must be positive, got {n_shards}")
        if outbox_size <= 0:
            raise GatewayError(
                f"outbox_size must be positive, got {outbox_size}"
            )
        if max_restarts < 0:
            raise GatewayError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        if checkpoint_every < 0:
            raise GatewayError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self._n_shards = int(n_shards)
        self._factory = matcher_factory
        self._outbox_size = int(outbox_size)
        self._transport = transport
        self._ring_slots = int(ring_slots)
        self._checkpoint_every = int(checkpoint_every)
        self._fault_plan = fault_plan
        self.on_degraded = on_degraded
        self._extra_close_fds = extra_close_fds
        self.handles: List[_WorkerHandle] = []
        self._crashes = 0
        self._restarts = 0
        self._outcomes: Optional[
            List[Optional[Union[AssignmentOutcome, ShardOutcome]]]
        ] = None
        self._context = None
        self.closing = False
        self.supervisor = WorkerSupervisor(
            self,
            max_restarts=int(max_restarts),
            backoff=float(restart_backoff),
            backoff_cap=float(restart_backoff_cap),
            heartbeat_interval=float(heartbeat_interval),
            heartbeat_timeout=float(heartbeat_timeout),
        )

    # -- ShardBackend surface ------------------------------------------ #

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def transport(self) -> str:
        """The active event transport: ``"pipe"`` or ``"shm"``."""
        return self._transport

    def ring_depths(self) -> Optional[List[Tuple[int, int]]]:
        """Per-shard ``(request, reply)`` ring occupancy, shm only.

        ``None`` on the pipe transport (the kernel buffers are opaque).
        Gauge-quality reads: the counters are sampled without
        synchronising against the worker, so momentary skew is fine.
        """
        if self._transport != "shm":
            return None
        depths: List[Tuple[int, int]] = []
        for handle in self.handles:
            if handle.transport is not None and handle.transport.name == "shm":
                depths.append(handle.transport.depths())
            else:
                depths.append((0, 0))
        return depths

    @property
    def crashes(self) -> int:
        """Workers lost mid-run (clean exits after FINISH don't count)."""
        return self._crashes

    @property
    def restarts(self) -> int:
        """Replacement workers forked by the supervisor."""
        return self._restarts

    def health(self) -> List[str]:
        """Per-shard ``healthy`` / ``restarting`` / ``degraded`` states."""
        if not self.handles:
            return [HEALTHY] * self._n_shards
        return [handle.state for handle in self.handles]

    @property
    def outcomes(
        self,
    ) -> Optional[List[Optional[Union[AssignmentOutcome, ShardOutcome]]]]:
        return self._outcomes

    async def start(self) -> None:
        """Fork the worker fleet and wire the async pipe plumbing.

        Must run before the gateway binds any listening socket, so the
        children never inherit (and therefore never pin open) the
        gateway's server or connection fds.
        """
        if self.handles:
            raise GatewayError("worker pool already started")
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise GatewayError(
                "the worker-pool backend needs the 'fork' start method "
                f"(POSIX only): {exc}"
            ) from exc
        loop = asyncio.get_running_loop()
        try:
            for shard_id in range(self._n_shards):
                handle = _WorkerHandle(shard_id, self._outbox_size)
                # Track the handle *before* the fork + async pipe
                # wiring: if anything fails mid-worker, the rollback
                # aclose() below must still see (and reap) the child
                # that already forked.
                self.handles.append(handle)
                await self._spawn(handle)
                handle.reader_task = loop.create_task(self._reader_loop(handle))
                handle.writer_task = loop.create_task(self._writer_loop(handle))
            self.supervisor.start()
        except Exception:
            await self.aclose()
            raise

    async def submit(
        self, shard_id: int, event: StreamEvent
    ) -> "asyncio.Future[Decision]":
        """Queue one event for a shard worker; future resolves on its ack.

        Awaits outbox space (the backpressure path).  A shard mid-restart
        still accepts — its outbox simply buffers until the replacement
        finishes replaying (a full outbox parks the dispatcher, which is
        the designed stall).  A *degraded* shard fails the future
        immediately with the degrade reason, so callers get a clean
        error instead of a hang.
        """
        handle = self.handles[shard_id]
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        if handle.state == DEGRADED or (
            not handle.alive and handle.state != RESTARTING
        ):
            future.set_exception(GatewayError(self._crash_reason(handle)))
            return future
        await handle.outbox.put((ipc.EVENT, event, future))
        if handle.state == DEGRADED and not future.done():
            # The shard degraded while we were parked on a full outbox;
            # sweep the entry the degrade pass couldn't have seen.
            self._fail_inflight(handle, self._crash_reason(handle))
        return future

    def snapshots(self) -> List[SessionSnapshot]:
        """Latest known per-shard snapshots (no round trip; may lag)."""
        return [handle.last_snapshot for handle in self.handles]

    async def refresh_snapshots(
        self, timeout: float = 5.0
    ) -> List[SessionSnapshot]:
        """Round-trip a snapshot request to every live worker.

        A worker deep in a backlog answers after the queued events ahead
        of the request; past ``timeout`` the stale cache is returned and
        the late reply still lands in it when it arrives.  A worker
        whose outbox is *full* (the designed backpressure state) is
        skipped outright — a metrics scrape must never queue behind, or
        add load to, an overloaded shard; its cached row stands.
        Restarting and degraded workers are skipped too (their cached
        rows stand until recovery finishes).
        """
        futures = []
        for handle in self.handles:
            if handle.alive and not handle.closing and handle.state == HEALTHY:
                future = asyncio.get_running_loop().create_future()
                # A crash may fail this future after the timeout window
                # when nobody is awaiting it any more; mark the result
                # retrieved so the loop doesn't log a phantom error.
                future.add_done_callback(_swallow_result)
                try:
                    handle.outbox.put_nowait((ipc.SNAPSHOT, None, future))
                except asyncio.QueueFull:
                    continue
                futures.append(future)
        if futures:
            await asyncio.wait(futures, timeout=timeout)
        return self.snapshots()

    async def finish(
        self,
    ) -> List[Optional[Union[AssignmentOutcome, ShardOutcome]]]:
        """The drain barrier: close every worker's stream, collect outcomes.

        Idempotent.  A shard mid-restart gets its ``FINISH`` after the
        replay (the outbox preserves order across incarnations); a
        shard that stays lost contributes a structured
        :class:`ShardOutcome` carrying the failure — never a hang, and
        never a bare ``None``.
        """
        if self._outcomes is not None:
            return self._outcomes
        waits = []
        for handle in self.handles:
            active = handle.alive or handle.state == RESTARTING
            if active and not handle.closing and handle.state != DEGRADED:
                handle.closing = True
                future = asyncio.get_running_loop().create_future()
                future.add_done_callback(_swallow_result)
                await handle.outbox.put((ipc.FINISH, None, future))
                if handle.state == DEGRADED and not future.done():
                    _fail(future, GatewayError(self._crash_reason(handle)))
                waits.append(future)
        if waits:
            # return_exceptions: a worker degrading mid-finish leaves a
            # ShardOutcome but must not break the other shards' barrier.
            await asyncio.gather(*waits, return_exceptions=True)
        outcomes: List[Optional[Union[AssignmentOutcome, ShardOutcome]]] = []
        for handle in self.handles:
            if handle.outcome is not None:
                outcomes.append(handle.outcome)
            else:
                outcomes.append(
                    ShardOutcome(
                        shard_id=handle.shard_id,
                        error=handle.failure
                        or (
                            f"shard worker {handle.shard_id} produced "
                            "no outcome"
                        ),
                        restarts=handle.restarts,
                        state=handle.state,
                    )
                )
        self._outcomes = outcomes
        return self._outcomes

    async def aclose(self) -> None:
        """Tear the fleet down: stop frames, closed pipes, reaped children.

        Safe to call repeatedly and after crashes; escalates from a
        polite ``STOP`` to ``terminate()`` to ``kill()``.  Recovery is
        disarmed first so a worker exiting on STOP is never mistaken
        for a crash to resurrect.
        """
        self.closing = True
        await self.supervisor.aclose()
        for handle in self.handles:
            if handle.alive and not handle.closing:
                try:
                    handle.outbox.put_nowait((ipc.STOP, None, None))
                except asyncio.QueueFull:
                    pass  # terminate below
        await asyncio.sleep(0)
        for handle in self.handles:
            for task in (handle.writer_task, handle.reader_task):
                if task is not None and not task.done():
                    task.cancel()
            for task in (handle.writer_task, handle.reader_task):
                if task is not None:
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):  # noqa: BLE001
                        pass
            if handle.writer is not None:
                handle.writer.close()
            if handle.read_transport is not None:
                handle.read_transport.close()
            self._fail_inflight(handle, "worker pool closed")
            handle.alive = False
        deadline = asyncio.get_running_loop().time() + 2.0
        for handle in self.handles:
            process = handle.process
            if process is None:
                continue
            while process.is_alive():
                if asyncio.get_running_loop().time() >= deadline:
                    process.terminate()
                    await asyncio.sleep(0.05)
                    if process.is_alive():
                        process.kill()
                    break
                await asyncio.sleep(0.02)
            process.join(timeout=0.2)
        for handle in self.handles:
            if handle.transport is not None:
                # After every child is dead: an shm close unlinks the
                # segment (pipe transports no-op).
                handle.transport.close()
                handle.transport = None
        self.handles = []

    # -- internals ----------------------------------------------------- #

    async def _spawn(self, handle: _WorkerHandle) -> None:
        """Fork one worker incarnation and wire its async pipe plumbing.

        The replacement path resumes from ``handle.checkpoint`` (fork
        inherits the unpickled shard — no serialisation round trip) and
        inherits only the fault plan's sticky specs.
        """
        loop = asyncio.get_running_loop()
        to_child_r, to_child_w = os.pipe()
        to_parent_r, to_parent_w = os.pipe()
        # The child inherits every live worker's parent-side fds plus
        # its own pair's parent ends: close them all or EOF-based
        # shutdown breaks (a sibling holding a dup keeps a pipe "open"
        # after the real owner closes it).  Restarted children also
        # inherit the gateway's listener/connection fds — the provider
        # enumerates those at fork time, best-effort.
        close_fds: List[int] = []
        for other in self.handles:
            if other is not handle:
                close_fds.extend(other.parent_fds)
        close_fds.extend((to_child_w, to_parent_r))
        if self._extra_close_fds is not None:
            try:
                close_fds.extend(self._extra_close_fds())
            except Exception:  # noqa: BLE001 — fd hygiene is best-effort
                pass
        specs: Tuple[FaultSpec, ...] = ()
        if self._fault_plan is not None:
            specs = self._fault_plan.for_shard(
                handle.shard_id, incarnation=handle.restarts
            )
        segment = None
        if self._transport == "shm":
            # One fresh segment per incarnation: the replacement's ring
            # positions restart at 0, matching the supervisor's replay
            # re-sequencing — a half-consumed old ring can't leak state.
            try:
                segment = shmring.create_segment(self._ring_slots)
            except (OSError, ValueError) as exc:
                os.close(to_child_r)
                os.close(to_parent_w)
                os.close(to_child_w)
                os.close(to_parent_r)
                raise GatewayError(
                    "the shm transport is unavailable on this host: "
                    f"{exc}"
                ) from exc
        try:
            process = self._context.Process(
                target=shard_worker_main,
                args=(
                    handle.shard_id,
                    self._factory,
                    to_child_r,
                    to_parent_w,
                    tuple(close_fds),
                    handle.checkpoint,
                    specs,
                    segment,
                    self._ring_slots if segment is not None else 0,
                ),
                daemon=True,
                name=f"ftoa-shard-worker-{handle.shard_id}",
            )
            process.start()
            os.close(to_child_r)
            os.close(to_parent_w)
            handle.process = process
            handle.parent_fds = (to_child_w, to_parent_r)
            reader = asyncio.StreamReader(loop=loop)
            handle.read_transport, _ = await loop.connect_read_pipe(
                lambda: asyncio.StreamReaderProtocol(reader, loop=loop),
                os.fdopen(to_parent_r, "rb", 0),
            )
            handle.reader = reader
            w_transport, w_protocol = await loop.connect_write_pipe(
                lambda: asyncio.streams.FlowControlMixin(loop=loop),
                os.fdopen(to_child_w, "wb", 0),
            )
            handle.writer = asyncio.StreamWriter(
                w_transport, w_protocol, None, loop
            )
        except Exception:
            if segment is not None:
                try:
                    segment.close()
                    segment.unlink()
                except OSError:  # pragma: no cover - cleanup best-effort
                    pass
            raise
        if segment is not None:
            handle.transport = shmring.ShmParentTransport(
                segment, self._ring_slots, reader, handle.writer, process
            )
        else:
            handle.transport = _PipeParentTransport(reader, handle.writer)
        handle.last_activity = loop.time()

    def _crash_reason(self, handle: _WorkerHandle) -> str:
        if handle.failure is not None:
            return handle.failure
        exitcode = handle.process.exitcode if handle.process else None
        suffix = f" (exit code {exitcode})" if exitcode is not None else ""
        return f"shard worker {handle.shard_id} is not running{suffix}"

    async def _writer_loop(self, handle: _WorkerHandle) -> None:
        """Drain the outbox into the pipe, batching frames per tick.

        The writer is the only sequencer: it assigns sequence numbers
        and appends pending futures in the exact order frames hit the
        pipe, so concurrent ``submit``/``refresh_snapshots`` callers can
        never interleave a future out of reply order.  It also owns the
        recovery bookkeeping on the request side: every ``EVENT`` frame
        lands in the journal, and every ``checkpoint_every`` events a
        ``CHECKPOINT`` request rides along so the journal can truncate
        when the worker's state ships back.
        """
        outbox = handle.outbox
        checkpoint_every = self._checkpoint_every
        try:
            while True:
                batch = [await outbox.get()]
                while not outbox.empty():
                    batch.append(outbox.get_nowait())
                messages: List[Tuple[str, int, object]] = []
                for tag, payload, future in batch:
                    seq = handle.seq
                    handle.seq = seq + 1
                    if tag != ipc.STOP:
                        handle.pending.append((tag, seq, future))
                    messages.append((tag, seq, payload))
                    if tag == ipc.EVENT:
                        if type(payload) is Stamped:
                            # Transport-send stamp: the frame is encoded
                            # and written within this same loop tick.
                            payload.stamps.send = time.monotonic_ns()
                        handle.journal.append((seq, payload))
                        handle.events_since_checkpoint += 1
                        if (
                            checkpoint_every
                            and handle.events_since_checkpoint
                            >= checkpoint_every
                        ):
                            handle.events_since_checkpoint = 0
                            cseq = handle.seq
                            handle.seq = cseq + 1
                            handle.pending.append((ipc.CHECKPOINT, cseq, None))
                            messages.append((ipc.CHECKPOINT, cseq, None))
                await handle.transport.send_batch(messages)
        except (ConnectionError, OSError, RuntimeError):
            # Broken pipe: the reader loop's EOF owns crash accounting;
            # this side just stops writing.
            pass
        except GatewayError:
            # A corrupted request ring (shm): the reader may never see
            # an EOF for this, so the writer funnels it into the same
            # disconnect path the reader uses.
            self._on_disconnect(handle)
        except asyncio.CancelledError:
            raise

    async def _reader_loop(self, handle: _WorkerHandle) -> None:
        """Resolve pending futures from the worker's FIFO reply stream.

        Every way the stream can die — EOF, a frame torn mid-write, an
        undecodable payload, an out-of-sequence reply — funnels into
        :meth:`_on_disconnect`, which hands the handle to the
        supervisor with its pending queue intact for replay.
        """
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    message = await handle.transport.recv()
                except (EOFError, GatewayError):
                    self._on_disconnect(handle)
                    return
                handle.last_activity = loop.time()
                if not self._dispatch_reply(handle, message):
                    return
                # Burst drain: pop every reply the worker already
                # published without paying an awaited round trip per
                # message (pipes return () — every frame needs an await).
                try:
                    ready = handle.transport.recv_ready()
                except GatewayError:
                    self._on_disconnect(handle)
                    return
                for message in ready:
                    if not self._dispatch_reply(handle, message):
                        return
        except asyncio.CancelledError:
            raise

    def _dispatch_reply(self, handle: _WorkerHandle, message) -> bool:
        """Pair one reply with its pending future; False = worker dropped."""
        tag, seq, payload = message
        if not handle.pending:  # pragma: no cover - corruption
            self._on_disconnect(handle)
            return False
        expected, expected_seq, future = handle.pending.popleft()
        if seq != expected_seq:
            # A reply out of sequence means the stream is
            # desynchronized: pairing it with any pending future
            # would ack the wrong event.  Put the request back
            # for the supervisor's replay and drop the worker.
            handle.pending.appendleft((expected, expected_seq, future))
            self._on_disconnect(handle)
            return False
        if tag == ipc.ACK:
            _resolve(future, payload)
        elif tag == ipc.NACK:
            _fail(future, _ShardRejection(payload))
        elif tag == ipc.SNAP:
            handle.last_snapshot = payload
            _resolve(future, payload)
        elif tag == ipc.CHKPT:
            if payload is not None:
                # Everything the worker processed before this
                # reply (FIFO ⇒ every seq below the request's)
                # is inside the checkpoint: the journal only
                # needs the frames after it.
                handle.checkpoint = payload
                journal = handle.journal
                while journal and journal[0][0] < expected_seq:
                    journal.popleft()
            _resolve(future, payload)
        elif tag == ipc.PONG:
            _resolve(future, None)
        elif tag == ipc.DONE:
            outcome, snapshot = payload
            handle.outcome = outcome
            handle.last_snapshot = snapshot
            handle.closing = True
            _resolve(future, outcome)
        else:  # pragma: no cover - corruption
            _fail(
                future,
                GatewayError(
                    f"unknown IPC reply tag {tag!r} (expected "
                    f"a reply to {expected!r})"
                ),
            )
        return True

    def _on_disconnect(self, handle: _WorkerHandle) -> None:
        """Pipe EOF/corruption: clean after FINISH/STOP, else supervised.

        The crash path leaves ``handle.pending`` (and the outbox)
        untouched — the supervisor's replay resolves them — and lets
        :class:`WorkerSupervisor` choose restart or degrade.
        """
        if not handle.alive:
            return
        handle.alive = False
        if handle.closing and not handle.pending:
            return  # the worker exited exactly as told
        exitcode = handle.process.exitcode if handle.process else None
        suffix = f" (exit code {exitcode})" if exitcode is not None else ""
        self._crashes += 1
        if handle.writer_task is not None:
            handle.writer_task.cancel()
        self.supervisor.on_crash(
            handle,
            f"shard worker {handle.shard_id} crashed{suffix}; "
            "its events cannot be served",
        )

    def _fail_inflight(self, handle: _WorkerHandle, reason: str) -> None:
        """Fail every queued and in-flight future of one worker."""
        while handle.pending:
            _tag, _seq, future = handle.pending.popleft()
            _fail(future, GatewayError(reason))
        while not handle.outbox.empty():
            try:
                _tag, _payload, future = handle.outbox.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - race-proofing
                break
            if future is not None:
                _fail(future, GatewayError(reason))


def _resolve(future: Optional[asyncio.Future], value) -> None:
    if future is not None and not future.done():
        future.set_result(value)


def _fail(future: Optional[asyncio.Future], exc: Exception) -> None:
    if future is not None and not future.done():
        future.set_exception(exc)


def _swallow_result(future: asyncio.Future) -> None:
    """Mark an abandoned future's outcome retrieved (no loop warnings)."""
    if not future.cancelled():
        future.exception()
