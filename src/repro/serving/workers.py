"""Multi-process shard workers: the gateway's process-pool backend.

The inline backend runs every shard's matcher on one event loop — one
core.  :class:`WorkerPool` is the multi-core home: each shard's
:class:`~repro.serving.shard.Shard` (and therefore its
:class:`~repro.serving.session.MatchingSession`) lives in a dedicated
**forked worker process**, and the gateway becomes a front router that
fans events out over the deterministic
:class:`~repro.serving.shard.ShardRouter` map.

Topology and wire format::

    gateway (asyncio)                          worker i (blocking)
    ─────────────────                          ──────────────────
    submit(shard, event)                       Shard(i, factory(i))
      │  bounded outbox ──writer task──▶ pipe ──▶ recv loop
      │  pending FIFO  ◀──reader task◀── pipe ◀── push → ACK/NACK
      ▼
    future per event (resolved strictly in a worker's send order)

* **IPC** — length-prefixed pickle frames (:mod:`repro.serving.ipc`)
  over two anonymous pipes per worker.  Workers are *forked*, so the
  per-shard matcher factory (closures, prebuilt guides and all) is
  inherited — nothing needs to be picklable except events, decisions,
  snapshots and outcomes, which all are.
* **Ordering** — one bounded outbox and one writer task per worker;
  the single writer assigns sequence numbers at write time, so pending
  futures resolve in exactly pipe order and each shard consumes its
  events in the gateway's dispatch order (Definition 4's per-shard
  total order).  Same shard count ⇒ bit-identical pairs, decisions and
  counters versus the inline backend (test- and CI-enforced).
* **Backpressure** — a full outbox parks :meth:`WorkerPool.submit`,
  which parks the gateway dispatcher, which parks socket readers on the
  bounded ingest queue: the stall propagates to the sender end-to-end.
* **Crashes** — a worker dying closes its pipes; the reader task fails
  every in-flight future with a clean :class:`~repro.errors.GatewayError`
  (the gateway turns those into error acks — no hang), later submissions
  to the dead shard fail fast, and :attr:`WorkerPool.crashes` surfaces
  in ``/metrics``.
* **Drain** — :meth:`WorkerPool.finish` is the barrier: a ``FINISH``
  frame per worker (sequenced after all of its events), one
  ``DONE(outcome, final snapshot)`` back, worker exits.  Crashed workers
  contribute ``None`` outcomes; the drain still completes.

Forking requires a POSIX host (the ``fork`` start method); the gateway
raises a clean error elsewhere.  Workers are daemonic, ignore SIGINT
(the gateway coordinates shutdown) and exit on pipe EOF, so a dying
gateway — even SIGKILLed — never strands a worker fleet.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.core.engine import Matcher
from repro.core.outcome import AssignmentOutcome, Decision
from repro.errors import GatewayError
from repro.model.events import StreamEvent
from repro.serving import ipc
from repro.serving.session import SessionSnapshot
from repro.serving.shard import Shard

__all__ = ["WorkerPool", "shard_worker_main"]

# Per-worker outbox bound (messages).  Deep enough to keep a worker fed
# between event-loop ticks, shallow enough that one slow shard stalls
# ingest instead of buffering the whole stream in parent memory.
_DEFAULT_OUTBOX = 512

# An idle per-shard session snapshot: what a worker that has not
# reported yet (or died before reporting) contributes to aggregates.
_EMPTY_SNAPSHOT = SessionSnapshot(
    arrivals=0, workers=0, tasks=0, matched=0,
    ignored_workers=0, ignored_tasks=0, stream_time=None, wall_seconds=0.0,
)


class _ShardRejection(GatewayError):
    """A worker-side matcher rejected one event.

    ``str()`` is exactly the worker-side exception text, so the
    gateway's error ack (``event rejected by shard: {exc}``) is
    bit-identical to the inline backend's.
    """


def shard_worker_main(
    shard_id: int,
    matcher_factory: Callable[[int], Matcher],
    recv_fd: int,
    send_fd: int,
    close_fds: Tuple[int, ...] = (),
) -> None:
    """The worker child's entry point: one shard, one blocking loop.

    Builds ``Shard(shard_id, matcher_factory(shard_id))`` locally (the
    factory was inherited through fork) and serves the request pipe
    FIFO until a ``FINISH``/``STOP`` frame or EOF.  Matcher-level
    rejections become ``NACK`` replies — a poisoned event must never
    kill the worker.

    Args:
        close_fds: parent-side pipe fds of *other* workers inherited
            through fork; closed first so a sibling's EOF semantics
            aren't held hostage by this process's fd table.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    try:
        # The gateway coordinates shutdown over the pipes; a terminal
        # Ctrl+C must interrupt the *gateway*, not race it worker by
        # worker.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):  # pragma: no cover - exotic hosts
        pass
    endpoint = ipc.BlockingEndpoint(recv_fd, send_fd)
    shard = Shard(shard_id, matcher_factory(shard_id))
    try:
        while True:
            try:
                tag, seq, payload = endpoint.recv()
            except EOFError:
                break
            if tag == ipc.EVENT:
                try:
                    decision = shard.push(payload)
                except Exception as exc:  # noqa: BLE001 — serve loop survives
                    endpoint.send((ipc.NACK, seq, str(exc)))
                else:
                    endpoint.send((ipc.ACK, seq, decision))
            elif tag == ipc.SNAPSHOT:
                endpoint.send((ipc.SNAP, seq, shard.snapshot()))
            elif tag == ipc.FINISH:
                outcome = shard.finish()
                endpoint.send((ipc.DONE, seq, (outcome, shard.snapshot())))
                break
            elif tag == ipc.STOP:
                break
            else:  # pragma: no cover - protocol corruption
                endpoint.send((ipc.NACK, seq, f"unknown request tag {tag!r}"))
    finally:
        endpoint.close()


class _WorkerHandle:
    """Parent-side state of one shard worker."""

    __slots__ = (
        "shard_id", "process", "reader", "writer", "read_transport",
        "outbox", "pending", "seq", "alive", "closing", "reader_task",
        "writer_task", "last_snapshot", "outcome", "failure",
    )

    def __init__(self, shard_id: int, outbox_size: int) -> None:
        self.shard_id = shard_id
        self.process = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.read_transport = None
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=outbox_size)
        # (request tag, seq, future) in pipe-write order; replies come
        # back strictly FIFO because the worker is single-threaded, and
        # each must echo its request's seq (the corruption check).
        self.pending: Deque[Tuple[str, int, Optional[asyncio.Future]]] = deque()
        self.seq = 0
        self.alive = True
        self.closing = False
        self.reader_task: Optional[asyncio.Task] = None
        self.writer_task: Optional[asyncio.Task] = None
        self.last_snapshot: SessionSnapshot = _EMPTY_SNAPSHOT
        self.outcome: Optional[AssignmentOutcome] = None
        self.failure: Optional[str] = None


class WorkerPool:
    """A :class:`~repro.serving.shard.ShardBackend` over forked processes.

    Args:
        n_shards: worker count — one process per shard.
        matcher_factory: builds shard ``i``'s matcher *inside* worker
            ``i`` (inherited through fork; needs no pickling).
        outbox_size: per-worker outbox bound (the IPC backpressure
            limit).

    Raises:
        GatewayError: for bad parameters, or at :meth:`start` on hosts
            without the ``fork`` start method.
    """

    name = "process"

    def __init__(
        self,
        n_shards: int,
        matcher_factory: Callable[[int], Matcher],
        outbox_size: int = _DEFAULT_OUTBOX,
    ) -> None:
        if n_shards <= 0:
            raise GatewayError(f"n_shards must be positive, got {n_shards}")
        if outbox_size <= 0:
            raise GatewayError(
                f"outbox_size must be positive, got {outbox_size}"
            )
        self._n_shards = int(n_shards)
        self._factory = matcher_factory
        self._outbox_size = int(outbox_size)
        self.handles: List[_WorkerHandle] = []
        self._crashes = 0
        self._outcomes: Optional[List[Optional[AssignmentOutcome]]] = None

    # -- ShardBackend surface ------------------------------------------ #

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def crashes(self) -> int:
        """Workers lost mid-run (clean exits after FINISH don't count)."""
        return self._crashes

    @property
    def outcomes(self) -> Optional[List[Optional[AssignmentOutcome]]]:
        return self._outcomes

    async def start(self) -> None:
        """Fork the worker fleet and wire the async pipe plumbing.

        Must run before the gateway binds any listening socket, so the
        children never inherit (and therefore never pin open) the
        gateway's server or connection fds.
        """
        if self.handles:
            raise GatewayError("worker pool already started")
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise GatewayError(
                "the worker-pool backend needs the 'fork' start method "
                f"(POSIX only): {exc}"
            ) from exc
        loop = asyncio.get_running_loop()
        parent_fds: List[int] = []  # parent-side fds of already-forked workers
        try:
            for shard_id in range(self._n_shards):
                handle = _WorkerHandle(shard_id, self._outbox_size)
                to_child_r, to_child_w = os.pipe()
                to_parent_r, to_parent_w = os.pipe()
                process = context.Process(
                    target=shard_worker_main,
                    args=(
                        shard_id,
                        self._factory,
                        to_child_r,
                        to_parent_w,
                        # The child inherits every earlier worker's
                        # parent-side fds plus its own pair's parent
                        # ends: close them all or EOF-based shutdown
                        # breaks (a sibling holding a dup keeps a pipe
                        # "open" after the real owner closes it).
                        tuple(parent_fds) + (to_child_w, to_parent_r),
                    ),
                    daemon=True,
                    name=f"ftoa-shard-worker-{shard_id}",
                )
                process.start()
                os.close(to_child_r)
                os.close(to_parent_w)
                parent_fds.extend((to_child_w, to_parent_r))
                handle.process = process
                # Track the handle *before* the async pipe wiring: if
                # fdopen/connect_*_pipe fails mid-worker, the rollback
                # aclose() below must still see (and reap) the child
                # that already forked.
                self.handles.append(handle)

                reader = asyncio.StreamReader(loop=loop)
                handle.read_transport, _ = await loop.connect_read_pipe(
                    lambda: asyncio.StreamReaderProtocol(reader, loop=loop),
                    os.fdopen(to_parent_r, "rb", 0),
                )
                handle.reader = reader
                w_transport, w_protocol = await loop.connect_write_pipe(
                    lambda: asyncio.streams.FlowControlMixin(loop=loop),
                    os.fdopen(to_child_w, "wb", 0),
                )
                handle.writer = asyncio.StreamWriter(
                    w_transport, w_protocol, None, loop
                )
                handle.reader_task = loop.create_task(self._reader_loop(handle))
                handle.writer_task = loop.create_task(self._writer_loop(handle))
        except Exception:
            await self.aclose()
            raise

    async def submit(
        self, shard_id: int, event: StreamEvent
    ) -> "asyncio.Future[Decision]":
        """Queue one event for a shard worker; future resolves on its ack.

        Awaits outbox space (the backpressure path); a dead worker's
        future fails immediately with the crash reason, so callers get a
        clean error instead of a hang.
        """
        handle = self.handles[shard_id]
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        if not handle.alive:
            future.set_exception(GatewayError(self._crash_reason(handle)))
            return future
        await handle.outbox.put((ipc.EVENT, event, future))
        return future

    def snapshots(self) -> List[SessionSnapshot]:
        """Latest known per-shard snapshots (no round trip; may lag)."""
        return [handle.last_snapshot for handle in self.handles]

    async def refresh_snapshots(
        self, timeout: float = 5.0
    ) -> List[SessionSnapshot]:
        """Round-trip a snapshot request to every live worker.

        A worker deep in a backlog answers after the queued events ahead
        of the request; past ``timeout`` the stale cache is returned and
        the late reply still lands in it when it arrives.  A worker
        whose outbox is *full* (the designed backpressure state) is
        skipped outright — a metrics scrape must never queue behind, or
        add load to, an overloaded shard; its cached row stands.
        """
        futures = []
        for handle in self.handles:
            if handle.alive and not handle.closing:
                future = asyncio.get_running_loop().create_future()
                # A crash may fail this future after the timeout window
                # when nobody is awaiting it any more; mark the result
                # retrieved so the loop doesn't log a phantom error.
                future.add_done_callback(_swallow_result)
                try:
                    handle.outbox.put_nowait((ipc.SNAPSHOT, None, future))
                except asyncio.QueueFull:
                    continue
                futures.append(future)
        if futures:
            await asyncio.wait(futures, timeout=timeout)
        return self.snapshots()

    async def finish(self) -> List[Optional[AssignmentOutcome]]:
        """The drain barrier: close every worker's stream, collect outcomes.

        Idempotent; crashed workers yield ``None`` without blocking the
        barrier.
        """
        if self._outcomes is not None:
            return self._outcomes
        waits = []
        for handle in self.handles:
            if handle.alive and not handle.closing:
                handle.closing = True
                future = asyncio.get_running_loop().create_future()
                future.add_done_callback(_swallow_result)
                await handle.outbox.put((ipc.FINISH, None, future))
                waits.append(future)
        if waits:
            # return_exceptions: a worker crashing mid-finish leaves its
            # outcome None but must not break the other shards' barrier.
            await asyncio.gather(*waits, return_exceptions=True)
        self._outcomes = [handle.outcome for handle in self.handles]
        return self._outcomes

    async def aclose(self) -> None:
        """Tear the fleet down: stop frames, closed pipes, reaped children.

        Safe to call repeatedly and after crashes; escalates from a
        polite ``STOP`` to ``terminate()`` to ``kill()``.
        """
        for handle in self.handles:
            if handle.alive and not handle.closing:
                try:
                    handle.outbox.put_nowait((ipc.STOP, None, None))
                except asyncio.QueueFull:
                    pass  # terminate below
        await asyncio.sleep(0)
        for handle in self.handles:
            for task in (handle.writer_task, handle.reader_task):
                if task is not None and not task.done():
                    task.cancel()
            for task in (handle.writer_task, handle.reader_task):
                if task is not None:
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):  # noqa: BLE001
                        pass
            if handle.writer is not None:
                handle.writer.close()
            if handle.read_transport is not None:
                handle.read_transport.close()
            self._fail_inflight(handle, "worker pool closed")
            handle.alive = False
        deadline = asyncio.get_running_loop().time() + 2.0
        for handle in self.handles:
            process = handle.process
            if process is None:
                continue
            while process.is_alive():
                if asyncio.get_running_loop().time() >= deadline:
                    process.terminate()
                    await asyncio.sleep(0.05)
                    if process.is_alive():
                        process.kill()
                    break
                await asyncio.sleep(0.02)
            process.join(timeout=0.2)
        self.handles = []

    # -- internals ----------------------------------------------------- #

    def _crash_reason(self, handle: _WorkerHandle) -> str:
        if handle.failure is not None:
            return handle.failure
        exitcode = handle.process.exitcode if handle.process else None
        suffix = f" (exit code {exitcode})" if exitcode is not None else ""
        return f"shard worker {handle.shard_id} is not running{suffix}"

    async def _writer_loop(self, handle: _WorkerHandle) -> None:
        """Drain the outbox into the pipe, batching frames per tick.

        The writer is the only sequencer: it assigns sequence numbers
        and appends pending futures in the exact order frames hit the
        pipe, so concurrent ``submit``/``refresh_snapshots`` callers can
        never interleave a future out of reply order.
        """
        outbox = handle.outbox
        writer = handle.writer
        try:
            while True:
                batch = [await outbox.get()]
                while not outbox.empty():
                    batch.append(outbox.get_nowait())
                chunks = []
                for tag, payload, future in batch:
                    seq = handle.seq
                    handle.seq = seq + 1
                    if tag != ipc.STOP:
                        handle.pending.append((tag, seq, future))
                    chunks.append(ipc.encode_frame((tag, seq, payload)))
                writer.write(b"".join(chunks))
                await writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            # Broken pipe: the reader loop's EOF owns crash accounting;
            # this side just stops writing.
            pass
        except asyncio.CancelledError:
            raise

    async def _reader_loop(self, handle: _WorkerHandle) -> None:
        """Resolve pending futures from the worker's FIFO reply stream."""
        reader = handle.reader
        try:
            while True:
                try:
                    message = await ipc.read_frame(reader)
                except (EOFError, GatewayError):
                    self._on_disconnect(handle)
                    return
                tag, seq, payload = message
                if not handle.pending:  # pragma: no cover - corruption
                    self._on_disconnect(handle)
                    return
                expected, expected_seq, future = handle.pending.popleft()
                if seq != expected_seq:
                    # A reply out of sequence means the stream is
                    # desynchronized: pairing it with any pending future
                    # would ack the wrong event, so treat the worker as
                    # lost rather than propagate corruption.
                    _fail(
                        future,
                        GatewayError(
                            f"shard worker {handle.shard_id} echoed seq "
                            f"{seq} for request {expected_seq} ({expected})"
                        ),
                    )
                    self._on_disconnect(handle)
                    return
                if tag == ipc.ACK:
                    _resolve(future, payload)
                elif tag == ipc.NACK:
                    _fail(future, _ShardRejection(payload))
                elif tag == ipc.SNAP:
                    handle.last_snapshot = payload
                    _resolve(future, payload)
                elif tag == ipc.DONE:
                    outcome, snapshot = payload
                    handle.outcome = outcome
                    handle.last_snapshot = snapshot
                    handle.closing = True
                    _resolve(future, outcome)
                else:  # pragma: no cover - corruption
                    _fail(
                        future,
                        GatewayError(
                            f"unknown IPC reply tag {tag!r} (expected "
                            f"a reply to {expected!r})"
                        ),
                    )
        except asyncio.CancelledError:
            raise

    def _on_disconnect(self, handle: _WorkerHandle) -> None:
        """Pipe EOF: clean after FINISH/STOP, a crash otherwise."""
        if not handle.alive:
            return
        handle.alive = False
        if handle.closing and not handle.pending:
            return  # the worker exited exactly as told
        exitcode = handle.process.exitcode if handle.process else None
        suffix = f" (exit code {exitcode})" if exitcode is not None else ""
        handle.failure = (
            f"shard worker {handle.shard_id} crashed{suffix}; "
            "its events cannot be served"
        )
        self._crashes += 1
        self._fail_inflight(handle, handle.failure)
        if handle.writer_task is not None:
            handle.writer_task.cancel()

    def _fail_inflight(self, handle: _WorkerHandle, reason: str) -> None:
        """Fail every queued and in-flight future of one worker."""
        while handle.pending:
            _tag, _seq, future = handle.pending.popleft()
            _fail(future, GatewayError(reason))
        while not handle.outbox.empty():
            try:
                _tag, _payload, future = handle.outbox.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - race-proofing
                break
            if future is not None:
                _fail(future, GatewayError(reason))


def _resolve(future: Optional[asyncio.Future], value) -> None:
    if future is not None and not future.done():
        future.set_result(value)


def _fail(future: Optional[asyncio.Future], exc: Exception) -> None:
    if future is not None and not future.done():
        future.set_exception(exc)


def _swallow_result(future: asyncio.Future) -> None:
    """Mark an abandoned future's outcome retrieved (no loop warnings)."""
    if not future.cancelled():
        future.exception()
