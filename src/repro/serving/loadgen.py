"""Async load generator for the serving gateway.

Replays a JSONL event stream (or a synthetic instance, optionally with
sampled churn — ``repro loadgen --churn``) against a running
:class:`~repro.serving.gateway.Gateway` at a target rate, and reports
the achieved ingest throughput plus end-to-end latency percentiles
(send → decision-ack round trip, which includes queueing, shard routing
and the matcher's decision).

The client speaks the gateway's line protocol: one event JSON object
per line — arrivals and churn records alike — one reply line back per
event (a decision ack or an error line — the gateway routes both
through its FIFO dispatcher and the connection's ack channel, so
replies come back in exactly the send order), plus an optional trailing
``{"kind": "drain"}`` control record answered with the final gateway
snapshot.  The reader therefore matches reply ``k`` to send ``k`` by
position.

When the server runs with telemetry enabled (the default), the client
also snapshots the gateway before and after the stream (in-band
``{"kind": "snapshot"}`` control records at the two quiescent points)
and differences the per-stage latency histograms, so the report can
break the round trip down by pipeline stage — ingest wait, dispatch
queue, transport hop, matcher, ack write — for exactly the events this
run sent (:meth:`LoadgenReport.stage_table`).
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import GatewayError
from repro.model.events import StreamEvent
from repro.serving.replay import event_to_record
from repro.serving.telemetry import STAGES, LatencyHistogram

__all__ = ["LoadgenReport", "run_loadgen", "loadgen"]

# Await the socket drain every this many sends, so the writer coroutine
# yields to the reader without paying a drain() per line.
_FLUSH_EVERY = 64


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class LoadgenReport:
    """What one load-generation run achieved.

    Attributes:
        sent: arrival lines written.
        acked: decision acks received.
        errors: error lines received (malformed/refused arrivals).
        seconds: wall time from first send to last reply.
        arrivals_per_sec: replies (acks plus error lines) per second —
            the rate the gateway actually worked through the stream.
        target_rate: the requested pacing (None = unthrottled).
        latency_ms: ``{"p50", "p90", "p99", "mean", "max"}`` of the
            send → ack round trip, in milliseconds.
        snapshot: the gateway's final snapshot dict when the run ended
            with a drain, else None.
        stage_latency: per-pipeline-stage histogram rollups for the
            events this run sent (the before/after ``/snapshot`` diff),
            or None when the server has telemetry disabled.  Maps stage
            name to :meth:`~repro.serving.telemetry.LatencyHistogram.
            as_dict` output plus a ``"sampled"`` total.
    """

    sent: int
    acked: int
    errors: int
    seconds: float
    arrivals_per_sec: float
    target_rate: Optional[float]
    latency_ms: Dict[str, float] = field(default_factory=dict)
    snapshot: Optional[dict] = None
    stage_latency: Optional[dict] = None

    def as_dict(self) -> dict:
        """A JSON-ready dict."""
        payload = {
            "sent": self.sent,
            "acked": self.acked,
            "errors": self.errors,
            "seconds": round(self.seconds, 4),
            "arrivals_per_sec": round(self.arrivals_per_sec, 1),
            "target_rate": self.target_rate,
            "latency_ms": {k: round(v, 3) for k, v in self.latency_ms.items()},
            "snapshot": self.snapshot,
        }
        if self.stage_latency is not None:
            payload["stage_latency"] = self.stage_latency
        return payload

    def stage_table(self) -> Optional[str]:
        """The per-stage latency breakdown as an aligned text table.

        None when the server reported no stage telemetry for this run.
        """
        stages = self.stage_latency
        if not stages:
            return None
        sampled = stages.get("sampled", 0)
        header = (
            f"{'stage':<10} {'count':>7} {'p50_ms':>9} "
            f"{'p90_ms':>9} {'p99_ms':>9}"
        )
        rows = [f"[stage latency, {sampled} sampled events]", header]
        for stage in STAGES:
            entry = stages.get(stage)
            if not entry:
                continue
            rows.append(
                f"{stage:<10} {entry['count']:>7} {entry['p50_ms']:>9.3f} "
                f"{entry['p90_ms']:>9.3f} {entry['p99_ms']:>9.3f}"
            )
        return "\n".join(rows)

    def summary(self) -> str:
        """One human-readable line."""
        latency = self.latency_ms
        return (
            f"[loadgen: {self.acked}/{self.sent} acked in {self.seconds:.2f}s "
            f"-> {self.arrivals_per_sec:.0f} arrivals/s; latency p50="
            f"{latency.get('p50', 0.0):.2f}ms p99={latency.get('p99', 0.0):.2f}ms "
            f"errors={self.errors}]"
        )


async def _fetch_snapshot(reader, writer) -> Optional[dict]:
    """In-band ``{"kind": "snapshot"}`` round trip.

    Only valid at a quiescent point (no acks in flight), because the
    gateway answers control records immediately, out of ack order.
    """
    writer.write(b'{"kind": "snapshot"}\n')
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise GatewayError("gateway closed the connection on a snapshot probe")
    return json.loads(line)


def _stage_diff(before: Optional[dict], after: Optional[dict]) -> Optional[dict]:
    """Per-stage histograms of just this run: after minus before."""
    after_stages = (after or {}).get("stage_latency")
    if not after_stages:
        return None
    before_stages = (before or {}).get("stage_latency") or {}
    diff: Dict[str, object] = {}
    for stage in STAGES:
        entry = after_stages.get(stage)
        if not isinstance(entry, dict):
            continue
        histogram = LatencyHistogram.from_dict(entry)
        earlier = before_stages.get(stage)
        if isinstance(earlier, dict):
            histogram = histogram.subtract(LatencyHistogram.from_dict(earlier))
        if histogram.count:
            diff[stage] = histogram.as_dict()
    if not diff:
        return None
    diff["sampled"] = int(after_stages.get("sampled", 0)) - int(
        before_stages.get("sampled", 0)
    )
    return diff


async def run_loadgen(
    events: Iterable[StreamEvent],
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    rate: Optional[float] = None,
    drain: bool = False,
    auth_token: Optional[str] = None,
    stage_latency: bool = True,
) -> LoadgenReport:
    """Replay ``events`` against a gateway and measure the round trips.

    Args:
        events: arrivals to send (sent in iteration order).
        host / port: TCP ingest endpoint (mutually exclusive with
            ``unix_path``).
        unix_path: unix-socket ingest endpoint.
        rate: target arrivals per second (None or 0 = as fast as the
            socket accepts).
        drain: send a ``drain`` control record after the stream and wait
            for the final gateway snapshot.
        auth_token: shared secret for a gateway started with
            ``--auth-token``; sent as the handshake line before the
            stream.
        stage_latency: snapshot the gateway before and after the stream
            and report the per-stage latency diff (a no-op table-wise
            when the server has telemetry disabled).

    Raises:
        GatewayError: when no endpoint is given, the server closes the
            connection mid-run, or the auth handshake is refused.
    """
    if (port is None) == (unix_path is None):
        raise GatewayError("pass exactly one of port= or unix_path=")
    if unix_path is not None:
        reader, writer = await asyncio.open_unix_connection(unix_path)
    else:
        reader, writer = await asyncio.open_connection(host, port)

    if auth_token is not None:
        writer.write(
            json.dumps({"kind": "auth", "token": auth_token}).encode() + b"\n"
        )
        await writer.drain()
        line = await reader.readline()
        greeting = json.loads(line) if line else {}
        if not greeting.get("ok"):
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            raise GatewayError(
                "gateway refused the auth handshake: "
                f"{greeting.get('error', 'connection closed')}"
            )

    before_snapshot: Optional[dict] = None
    after_snapshot: Optional[dict] = None
    lines = [json.dumps(event_to_record(event)).encode() + b"\n" for event in events]
    send_times: List[float] = []
    latencies: List[float] = []
    acked = 0
    errors = 0

    async def read_acks() -> None:
        nonlocal acked, errors
        for index in range(len(lines)):
            line = await reader.readline()
            if not line:
                raise GatewayError(
                    f"gateway closed the connection after {index} acks"
                )
            arrived = time.perf_counter()
            ack = json.loads(line)
            if "error" in ack:
                errors += 1
            else:
                acked += 1
            latencies.append(arrived - send_times[index])

    if stage_latency:
        before_snapshot = await _fetch_snapshot(reader, writer)

    started = time.perf_counter()
    reader_task = asyncio.create_task(read_acks())
    snapshot = None
    try:
        interval = 1.0 / rate if rate else 0.0
        for index, line in enumerate(lines):
            if interval:
                target = started + index * interval
                delay = target - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            send_times.append(time.perf_counter())
            writer.write(line)
            if index % _FLUSH_EVERY == _FLUSH_EVERY - 1:
                await writer.drain()
        await writer.drain()
        await reader_task
        elapsed = time.perf_counter() - started
        if stage_latency:
            after_snapshot = await _fetch_snapshot(reader, writer)
        if drain:
            writer.write(b'{"kind": "drain"}\n')
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise GatewayError(
                    "gateway closed the connection before the drain ack"
                )
            snapshot = json.loads(line)
    finally:
        # A failed send loop must not abandon the reader (its pending
        # exception would be logged as never-retrieved) or leak the
        # connection.
        if not reader_task.done():
            reader_task.cancel()
        try:
            await reader_task
        except (asyncio.CancelledError, GatewayError, ConnectionError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    latencies.sort()
    latency_ms = {
        "p50": _percentile(latencies, 0.50) * 1e3,
        "p90": _percentile(latencies, 0.90) * 1e3,
        "p99": _percentile(latencies, 0.99) * 1e3,
        "mean": (sum(latencies) / len(latencies) * 1e3) if latencies else 0.0,
        "max": (latencies[-1] * 1e3) if latencies else 0.0,
    }
    return LoadgenReport(
        sent=len(lines),
        acked=acked,
        errors=errors,
        seconds=elapsed,
        arrivals_per_sec=(acked + errors) / elapsed if elapsed > 0 else 0.0,
        target_rate=rate or None,
        latency_ms=latency_ms,
        snapshot=snapshot,
        stage_latency=_stage_diff(before_snapshot, after_snapshot),
    )


def loadgen(
    events: Iterable[StreamEvent],
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    rate: Optional[float] = None,
    drain: bool = False,
    auth_token: Optional[str] = None,
    stage_latency: bool = True,
) -> LoadgenReport:
    """Synchronous wrapper: ``asyncio.run(run_loadgen(...))``."""
    return asyncio.run(
        run_loadgen(
            events,
            host=host,
            port=port,
            unix_path=unix_path,
            rate=rate,
            drain=drain,
            auth_token=auth_token,
            stage_latency=stage_latency,
        )
    )
