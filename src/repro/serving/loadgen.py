"""Async load generator for the serving gateway.

Replays a JSONL event stream (or a synthetic instance, optionally with
sampled churn — ``repro loadgen --churn``) against a running
:class:`~repro.serving.gateway.Gateway` at a target rate, and reports
the achieved ingest throughput plus end-to-end latency percentiles
(send → decision-ack round trip, which includes queueing, shard routing
and the matcher's decision).

The client speaks the gateway's line protocol: one event JSON object
per line — arrivals and churn records alike — one reply line back per
event (a decision ack or an error line — the gateway routes both
through its FIFO dispatcher and the connection's ack channel, so
replies come back in exactly the send order), plus an optional trailing
``{"kind": "drain"}`` control record answered with the final gateway
snapshot.  The reader therefore matches reply ``k`` to send ``k`` by
position.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import GatewayError
from repro.model.events import StreamEvent
from repro.serving.replay import event_to_record

__all__ = ["LoadgenReport", "run_loadgen", "loadgen"]

# Await the socket drain every this many sends, so the writer coroutine
# yields to the reader without paying a drain() per line.
_FLUSH_EVERY = 64


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class LoadgenReport:
    """What one load-generation run achieved.

    Attributes:
        sent: arrival lines written.
        acked: decision acks received.
        errors: error lines received (malformed/refused arrivals).
        seconds: wall time from first send to last reply.
        arrivals_per_sec: replies (acks plus error lines) per second —
            the rate the gateway actually worked through the stream.
        target_rate: the requested pacing (None = unthrottled).
        latency_ms: ``{"p50", "p90", "p99", "mean", "max"}`` of the
            send → ack round trip, in milliseconds.
        snapshot: the gateway's final snapshot dict when the run ended
            with a drain, else None.
    """

    sent: int
    acked: int
    errors: int
    seconds: float
    arrivals_per_sec: float
    target_rate: Optional[float]
    latency_ms: Dict[str, float] = field(default_factory=dict)
    snapshot: Optional[dict] = None

    def as_dict(self) -> dict:
        """A JSON-ready dict."""
        return {
            "sent": self.sent,
            "acked": self.acked,
            "errors": self.errors,
            "seconds": round(self.seconds, 4),
            "arrivals_per_sec": round(self.arrivals_per_sec, 1),
            "target_rate": self.target_rate,
            "latency_ms": {k: round(v, 3) for k, v in self.latency_ms.items()},
            "snapshot": self.snapshot,
        }

    def summary(self) -> str:
        """One human-readable line."""
        latency = self.latency_ms
        return (
            f"[loadgen: {self.acked}/{self.sent} acked in {self.seconds:.2f}s "
            f"-> {self.arrivals_per_sec:.0f} arrivals/s; latency p50="
            f"{latency.get('p50', 0.0):.2f}ms p99={latency.get('p99', 0.0):.2f}ms "
            f"errors={self.errors}]"
        )


async def run_loadgen(
    events: Iterable[StreamEvent],
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    rate: Optional[float] = None,
    drain: bool = False,
    auth_token: Optional[str] = None,
) -> LoadgenReport:
    """Replay ``events`` against a gateway and measure the round trips.

    Args:
        events: arrivals to send (sent in iteration order).
        host / port: TCP ingest endpoint (mutually exclusive with
            ``unix_path``).
        unix_path: unix-socket ingest endpoint.
        rate: target arrivals per second (None or 0 = as fast as the
            socket accepts).
        drain: send a ``drain`` control record after the stream and wait
            for the final gateway snapshot.
        auth_token: shared secret for a gateway started with
            ``--auth-token``; sent as the handshake line before the
            stream.

    Raises:
        GatewayError: when no endpoint is given, the server closes the
            connection mid-run, or the auth handshake is refused.
    """
    if (port is None) == (unix_path is None):
        raise GatewayError("pass exactly one of port= or unix_path=")
    if unix_path is not None:
        reader, writer = await asyncio.open_unix_connection(unix_path)
    else:
        reader, writer = await asyncio.open_connection(host, port)

    if auth_token is not None:
        writer.write(
            json.dumps({"kind": "auth", "token": auth_token}).encode() + b"\n"
        )
        await writer.drain()
        line = await reader.readline()
        greeting = json.loads(line) if line else {}
        if not greeting.get("ok"):
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            raise GatewayError(
                "gateway refused the auth handshake: "
                f"{greeting.get('error', 'connection closed')}"
            )

    lines = [json.dumps(event_to_record(event)).encode() + b"\n" for event in events]
    send_times: List[float] = []
    latencies: List[float] = []
    acked = 0
    errors = 0

    async def read_acks() -> None:
        nonlocal acked, errors
        for index in range(len(lines)):
            line = await reader.readline()
            if not line:
                raise GatewayError(
                    f"gateway closed the connection after {index} acks"
                )
            arrived = time.perf_counter()
            ack = json.loads(line)
            if "error" in ack:
                errors += 1
            else:
                acked += 1
            latencies.append(arrived - send_times[index])

    started = time.perf_counter()
    reader_task = asyncio.create_task(read_acks())
    snapshot = None
    try:
        interval = 1.0 / rate if rate else 0.0
        for index, line in enumerate(lines):
            if interval:
                target = started + index * interval
                delay = target - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            send_times.append(time.perf_counter())
            writer.write(line)
            if index % _FLUSH_EVERY == _FLUSH_EVERY - 1:
                await writer.drain()
        await writer.drain()
        await reader_task
        elapsed = time.perf_counter() - started
        if drain:
            writer.write(b'{"kind": "drain"}\n')
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise GatewayError(
                    "gateway closed the connection before the drain ack"
                )
            snapshot = json.loads(line)
    finally:
        # A failed send loop must not abandon the reader (its pending
        # exception would be logged as never-retrieved) or leak the
        # connection.
        if not reader_task.done():
            reader_task.cancel()
        try:
            await reader_task
        except (asyncio.CancelledError, GatewayError, ConnectionError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    latencies.sort()
    latency_ms = {
        "p50": _percentile(latencies, 0.50) * 1e3,
        "p90": _percentile(latencies, 0.90) * 1e3,
        "p99": _percentile(latencies, 0.99) * 1e3,
        "mean": (sum(latencies) / len(latencies) * 1e3) if latencies else 0.0,
        "max": (latencies[-1] * 1e3) if latencies else 0.0,
    }
    return LoadgenReport(
        sent=len(lines),
        acked=acked,
        errors=errors,
        seconds=elapsed,
        arrivals_per_sec=(acked + errors) / elapsed if elapsed > 0 else 0.0,
        target_rate=rate or None,
        latency_ms=latency_ms,
        snapshot=snapshot,
    )


def loadgen(
    events: Iterable[StreamEvent],
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    rate: Optional[float] = None,
    drain: bool = False,
    auth_token: Optional[str] = None,
) -> LoadgenReport:
    """Synchronous wrapper: ``asyncio.run(run_loadgen(...))``."""
    return asyncio.run(
        run_loadgen(
            events,
            host=host,
            port=port,
            unix_path=unix_path,
            rate=rate,
            drain=drain,
            auth_token=auth_token,
        )
    )
