"""JSONL event streams: dump, load, and self-guided replay.

One platform event per line.  Arrivals carry the full entity::

    {"kind": "worker", "id": 0, "x": 3.2, "y": 1.5, "start": 0.0, "duration": 240.0}
    {"kind": "task",   "id": 0, "x": 7.0, "y": 2.5, "start": 5.0, "duration": 120.0}

Churn events reference a previously-arrived object by (side, id)::

    {"kind": "departure", "side": "worker", "id": 0, "time": 90.0}
    {"kind": "move", "side": "task", "id": 0, "time": 42.0, "x": 9.0, "y": 1.0}

Lines must be time-ordered (FTOA's totally-ordered stream); blank lines
and ``#`` comments are skipped.  An optional leading ``config`` record
(the schema :func:`stream_config` emits)::

    {"kind": "config", "bounds": [0.0, 0.0, 50.0, 50.0], "nx": 50, "ny": 50,
     "n_slots": 48, "slot_minutes": 30.0, "t0": 0.0, "velocity": 0.1667}

carries the discretisation the stream was generated under, so ``repro
replay`` can rebuild the matching grid/timeline/travel model without the
caller re-typing them.  ``repro dump`` writes it automatically.

For the guide-driven algorithms (POLAR / POLAR-OP) a replay builds a
*self-guide*: the empirical (slot, area) counts of the replayed stream
itself fed to Algorithm 1 — the perfect-prediction oracle, the upper
bound a real forecast approaches.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.guide import OfflineGuide, build_guide
from repro.errors import SimulationError
from repro.model.entities import Task, Worker
from repro.model.events import (
    DEPARTURE,
    MOVE,
    TASK,
    WORKER,
    Arrival,
    Departure,
    Move,
    StreamEvent,
)
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel

__all__ = [
    "event_to_record",
    "record_to_event",
    "arrival_to_record",
    "record_to_arrival",
    "dump_stream",
    "load_stream",
    "stream_config",
    "stream_counts",
    "build_self_guide",
]

_REQUIRED_FIELDS = ("id", "x", "y", "start", "duration")
_CHURN_REQUIRED = {DEPARTURE: ("side", "id", "time"), MOVE: ("side", "id", "time", "x", "y")}


def event_to_record(event: StreamEvent) -> dict:
    """One stream event as a JSON-serialisable record."""
    kind = event.event_kind
    if kind is DEPARTURE:
        return {
            "kind": DEPARTURE,
            "side": event.kind,
            "id": event.object_id,
            "time": event.time,
        }
    if kind is MOVE:
        return {
            "kind": MOVE,
            "side": event.kind,
            "id": event.object_id,
            "time": event.time,
            "x": event.location.x,
            "y": event.location.y,
        }
    entity = event.entity
    return {
        "kind": event.kind,
        "id": entity.id,
        "x": entity.location.x,
        "y": entity.location.y,
        "start": entity.start,
        "duration": entity.duration,
    }


# Historical name, kept for callers that only ship arrivals.
arrival_to_record = event_to_record


def _record_to_churn(record: dict, seq: int) -> StreamEvent:
    kind = record["kind"]
    missing = [field for field in _CHURN_REQUIRED[kind] if field not in record]
    if missing:
        raise SimulationError(
            f"stream record missing fields {missing} (record: {record!r})"
        )
    side = record["side"]
    if side not in (WORKER, TASK):
        raise SimulationError(f"unknown churn side {side!r} in stream record")
    if kind == DEPARTURE:
        return Departure(
            time=float(record["time"]),
            seq=seq,
            kind=side,
            object_id=int(record["id"]),
        )
    return Move(
        time=float(record["time"]),
        seq=seq,
        kind=side,
        object_id=int(record["id"]),
        location=Point(float(record["x"]), float(record["y"])),
    )


def record_to_event(record: dict, seq: int) -> StreamEvent:
    """Rebuild one stream event from its JSONL record.

    Raises:
        SimulationError: for unknown kinds or missing fields.
    """
    kind = record.get("kind")
    if kind in (DEPARTURE, MOVE):
        return _record_to_churn(record, seq)
    if kind not in (WORKER, TASK):
        raise SimulationError(f"unknown arrival kind {kind!r} in stream record")
    missing = [field for field in _REQUIRED_FIELDS if field not in record]
    if missing:
        raise SimulationError(
            f"stream record missing fields {missing} (record: {record!r})"
        )
    cls = Worker if kind == WORKER else Task
    entity = cls(
        id=int(record["id"]),
        location=Point(float(record["x"]), float(record["y"])),
        start=float(record["start"]),
        duration=float(record["duration"]),
    )
    return Arrival(time=entity.start, seq=seq, kind=kind, entity=entity)


# Historical name, kept for arrival-only callers.
record_to_arrival = record_to_event


def stream_config(
    grid: Grid, timeline: Timeline, travel: TravelModel
) -> dict:
    """The config record describing a stream's discretisation."""
    return {
        "kind": "config",
        "bounds": [
            grid.bounds.x_min,
            grid.bounds.y_min,
            grid.bounds.x_max,
            grid.bounds.y_max,
        ],
        "nx": grid.nx,
        "ny": grid.ny,
        "n_slots": timeline.n_slots,
        "slot_minutes": timeline.slot_minutes,
        "t0": timeline.t0,
        "velocity": travel.velocity,
    }


def dump_stream(
    events: Iterable[StreamEvent],
    fp: IO[str],
    config: Optional[dict] = None,
) -> int:
    """Write a stream (optionally preceded by a config record) as JSONL.

    Returns the number of event lines written (arrivals and churn).
    """
    if config is not None:
        fp.write(json.dumps(config) + "\n")
    count = 0
    for event in events:
        fp.write(json.dumps(event_to_record(event)) + "\n")
        count += 1
    return count


def load_stream(fp: IO[str]) -> Tuple[Optional[dict], List[StreamEvent]]:
    """Read a JSONL stream: ``(config record or None, events)``.

    Event order is validated (times must be non-decreasing — a
    totally-ordered stream is the online model's contract); sequence
    numbers are assigned in file order.  Churn records (``departure`` /
    ``move``) load into their event classes alongside arrivals.

    Raises:
        SimulationError: for malformed JSON, unknown kinds, missing
            fields, out-of-order events, or a config record after the
            first data line.
    """
    config: Optional[dict] = None
    events: List[StreamEvent] = []
    last_time: Optional[float] = None
    for lineno, line in enumerate(fp, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SimulationError(f"line {lineno}: invalid JSON ({exc})") from None
        if not isinstance(record, dict):
            raise SimulationError(f"line {lineno}: expected an object")
        if record.get("kind") == "config":
            if events:
                raise SimulationError(
                    f"line {lineno}: config record must precede all arrivals"
                )
            config = record
            continue
        event = record_to_event(record, seq=len(events))
        if last_time is not None and event.time < last_time:
            raise SimulationError(
                f"line {lineno}: event at t={event.time} after t={last_time} "
                "(streams must be time-ordered)"
            )
        last_time = event.time
        events.append(event)
    return config, events


def stream_counts(
    events: Iterable[StreamEvent],
    grid: Grid,
    timeline: Timeline,
) -> Tuple[np.ndarray, np.ndarray, float, float]:
    """A stream's empirical per-(slot, area) counts and mean durations.

    Returns ``(worker_counts, task_counts, worker_duration,
    task_duration)`` — the raw material of the self-guide, exposed so
    callers can reshape it first (e.g. split the tensors by shard
    ownership for per-shard guides).  Churn events carry no demand
    signal and are skipped.

    Raises:
        SimulationError: for an empty stream (no counts to build from).
    """
    worker_counts = np.zeros((timeline.n_slots, grid.n_areas), dtype=np.int64)
    task_counts = np.zeros_like(worker_counts)
    worker_durations: List[float] = []
    task_durations: List[float] = []
    for arrival in events:
        if not isinstance(arrival, Arrival):
            continue
        entity = arrival.entity
        slot = timeline.slot_of(entity.start)
        area = grid.area_of(entity.location)
        if arrival.is_worker:
            worker_counts[slot, area] += 1
            worker_durations.append(entity.duration)
        else:
            task_counts[slot, area] += 1
            task_durations.append(entity.duration)
    if not worker_durations and not task_durations:
        raise SimulationError("cannot build a guide from an empty stream")
    worker_duration = (
        sum(worker_durations) / len(worker_durations) if worker_durations else 0.0
    )
    task_duration = (
        sum(task_durations) / len(task_durations) if task_durations else 0.0
    )
    return worker_counts, task_counts, worker_duration, task_duration


def build_self_guide(
    events: Iterable[StreamEvent],
    grid: Grid,
    timeline: Timeline,
    travel: TravelModel,
) -> OfflineGuide:
    """Algorithm 1 fed with the stream's own empirical counts.

    This is the perfect-prediction oracle for a replayed stream: the
    (slot, area) tensors are the exact arrival counts, and the guide's
    representative durations are the per-side means.  Churn events are
    skipped — the guide predicts *arrivals*, and Algorithm 1 has no
    departure channel.  Real deployments substitute a forecast; the
    self-guide is the upper bound it chases.

    Raises:
        SimulationError: for an empty stream (no counts to build from).
    """
    worker_counts, task_counts, worker_duration, task_duration = stream_counts(
        events, grid, timeline
    )
    return build_guide(
        worker_counts,
        task_counts,
        grid,
        timeline,
        travel,
        worker_duration,
        task_duration,
    )
