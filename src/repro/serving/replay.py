"""JSONL arrival streams: dump, load, and self-guided replay.

One platform arrival per line::

    {"kind": "worker", "id": 0, "x": 3.2, "y": 1.5, "start": 0.0, "duration": 240.0}
    {"kind": "task",   "id": 0, "x": 7.0, "y": 2.5, "start": 5.0, "duration": 120.0}

Lines must be time-ordered (FTOA's totally-ordered stream); blank lines
and ``#`` comments are skipped.  An optional leading ``config`` record
(the schema :func:`stream_config` emits)::

    {"kind": "config", "bounds": [0.0, 0.0, 50.0, 50.0], "nx": 50, "ny": 50,
     "n_slots": 48, "slot_minutes": 30.0, "t0": 0.0, "velocity": 0.1667}

carries the discretisation the stream was generated under, so ``repro
replay`` can rebuild the matching grid/timeline/travel model without the
caller re-typing them.  ``repro dump`` writes it automatically.

For the guide-driven algorithms (POLAR / POLAR-OP) a replay builds a
*self-guide*: the empirical (slot, area) counts of the replayed stream
itself fed to Algorithm 1 — the perfect-prediction oracle, the upper
bound a real forecast approaches.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.guide import OfflineGuide, build_guide
from repro.errors import SimulationError
from repro.model.entities import Task, Worker
from repro.model.events import TASK, WORKER, Arrival
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel

__all__ = [
    "arrival_to_record",
    "record_to_arrival",
    "dump_stream",
    "load_stream",
    "stream_config",
    "build_self_guide",
]

_REQUIRED_FIELDS = ("id", "x", "y", "start", "duration")


def arrival_to_record(arrival: Arrival) -> dict:
    """One arrival as a JSON-serialisable record."""
    entity = arrival.entity
    return {
        "kind": arrival.kind,
        "id": entity.id,
        "x": entity.location.x,
        "y": entity.location.y,
        "start": entity.start,
        "duration": entity.duration,
    }


def record_to_arrival(record: dict, seq: int) -> Arrival:
    """Rebuild one arrival from its JSONL record.

    Raises:
        SimulationError: for unknown kinds or missing fields.
    """
    kind = record.get("kind")
    if kind not in (WORKER, TASK):
        raise SimulationError(f"unknown arrival kind {kind!r} in stream record")
    missing = [field for field in _REQUIRED_FIELDS if field not in record]
    if missing:
        raise SimulationError(
            f"stream record missing fields {missing} (record: {record!r})"
        )
    cls = Worker if kind == WORKER else Task
    entity = cls(
        id=int(record["id"]),
        location=Point(float(record["x"]), float(record["y"])),
        start=float(record["start"]),
        duration=float(record["duration"]),
    )
    return Arrival(time=entity.start, seq=seq, kind=kind, entity=entity)


def stream_config(
    grid: Grid, timeline: Timeline, travel: TravelModel
) -> dict:
    """The config record describing a stream's discretisation."""
    return {
        "kind": "config",
        "bounds": [
            grid.bounds.x_min,
            grid.bounds.y_min,
            grid.bounds.x_max,
            grid.bounds.y_max,
        ],
        "nx": grid.nx,
        "ny": grid.ny,
        "n_slots": timeline.n_slots,
        "slot_minutes": timeline.slot_minutes,
        "t0": timeline.t0,
        "velocity": travel.velocity,
    }


def dump_stream(
    events: Iterable[Arrival],
    fp: IO[str],
    config: Optional[dict] = None,
) -> int:
    """Write a stream (optionally preceded by a config record) as JSONL.

    Returns the number of arrival lines written.
    """
    if config is not None:
        fp.write(json.dumps(config) + "\n")
    count = 0
    for arrival in events:
        fp.write(json.dumps(arrival_to_record(arrival)) + "\n")
        count += 1
    return count


def load_stream(fp: IO[str]) -> Tuple[Optional[dict], List[Arrival]]:
    """Read a JSONL stream: ``(config record or None, arrivals)``.

    Arrival order is validated (times must be non-decreasing — a
    totally-ordered stream is the online model's contract); sequence
    numbers are assigned in file order.

    Raises:
        SimulationError: for malformed JSON, unknown kinds, missing
            fields, out-of-order arrivals, or a config record after the
            first data line.
    """
    config: Optional[dict] = None
    events: List[Arrival] = []
    last_time: Optional[float] = None
    for lineno, line in enumerate(fp, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SimulationError(f"line {lineno}: invalid JSON ({exc})") from None
        if not isinstance(record, dict):
            raise SimulationError(f"line {lineno}: expected an object")
        if record.get("kind") == "config":
            if events:
                raise SimulationError(
                    f"line {lineno}: config record must precede all arrivals"
                )
            config = record
            continue
        arrival = record_to_arrival(record, seq=len(events))
        if last_time is not None and arrival.time < last_time:
            raise SimulationError(
                f"line {lineno}: arrival at t={arrival.time} after t={last_time} "
                "(streams must be time-ordered)"
            )
        last_time = arrival.time
        events.append(arrival)
    return config, events


def build_self_guide(
    events: Iterable[Arrival],
    grid: Grid,
    timeline: Timeline,
    travel: TravelModel,
) -> OfflineGuide:
    """Algorithm 1 fed with the stream's own empirical counts.

    This is the perfect-prediction oracle for a replayed stream: the
    (slot, area) tensors are the exact arrival counts, and the guide's
    representative durations are the per-side means.  Real deployments
    substitute a forecast; the self-guide is the upper bound it chases.

    Raises:
        SimulationError: for an empty stream (no counts to build from).
    """
    worker_counts = np.zeros((timeline.n_slots, grid.n_areas), dtype=np.int64)
    task_counts = np.zeros_like(worker_counts)
    worker_durations: List[float] = []
    task_durations: List[float] = []
    for arrival in events:
        entity = arrival.entity
        slot = timeline.slot_of(entity.start)
        area = grid.area_of(entity.location)
        if arrival.is_worker:
            worker_counts[slot, area] += 1
            worker_durations.append(entity.duration)
        else:
            task_counts[slot, area] += 1
            task_durations.append(entity.duration)
    if not worker_durations and not task_durations:
        raise SimulationError("cannot build a guide from an empty stream")
    worker_duration = (
        sum(worker_durations) / len(worker_durations) if worker_durations else 0.0
    )
    task_duration = (
        sum(task_durations) / len(task_durations) if task_durations else 0.0
    )
    return build_guide(
        worker_counts,
        task_counts,
        grid,
        timeline,
        travel,
        worker_duration,
        task_duration,
    )
