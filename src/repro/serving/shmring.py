"""Zero-copy worker transport: shared-memory SPSC rings of fixed records.

The pipe transport (:mod:`repro.serving.ipc`) pays a pickle + syscall
tax on every event hop; ``BENCH_engine.json``'s ``worker_pool`` probe
measured that tax at roughly half the single-process throughput.  This
module is the zero-copy replacement: each worker gets one
:mod:`multiprocessing.shared_memory` segment holding two lock-light
**SPSC rings** (requests gateway → worker, replies worker → gateway) of
fixed-width packed records, so the steady-state event hop is a
``struct.pack_into`` into a shared page instead of a pickle, a write
syscall, a read syscall and an unpickle.

Segment layout (one per worker incarnation)::

    ┌──────────────── header (32 B) ────────────────┐
    │ req produced u64 │ req consumed u64           │   depth gauges
    │ rep produced u64 │ rep consumed u64           │   (single-writer)
    ├──────────── request ring (capacity slots) ────┤
    │ slot 0 │ slot 1 │ … │ slot capacity-1         │   gateway → worker
    ├──────────── reply ring (capacity slots) ──────┤
    │ slot 0 │ slot 1 │ … │ slot capacity-1         │   worker → gateway
    └───────────────────────────────────────────────┘

    slot (88 B) = seq word u64 │ record (80 B)
    record      = kind u8 │ side u8 │ pad │ ipc-seq u64 │
                  a i64 │ b i64 │ t f64 │ x f64 │ y f64 │ s f64 │ u f64

**Slot protocol** (Vyukov-style SPSC, one 8-byte sequence word per
slot; ``pos`` is the endpoint's monotonic position, ``cap`` the ring
capacity, slot index ``pos % cap``):

* producer at ``pos``: waits for ``seq == pos`` (free), writes the
  record, publishes ``seq = pos + 1``;
* consumer at ``pos``: waits for ``seq == pos + 1`` (ready), reads the
  record, frees with ``seq = pos + cap``.

Any *other* value of the sequence word is proof of corruption — a torn
write, a scribble, a desynchronized peer — and raises
:class:`~repro.errors.GatewayError`, which funnels into the same
recovery path as a corrupt pipe frame.  The payload write
happens-before the sequence-word publish in program order, which the
x86-TSO store order (and CPython's per-op memcpy granularity) carries
across the shared mapping; a producer that dies mid-record never
publishes, so the consumer sees "not ready", not garbage.

**Record codec** — the flat :data:`~repro.model.events.StreamEvent`
union packs into one slot: arrivals (worker/task entity: id, location,
start, duration), departures and moves (side, object id, location),
plus every ``None``-payload control request (SNAPSHOT / FINISH /
CHECKPOINT / PING / STOP).  Replies pack ``ACK`` decisions (action
code, partner id, target area) and ``PONG``.  ``pack_request`` /
``pack_reply`` return ``False`` for anything that does not fit the
fixed shape — an arrival carrying ``tags`` metadata, an id outside
i64, an unknown decision action — and the transport then takes the
**escape hatch**: the full message is written to the existing pickle
pipe *first*, and an ``ESC`` record is published in the ring *after*.
The consumer, seeing ``ESC``, reads exactly one pipe frame — so the
two channels merge into a single total order and PR 6's recovery
machinery (``CHKPT`` shard state, ``SNAP``/``DONE``/``NACK`` replies)
rides the pipe unchanged.

The escape hatch doubles as the **telemetry side channel**: a sampled
event travels as a :class:`~repro.serving.telemetry.Stamped` carrier,
which by design fails both packers (no ``event_kind``, not a bare
``Decision``) and escapes — request and ACK alike — onto the pipe with
an in-ring ``ESC`` record preserving total order.  The 88-byte slot
layout, the packed fast path for unsampled traffic and the
bit-identical parity story are untouched; the cost is that the
measured ``transport`` stage for shm-sampled events is the escape
path's pipe latency, not the ring's (documented in
``docs/OBSERVABILITY.md``).

**Wakeup** is adaptive spin-then-sleep on both sides: a short spin for
the loaded case (the ring is hot, no syscall at all), then an
exponentially backed-off sleep bounded at ~1 ms for the idle case.
The blocking worker side folds parent-death detection into the sleep
phase (``getppid`` flips when the gateway dies — the pipe cannot be
peeked safely while escaped frames may be in flight); the asyncio
parent side polls ``process.is_alive()`` and drains any replies
published before the death before surfacing :class:`EOFError`.

Crash semantics mirror the pipe transport's: a dead worker is
``EOFError`` (after the ring drains), a scribbled sequence word or a
poisoned record is :class:`~repro.errors.GatewayError`, and both drive
:class:`~repro.serving.workers.WorkerSupervisor` recovery.  Each
incarnation gets a **fresh segment** (positions restart at 0 exactly
like the pipe transport's sequence numbers), and the parent owns the
segment lifecycle: create + init before fork, close + unlink at reap.
"""

from __future__ import annotations

import asyncio
import os
import struct
import time
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

from repro.core import outcome
from repro.core.outcome import Decision
from repro.errors import GatewayError
from repro.model.entities import Task, Worker
from repro.model.events import (
    ARRIVAL,
    DEPARTURE,
    MOVE,
    TASK,
    WORKER,
    Arrival,
    Departure,
    Move,
)
from repro.serving import ipc
from repro.spatial.geometry import Point

__all__ = [
    "ESC",
    "SLOT_SIZE",
    "HEADER_SIZE",
    "DEFAULT_RING_SLOTS",
    "segment_size",
    "create_segment",
    "request_ring",
    "reply_ring",
    "shm_available",
    "pack_request",
    "unpack_request",
    "pack_reply",
    "unpack_reply",
    "pack_escape",
    "pack_poison",
    "ShmRing",
    "ShmWorkerEndpoint",
    "ShmParentTransport",
]

# The in-band tag a consumer sees for an escaped message: "the real
# message is the next frame on the pickle pipe".
ESC = "esc"

# One record: kind, side/action-code, padding, ipc sequence number, two
# signed ids, five doubles.  72 bytes packed; slots pad to 80 so the
# record area keeps 8-byte alignment and headroom for future fields.
_RECORD = struct.Struct("<BBHIQqqddddd")
_WORD = struct.Struct("<Q")

SLOT_SIZE = 8 + 80           # seq word + record area
HEADER_SIZE = 32             # four u64 depth counters
DEFAULT_RING_SLOTS = 1024

# Request record kinds (gateway → worker).
_REQ_ARRIVAL = 0x01
_REQ_DEPARTURE = 0x02
_REQ_MOVE = 0x03
_REQ_SNAPSHOT = 0x04
_REQ_FINISH = 0x05
_REQ_CHECKPOINT = 0x06
_REQ_PING = 0x07
_REQ_STOP = 0x08
_REQ_ESC = 0x0F

# Reply record kinds (worker → gateway).
_REP_ACK = 0x11
_REP_PONG = 0x12
_REP_ESC = 0x1F

# A kind byte that is valid in neither direction: what the fault
# injector publishes for shm-path "torn"/"corrupt" faults (a sequence
# word that advanced over a record that never finished writing).
_POISON = 0xEE

_REQ_CONTROL = {
    ipc.SNAPSHOT: _REQ_SNAPSHOT,
    ipc.FINISH: _REQ_FINISH,
    ipc.CHECKPOINT: _REQ_CHECKPOINT,
    ipc.PING: _REQ_PING,
    ipc.STOP: _REQ_STOP,
}
_REQ_CONTROL_INV = {code: tag for tag, code in _REQ_CONTROL.items()}

_ACTION_CODES = {
    Decision.ASSIGNED: 0,
    Decision.DISPATCHED: 1,
    Decision.STAY: 2,
    Decision.WAIT: 3,
    Decision.IGNORED: 4,
    Decision.DEPARTED: 5,
}
_ACTION_NAMES = {code: action for action, code in _ACTION_CODES.items()}

# Shared payload-free decisions (see repro.core.outcome): the ack fast
# path returns these instead of allocating an equal Decision per event.
_PLAIN_DECISIONS = {
    _ACTION_CODES[decision.action]: decision
    for decision in (outcome.STAY, outcome.WAIT, outcome.IGNORED,
                     outcome.DEPARTED)
}

_NEW = object.__new__

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1
_U64_MAX = 2 ** 64 - 1

# Spin-then-sleep tuning.  The spin keeps a loaded ring syscall-free;
# the sleep backs off to _SLEEP_CAP so an idle endpoint costs ~1k
# wakeups/s, and the blocking side re-checks parent liveness on every
# sleep (the asyncio side checks the child every _LIVENESS_EVERY s).
# Spinning only pays when the peer can run concurrently: on a
# single-core host every spin iteration steals the quantum the peer
# needs to fill the slot, so the spin collapses to a token few probes
# and the wait goes straight to yielding sleeps.
_SPIN = 400
_SLEEP_MIN = 2e-5
_SLEEP_CAP = 1e-3
_LIVENESS_EVERY = 0.05


def _fits_i64(value) -> bool:
    return isinstance(value, int) and _I64_MIN <= value <= _I64_MAX


def _fits_seq(value) -> bool:
    return isinstance(value, int) and 0 <= value <= _U64_MAX


# ---------------------------------------------------------------------- #
# Record codec
# ---------------------------------------------------------------------- #


def pack_request(buf, offset: int, tag: str, seq: int, payload) -> bool:
    """Pack one gateway → worker message into a slot record.

    Returns ``False`` — without touching the buffer — when the message
    does not fit the fixed record shape and must escape over the pipe:
    an arrival whose entity carries ``tags``, an id/seq outside the
    packed integer ranges, an event type outside the stream union, an
    unknown request tag, or a telemetry-``Stamped`` carrier (the
    sampled side channel — see the module docstring).
    """
    if not _fits_seq(seq):
        return False
    if tag == ipc.EVENT:
        kind = getattr(payload, "event_kind", None)
        if kind is ARRIVAL:
            entity = payload.entity
            if entity.tags is not None or not _fits_i64(entity.id):
                return False
            if not _fits_i64(payload.seq):
                return False
            if payload.kind == WORKER:
                side = 0
                if type(entity) is not Worker:
                    return False
            else:
                side = 1
                if type(entity) is not Task:
                    return False
            x, y = entity.location
            _RECORD.pack_into(
                buf, offset, _REQ_ARRIVAL, side, 0, 0, seq,
                entity.id, payload.seq, payload.time,
                x, y, entity.start, entity.duration,
            )
            return True
        if kind is DEPARTURE:
            if not (_fits_i64(payload.object_id) and _fits_i64(payload.seq)):
                return False
            side = 0 if payload.kind == WORKER else 1
            _RECORD.pack_into(
                buf, offset, _REQ_DEPARTURE, side, 0, 0, seq,
                payload.object_id, payload.seq, payload.time,
                0.0, 0.0, 0.0, 0.0,
            )
            return True
        if kind is MOVE:
            if not (_fits_i64(payload.object_id) and _fits_i64(payload.seq)):
                return False
            side = 0 if payload.kind == WORKER else 1
            x, y = payload.location
            _RECORD.pack_into(
                buf, offset, _REQ_MOVE, side, 0, 0, seq,
                payload.object_id, payload.seq, payload.time,
                x, y, 0.0, 0.0,
            )
            return True
        return False
    code = _REQ_CONTROL.get(tag)
    if code is None or payload is not None:
        return False
    _RECORD.pack_into(buf, offset, code, 0, 0, 0, seq,
                      0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return True


def unpack_request(buf, offset: int):
    """Inverse of :func:`pack_request`: ``(tag, seq, payload)``.

    An ``ESC`` record decodes to ``(ESC, seq, None)`` — the caller must
    read the real message from the pipe.

    Events are rebuilt the way unpickling rebuilds them — state
    restored straight into ``__dict__``, no ``__init__`` or
    ``__post_init__`` — both because the pipe transport has the same
    semantics and because it is ~3× faster on the per-event hot path;
    every record was range-checked by :func:`pack_request` on state
    the gateway had already validated.

    Raises:
        GatewayError: for a record whose kind byte is not a valid
            request kind (a torn or scribbled slot).
    """
    (kind, side, _pad16, _pad32, seq, a, b, t, x, y, s, u
     ) = _RECORD.unpack_from(buf, offset)
    if kind == _REQ_ARRIVAL:
        if side == 0:
            entity = _NEW(Worker)
            side_name = WORKER
        else:
            entity = _NEW(Task)
            side_name = TASK
        entity.__dict__.update(
            id=a, location=Point(x, y), start=s, duration=u, tags=None,
        )
        event = _NEW(Arrival)
        event.__dict__.update(time=t, seq=b, kind=side_name, entity=entity)
        return ipc.EVENT, seq, event
    if kind == _REQ_DEPARTURE:
        event = _NEW(Departure)
        event.__dict__.update(
            time=t, seq=b, kind=WORKER if side == 0 else TASK, object_id=a,
        )
        return ipc.EVENT, seq, event
    if kind == _REQ_MOVE:
        event = _NEW(Move)
        event.__dict__.update(
            time=t, seq=b, kind=WORKER if side == 0 else TASK, object_id=a,
            location=Point(x, y),
        )
        return ipc.EVENT, seq, event
    if kind == _REQ_ESC:
        return ESC, seq, None
    tag = _REQ_CONTROL_INV.get(kind)
    if tag is None:
        raise GatewayError(
            f"corrupt shm request record (kind 0x{kind:02x}); "
            "the ring can no longer be trusted"
        )
    return tag, seq, None


def pack_reply(buf, offset: int, tag: str, seq: int, payload) -> bool:
    """Pack one worker → gateway reply into a slot record.

    Only ``ACK`` (with a plain :class:`~repro.core.outcome.Decision`)
    and ``PONG`` fit; everything else — ``NACK`` error text, ``SNAP``
    snapshots, ``CHKPT`` shard state, ``DONE`` outcomes, a sampled
    event's ``Stamped(decision, stamps)`` ACK — returns ``False`` and
    escapes over the pipe.
    """
    if not _fits_seq(seq):
        return False
    if tag == ipc.ACK and type(payload) is Decision:
        code = _ACTION_CODES.get(payload.action)
        if code is None:
            return False
        partner = payload.partner_id
        area = payload.target_area
        if partner is None:
            partner = -1
        elif not (_fits_i64(partner) and partner >= 0):
            return False
        if area is None:
            area = -1
        elif not (_fits_i64(area) and area >= 0):
            return False
        _RECORD.pack_into(buf, offset, _REP_ACK, code, 0, 0, seq,
                          partner, area, 0.0, 0.0, 0.0, 0.0, 0.0)
        return True
    if tag == ipc.PONG and payload is None:
        _RECORD.pack_into(buf, offset, _REP_PONG, 0, 0, 0, seq,
                          0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return True
    return False


def unpack_reply(buf, offset: int):
    """Inverse of :func:`pack_reply`: ``(tag, seq, payload)``.

    Raises:
        GatewayError: for an invalid reply kind byte.
    """
    (kind, code, _pad16, _pad32, seq, a, b, _t, _x, _y, _s, _u
     ) = _RECORD.unpack_from(buf, offset)
    if kind == _REP_ACK:
        if a < 0 and b < 0:
            # Payload-free decisions reuse the same frozen singletons
            # the inline matchers hand out (equal by value either way;
            # this skips an allocation per ack).
            decision = _PLAIN_DECISIONS.get(code)
            if decision is not None:
                return ipc.ACK, seq, decision
        action = _ACTION_NAMES.get(code)
        if action is None:
            raise GatewayError(
                f"corrupt shm ack record (action code {code}); "
                "the ring can no longer be trusted"
            )
        return ipc.ACK, seq, Decision(
            action,
            target_area=None if b < 0 else b,
            partner_id=None if a < 0 else a,
        )
    if kind == _REP_PONG:
        return ipc.PONG, seq, None
    if kind == _REP_ESC:
        return ESC, seq, None
    raise GatewayError(
        f"corrupt shm reply record (kind 0x{kind:02x}); "
        "the ring can no longer be trusted"
    )


def pack_escape(buf, offset: int, seq: int, reply: bool) -> None:
    """Write an ``ESC`` record: "the real message is on the pipe".

    The pipe frame must already be written (and, on the blocking side,
    flushed) *before* this record is published — the consumer blocks on
    the pipe as soon as it sees ``ESC``, and the ordering guarantee is
    exactly "frame first, escape record second".
    """
    kind = _REP_ESC if reply else _REQ_ESC
    _RECORD.pack_into(buf, offset, kind, 0, 0, 0, seq,
                      0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)


def pack_poison(buf, offset: int, seq: int) -> None:
    """Write a deliberately invalid record (fault injection only).

    Models a sequence word that advanced over a half-written payload:
    the consumer's decode raises :class:`~repro.errors.GatewayError`,
    driving the same lost-worker path as a corrupt pipe frame.
    """
    _RECORD.pack_into(buf, offset, _POISON, 0, 0, 0, seq,
                      0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)


# ---------------------------------------------------------------------- #
# The ring
# ---------------------------------------------------------------------- #


class ShmRing:
    """One SPSC ring of fixed slots inside a shared buffer.

    Non-blocking by design: :meth:`try_reserve` / :meth:`try_consume`
    return a payload offset or ``None``; the wait policy (spin, sleep,
    liveness) lives with the endpoint that owns the position.

    Args:
        buf: the shared buffer (``SharedMemory.buf``).
        base: byte offset of slot 0.
        capacity: slot count.
        produced_off / consumed_off: byte offsets of this ring's depth
            counters (each written by exactly one side).
    """

    __slots__ = ("buf", "base", "capacity", "produced_off", "consumed_off")

    def __init__(self, buf, base: int, capacity: int,
                 produced_off: int, consumed_off: int) -> None:
        self.buf = buf
        self.base = base
        self.capacity = capacity
        self.produced_off = produced_off
        self.consumed_off = consumed_off

    def init_slots(self) -> None:
        """Creator-side init: slot ``k``'s sequence word starts at ``k``."""
        for index in range(self.capacity):
            _WORD.pack_into(self.buf, self.base + index * SLOT_SIZE, index)
        _WORD.pack_into(self.buf, self.produced_off, 0)
        _WORD.pack_into(self.buf, self.consumed_off, 0)

    def _slot(self, pos: int) -> int:
        return self.base + (pos % self.capacity) * SLOT_SIZE

    def try_reserve(self, pos: int) -> Optional[int]:
        """Producer probe at ``pos``: payload offset, or ``None`` (full).

        Raises:
            GatewayError: when the sequence word is neither "free" nor
                "still occupied" — the ring is corrupt.
        """
        slot = self._slot(pos)
        (word,) = _WORD.unpack_from(self.buf, slot)
        if word == pos:
            return slot + 8
        if word == pos - self.capacity + 1:
            return None  # the consumer has not freed this slot yet
        raise GatewayError(
            f"shm ring corruption: slot sequence word {word} at producer "
            f"position {pos} (expected {pos} or {pos - self.capacity + 1})"
        )

    def publish(self, pos: int) -> None:
        """Make the record at ``pos`` visible to the consumer."""
        _WORD.pack_into(self.buf, self._slot(pos), pos + 1)
        (produced,) = _WORD.unpack_from(self.buf, self.produced_off)
        _WORD.pack_into(self.buf, self.produced_off, produced + 1)

    def try_consume(self, pos: int) -> Optional[int]:
        """Consumer probe at ``pos``: payload offset, or ``None`` (empty).

        Raises:
            GatewayError: when the sequence word is neither "ready" nor
                "not yet published" — a torn write or a scribble.
        """
        slot = self._slot(pos)
        (word,) = _WORD.unpack_from(self.buf, slot)
        if word == pos + 1:
            return slot + 8
        if word == pos:
            return None  # the producer has not published this entry yet
        raise GatewayError(
            f"shm ring corruption: slot sequence word {word} at consumer "
            f"position {pos} (expected {pos} or {pos + 1})"
        )

    def free(self, pos: int) -> None:
        """Hand the slot at ``pos`` back to the producer."""
        _WORD.pack_into(self.buf, self._slot(pos), pos + self.capacity)
        (consumed,) = _WORD.unpack_from(self.buf, self.consumed_off)
        _WORD.pack_into(self.buf, self.consumed_off, consumed + 1)

    def depth(self) -> int:
        """Published-but-unconsumed records (the gauge the snapshot shows)."""
        (produced,) = _WORD.unpack_from(self.buf, self.produced_off)
        (consumed,) = _WORD.unpack_from(self.buf, self.consumed_off)
        return max(0, produced - consumed)


# ---------------------------------------------------------------------- #
# Segment plumbing
# ---------------------------------------------------------------------- #


def segment_size(capacity: int) -> int:
    """Bytes one worker's duplex segment needs."""
    return HEADER_SIZE + 2 * capacity * SLOT_SIZE


def request_ring(segment: shared_memory.SharedMemory, capacity: int) -> ShmRing:
    """The gateway → worker ring of one segment."""
    return ShmRing(segment.buf, HEADER_SIZE, capacity,
                   produced_off=0, consumed_off=8)


def reply_ring(segment: shared_memory.SharedMemory, capacity: int) -> ShmRing:
    """The worker → gateway ring of one segment."""
    return ShmRing(segment.buf, HEADER_SIZE + capacity * SLOT_SIZE, capacity,
                   produced_off=16, consumed_off=24)


def create_segment(capacity: int) -> shared_memory.SharedMemory:
    """Create and initialise one worker's duplex ring segment.

    The caller (the pool's ``_spawn``) owns the lifecycle: the segment
    is created before the fork so the child inherits the mapped object
    directly, and the parent must ``close()`` + ``unlink()`` it at reap.

    Raises:
        GatewayError: for a capacity below 2 (the protocol needs at
            least one free and one in-flight slot).
    """
    if capacity < 2:
        raise GatewayError(f"ring capacity must be >= 2, got {capacity}")
    segment = shared_memory.SharedMemory(create=True, size=segment_size(capacity))
    request_ring(segment, capacity).init_slots()
    reply_ring(segment, capacity).init_slots()
    return segment


def shm_available() -> bool:
    """Whether this host can serve shared-memory segments at all."""
    try:
        probe = shared_memory.SharedMemory(create=True, size=64)
    except (OSError, ValueError, FileNotFoundError):  # pragma: no cover
        return False
    probe.close()
    try:
        probe.unlink()
    except OSError:  # pragma: no cover - already reclaimed
        pass
    return True


# ---------------------------------------------------------------------- #
# Endpoints
# ---------------------------------------------------------------------- #


class ShmWorkerEndpoint:
    """The worker child's blocking side of the duplex ring pair.

    Mirrors the pipe channel's ``recv`` / ``send`` surface so
    :func:`~repro.serving.workers.shard_worker_main` serves both
    transports with one loop.  The pickle pipe stays attached as the
    escape hatch for oversized or variable payloads.

    Parent death is detected in the sleep phase of every wait: the
    worker was forked by the gateway, so ``getppid`` flipping (to init
    or a subreaper) means the gateway is gone and the worker must exit
    — the pipe cannot be peeked for EOF instead, because escaped
    frames may legitimately be queued on it.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        capacity: int,
        pipe: ipc.BlockingEndpoint,
    ) -> None:
        self._segment = segment
        self._requests = request_ring(segment, capacity)
        self._replies = reply_ring(segment, capacity)
        self._pipe = pipe
        self._recv_pos = 0
        self._send_pos = 0
        self._ppid = os.getppid()

    def _wait(self, probe, pos: int) -> int:
        """Spin-then-sleep until ``probe(pos)`` yields a slot offset."""
        for _ in range(_SPIN):
            offset = probe(pos)
            if offset is not None:
                return offset
        delay = _SLEEP_MIN
        while True:
            offset = probe(pos)
            if offset is not None:
                return offset
            if os.getppid() != self._ppid:
                raise EOFError("gateway process died")
            time.sleep(delay)
            delay = min(delay * 2, _SLEEP_CAP)

    def recv(self):
        """Block for one request: ``(tag, seq, payload)``.

        Raises:
            EOFError: when the parent gateway died.
            GatewayError: for a corrupt slot (never sent by a healthy
                gateway — this worker is then desynchronized and dies,
                which the parent treats as a crash).
        """
        pos = self._recv_pos
        offset = self._wait(self._requests.try_consume, pos)
        message = unpack_request(self._segment.buf, offset)
        self._requests.free(pos)
        self._recv_pos = pos + 1
        if message[0] is ESC:
            return self._pipe.recv()
        return message

    def send(self, tag: str, seq: int, payload) -> None:
        """Publish one reply, escaping to the pipe when it cannot pack.

        Raises:
            GatewayError: when an escaped reply exceeds the pipe frame
                limit (nothing is published; the caller may retry with
                a NACK exactly as on the pipe transport).
        """
        pos = self._send_pos
        offset = self._wait(self._replies.try_reserve, pos)
        if not pack_reply(self._segment.buf, offset, tag, seq, payload):
            # Frame first, escape record second: the parent blocks on
            # the pipe the moment it consumes the ESC slot, so the
            # frame must already be flushed.  A frame-limit failure
            # raises here with the slot still unpublished.
            self._pipe.send((tag, seq, payload))
            pack_escape(self._segment.buf, offset, seq, reply=True)
        self._replies.publish(pos)
        self._send_pos = pos + 1

    def send_corrupt(self, seq: int, _decision) -> None:
        """Fault injection: publish a poisoned record (worker survives)."""
        pos = self._send_pos
        offset = self._wait(self._replies.try_reserve, pos)
        pack_poison(self._segment.buf, offset, seq)
        self._replies.publish(pos)
        self._send_pos = pos + 1

    def send_torn(self, seq: int, decision) -> None:
        """Fault injection: a write torn by death.

        On shm a crash *before* publish is invisible (the slot stays
        "not ready" and the parent sees only the process exit), so the
        injected torn write is the nastier variant: the sequence word
        advanced but the record did not finish — a poisoned slot, after
        which the caller SIGKILLs the worker mid-protocol.
        """
        self.send_corrupt(seq, decision)

    def close(self) -> None:
        """Close the escape-hatch pipe; the mapping dies with the process."""
        self._pipe.close()


class ShmParentTransport:
    """The gateway's asyncio side of one worker's duplex ring pair.

    Presents the same ``send_batch`` / ``recv`` surface as the pipe
    transport, so the pool's writer/reader loops and the supervisor's
    replay are transport-blind.  Waits are spin-then-yield then
    backed-off ``asyncio.sleep``; child liveness is polled during the
    sleep phase and the ring is drained before ``EOFError`` surfaces,
    so replies published moments before a death are never lost.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        capacity: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        process,
    ) -> None:
        self._segment = segment
        self._capacity = capacity
        self._requests = request_ring(segment, capacity)
        self._replies = reply_ring(segment, capacity)
        self._reader = reader
        self._writer = writer
        self._process = process
        self._send_pos = 0
        self._recv_pos = 0
        self._closed = False

    name = "shm"

    def _child_alive(self) -> bool:
        process = self._process
        return process is not None and process.is_alive()

    async def send_batch(self, messages) -> None:
        """Publish a batch of ``(tag, seq, payload)`` requests in order.

        Parks on a full ring (the IPC backpressure path — the writer
        loop, the outbox and the dispatcher stall behind it).  Escaped
        messages hit the pipe buffer *before* their ESC record is
        published; one drain at the end flushes them.

        Raises:
            ConnectionError: when the worker died while the ring was
                full (the reader loop owns the crash accounting).
        """
        buf = self._segment.buf
        ring = self._requests
        escaped = False
        for tag, seq, payload in messages:
            pos = self._send_pos
            offset = ring.try_reserve(pos)
            if offset is None:
                delay = _SLEEP_MIN
                waited = 0.0
                while offset is None:
                    await asyncio.sleep(delay)
                    waited += delay
                    delay = min(delay * 2, _SLEEP_CAP)
                    offset = ring.try_reserve(pos)
                    if offset is None and waited >= _LIVENESS_EVERY:
                        waited = 0.0
                        if not self._child_alive():
                            raise ConnectionError(
                                "shard worker exited with its request "
                                "ring full"
                            )
            if not pack_request(buf, offset, tag, seq, payload):
                self._writer.write(ipc.encode_frame((tag, seq, payload)))
                escaped = True
                pack_escape(buf, offset, seq, reply=False)
            ring.publish(pos)
            self._send_pos = pos + 1
        if escaped:
            await self._writer.drain()

    async def recv(self):
        """One reply ``(tag, seq, payload)`` in ring order.

        Raises:
            EOFError: the worker is gone and the ring is drained (the
                same signal a closed pipe gives the pipe transport).
            GatewayError: a corrupt slot — sequence-word desync or a
                poisoned record.
        """
        ring = self._replies
        pos = self._recv_pos
        spin = _SPIN
        delay = 0.0
        waited = 0.0
        while True:
            offset = ring.try_consume(pos)
            if offset is not None:
                message = unpack_reply(self._segment.buf, offset)
                ring.free(pos)
                self._recv_pos = pos + 1
                if message[0] is ESC:
                    return await ipc.read_frame(self._reader)
                return message
            if spin > 0:
                spin -= 1
                await asyncio.sleep(0)
                continue
            delay = min(max(delay * 2, _SLEEP_MIN), _SLEEP_CAP)
            waited += delay
            await asyncio.sleep(delay)
            if waited >= _LIVENESS_EVERY:
                waited = 0.0
                if not self._child_alive():
                    # Drain race: the worker may have published its
                    # last replies just before exiting.
                    if ring.try_consume(pos) is None:
                        raise EOFError("shard worker exited")

    def recv_ready(self) -> List[Tuple[str, int, object]]:
        """Drain every already-published in-ring reply, without awaiting.

        The reader loop calls this after each awaited :meth:`recv` to
        consume reply bursts at plain-function cost instead of one
        coroutine round trip per message.  Stops (leaving the slot
        unconsumed for the next :meth:`recv`) at an ``ESC`` record,
        which needs an awaited pipe read.

        Raises:
            GatewayError: for a corrupt slot, exactly like :meth:`recv`.
        """
        ring = self._replies
        buf = self._segment.buf
        messages: List[Tuple[str, int, object]] = []
        while True:
            pos = self._recv_pos
            offset = ring.try_consume(pos)
            if offset is None:
                return messages
            message = unpack_reply(buf, offset)
            if message[0] is ESC:
                return messages
            ring.free(pos)
            self._recv_pos = pos + 1
            messages.append(message)

    def depths(self) -> Tuple[int, int]:
        """(request ring depth, reply ring depth) — the /snapshot gauges."""
        if self._closed:
            return (0, 0)
        return (self._requests.depth(), self._replies.depth())

    def close(self) -> None:
        """Release the parent's mapping and unlink the segment (idempotent).

        Safe while the child still maps it — ``unlink`` removes the
        name, not live mappings — but callers reap the child first so
        a replacement can never race a dying sibling's segment.
        """
        if self._closed:
            return
        self._closed = True
        # Drop ring views of the mapped buffer before closing it, or
        # SharedMemory.close() raises BufferError on exported views.
        self._requests = None
        self._replies = None
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass
        try:
            self._segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass


def ring_depth_rows(transports) -> List[Tuple[int, int]]:
    """Depth pairs for a list of parent transports (``None``-safe)."""
    rows: List[Tuple[int, int]] = []
    for transport in transports:
        depths = getattr(transport, "depths", None)
        rows.append(depths() if callable(depths) else (0, 0))
    return rows
