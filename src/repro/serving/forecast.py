"""Forecast-driven guides: fit a predictor on a history stream.

``repro replay --guide self`` scores POLAR under perfect hindsight (the
stream's own empirical counts).  A real deployment cannot see the future:
it fits one of the :mod:`repro.prediction` models on *historical* days
and feeds the forecast to Algorithm 1.  This module provides that path
for JSONL streams:

* :func:`history_from_stream` buckets a (possibly multi-day) arrival
  stream into the per-``(day, slot, area)`` count tensors the predictors
  train on — day ``d`` of a stream is the ``d``-th repetition of the
  timeline's horizon, so one dumped day trains a one-day history and a
  week-long log trains seven.
* :func:`forecast_guide` fits one predictor per side (workers and tasks
  are separate demand surfaces), forecasts the next day, rounds the
  counts mass-preservingly and builds the guide with the history's mean
  durations.

The forecast's day context assumes the target day directly follows the
history (``day_index = n_days``) with clear weather — the JSONL schema
carries no weather channel, so weather-aware predictors see a constant
feature and degrade gracefully to their time/weekday structure.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.core.guide import OfflineGuide, build_guide
from repro.errors import SimulationError
from repro.model.events import Arrival, StreamEvent
from repro.prediction import DayContext, DemandHistory, make_predictor
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel
from repro.streams.oracle import rounded_counts

__all__ = [
    "history_from_stream",
    "forecast_counts",
    "forecast_guide",
    "forecast_volume",
    "forecast_halfway",
]


def _side_predictor(name: str, seed: int, n_days: int):
    """A predictor instance sized to the history depth.

    HP-MSI's city-level model trains on day lags (default 7); short
    histories get a shallower lag window so a two-day log is already
    fittable.  Other predictors take their defaults.
    """
    key = name.upper().replace("_", "-")
    if key in ("HP-MSI", "HPMSI"):
        from repro.prediction import HpMsiPredictor

        if n_days < 2:
            raise SimulationError(
                "HP-MSI needs at least 2 history days; got "
                f"{n_days} (use --predictor HA for single-day histories)"
            )
        return HpMsiPredictor(seed=seed, n_day_lags=min(7, n_days - 1))
    return make_predictor(name, seed=seed)


def history_from_stream(
    events: Iterable[Arrival],
    grid: Grid,
    timeline: Timeline,
) -> Tuple[DemandHistory, DemandHistory, float, float]:
    """Bucket a history stream into per-side demand histories.

    Returns ``(worker_history, task_history, worker_duration,
    task_duration)`` where the durations are the per-side means (the
    guide's representative ``Dw`` / ``Dr``).  Times past the timeline's
    horizon end fold into later days: day ``d`` covers
    ``(t0 + d*H, t0 + (d+1)*H]`` for horizon length ``H`` — exact day
    boundaries close the earlier day (Timeline's closed-edge
    convention), so a one-day stream ending exactly at the horizon end
    stays a one-day history.

    Raises:
        SimulationError: for an empty stream or pre-horizon times.
    """
    horizon = timeline.duration
    t0 = timeline.t0
    slot_minutes = timeline.slot_minutes
    n_slots = timeline.n_slots
    day_counts: List[Tuple[np.ndarray, np.ndarray]] = []
    worker_durations: List[float] = []
    task_durations: List[float] = []
    n_events = 0
    for arrival in events:
        if not isinstance(arrival, Arrival):
            continue  # churn events carry no demand signal
        entity = arrival.entity
        offset = entity.start - t0
        if offset < 0:
            raise SimulationError(
                f"history arrival at t={entity.start} precedes the timeline "
                f"start t0={t0}"
            )
        day, within = divmod(offset, horizon)
        day = int(day)
        if within == 0 and day > 0:
            # An arrival at an exact day boundary bins into the closing
            # day's last slot, mirroring Timeline's closed-edge
            # convention (slot_of accepts the horizon end); otherwise a
            # single event at the horizon end would mint a phantom
            # near-empty history day and skew every per-day average.
            day -= 1
            slot = n_slots - 1
        else:
            slot = min(int(within / slot_minutes), n_slots - 1)
        while len(day_counts) <= day:
            day_counts.append(
                (
                    np.zeros((n_slots, grid.n_areas), dtype=np.int64),
                    np.zeros((n_slots, grid.n_areas), dtype=np.int64),
                )
            )
        area = grid.area_of(entity.location)
        if arrival.is_worker:
            day_counts[day][0][slot, area] += 1
            worker_durations.append(entity.duration)
        else:
            day_counts[day][1][slot, area] += 1
            task_durations.append(entity.duration)
        n_events += 1
    if n_events == 0:
        raise SimulationError("cannot build a history from an empty stream")
    n_days = len(day_counts)
    worker_tensor = np.stack([w for w, _t in day_counts])
    task_tensor = np.stack([t for _w, t in day_counts])
    day_of_week = np.arange(n_days, dtype=np.int64) % 7
    weather = np.zeros((n_days, n_slots), dtype=np.int64)
    worker_history = DemandHistory(worker_tensor, day_of_week, weather)
    task_history = DemandHistory(task_tensor, day_of_week, weather)
    worker_duration = (
        sum(worker_durations) / len(worker_durations) if worker_durations else 0.0
    )
    task_duration = (
        sum(task_durations) / len(task_durations) if task_durations else 0.0
    )
    return worker_history, task_history, worker_duration, task_duration


def forecast_guide(
    history_events: Iterable[Arrival],
    grid: Grid,
    timeline: Timeline,
    travel: TravelModel,
    predictor: str = "HA",
    seed: int = 0,
) -> OfflineGuide:
    """Algorithm 1 fed with a *forecast* of the serving day.

    One predictor per side is fit on the history stream and asked for
    the day right after it; the real replayed stream stays unseen, so
    this measures POLAR under honest prediction error rather than the
    self-guide's perfect hindsight.

    Args:
        history_events: the training stream (e.g. a previous day's dump).
        grid / timeline / travel: the serving discretisation.
        predictor: a :func:`repro.prediction.make_predictor` name
            (``HA``, ``HP-MSI``, ``GBRT``, …).
        seed: seed for the stochastic predictors.

    Raises:
        SimulationError: for an empty history (via
            :func:`history_from_stream`) or a side with zero observed
            durations — the guide needs positive ``Dw`` and ``Dr``.
        ValueError: for an unknown predictor name.
    """
    worker_counts, task_counts, worker_duration, task_duration = (
        forecast_counts(history_events, grid, timeline, predictor, seed)
    )
    if worker_duration <= 0 or task_duration <= 0:
        raise SimulationError(
            "history must contain both workers and tasks to estimate durations"
        )
    return build_guide(
        worker_counts,
        task_counts,
        grid,
        timeline,
        travel,
        worker_duration,
        task_duration,
    )


def forecast_counts(
    history_events: Iterable[StreamEvent],
    grid: Grid,
    timeline: Timeline,
    predictor: str = "HA",
    seed: int = 0,
):
    """Fit per-side predictors on a history and forecast the next day.

    The shared recipe behind :func:`forecast_guide` and
    :func:`forecast_volume`: bucket the history, fit one predictor per
    side, forecast ``day_index = n_days`` and round mass-preservingly.
    Returns ``(worker_counts, task_counts, worker_duration,
    task_duration)`` — public because sharded serving splits the count
    tensors by :class:`~repro.serving.shard.ShardRouter` cell ownership
    before guide construction
    (:func:`repro.serving.shard.build_shard_guides`).
    """
    worker_history, task_history, worker_duration, task_duration = (
        history_from_stream(history_events, grid, timeline)
    )
    n_days = worker_history.n_days
    context = DayContext(
        day_of_week=n_days % 7,
        weather=np.zeros(timeline.n_slots, dtype=np.int64),
        day_index=n_days,
    )
    worker_model = _side_predictor(predictor, seed, n_days)
    worker_model.fit(worker_history)
    worker_counts = rounded_counts(worker_model.predict(context))
    task_model = _side_predictor(predictor, seed, n_days)
    task_model.fit(task_history)
    task_counts = rounded_counts(task_model.predict(context))
    return worker_counts, task_counts, worker_duration, task_duration


def forecast_volume(
    history_events: Iterable[StreamEvent],
    grid: Grid,
    timeline: Timeline,
    predictor: str = "HP-MSI",
    seed: int = 0,
) -> Tuple[int, int]:
    """Forecast the serving day's total (worker, task) arrival volumes.

    The same per-side predictors :func:`forecast_guide` fits, asked only
    for their city-level totals: the forecast tensors are rounded
    mass-preservingly and summed.  This is the volume signal streaming
    TGOA needs for its phase boundary (the matcher's ``halfway`` is an
    arrival *count*, which an online deployment cannot read off
    ``len(stream)``).

    Raises:
        SimulationError: for an empty history.
        ValueError: for an unknown predictor name.
    """
    worker_counts, task_counts, _wd, _td = forecast_counts(
        history_events, grid, timeline, predictor, seed
    )
    return int(worker_counts.sum()), int(task_counts.sum())


def forecast_halfway(
    history_events: Iterable[StreamEvent],
    grid: Grid,
    timeline: Timeline,
    predictor: str = "HP-MSI",
    seed: int = 0,
) -> int:
    """Streaming TGOA's phase boundary from a volume forecast.

    ``halfway`` is half the forecast total arrival count — the online
    replacement for the offline adapter's ``len(stream) // 2`` (ROADMAP
    serving backlog).  ``repro serve`` / ``repro replay`` expose it as
    ``--halfway from-forecast``.
    """
    workers, tasks = forecast_volume(
        history_events, grid, timeline, predictor=predictor, seed=seed
    )
    return (workers + tasks) // 2
