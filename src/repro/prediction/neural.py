"""NN — a feed-forward neural network predictor (Section 6.3.1).

"Using a neural network with the numbers of tasks and workers of the 15
most recent corresponding periods and other features e.g. the weather
condition."  A from-scratch numpy MLP: one hidden ReLU layer, squared
loss, Adam, mini-batches, standardised inputs.  Deterministic given the
seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import DayContext, DemandHistory, Predictor
from repro.prediction.features import CellFeatureizer

__all__ = ["NeuralNetworkPredictor", "MlpRegressor"]


class MlpRegressor:
    """A single-hidden-layer ReLU MLP trained with Adam on squared loss.

    Args:
        hidden: hidden-layer width.
        epochs: training epochs over the (possibly capped) training set.
        batch_size: mini-batch size.
        learning_rate: Adam step size.
        max_rows: training-row cap (uniform subsample) for tractability.
        seed: initialisation and shuffling seed.
    """

    def __init__(
        self,
        hidden: int = 48,
        epochs: int = 25,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        max_rows: int = 60_000,
        seed: int = 0,
    ) -> None:
        if hidden < 1 or epochs < 1 or batch_size < 1:
            raise PredictionError("invalid MLP hyper-parameters")
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.max_rows = max_rows
        self.seed = seed
        self._w1: Optional[np.ndarray] = None
        self._b1: Optional[np.ndarray] = None
        self._w2: Optional[np.ndarray] = None
        self._b2: float = 0.0
        self._mu: Optional[np.ndarray] = None
        self._sigma: Optional[np.ndarray] = None
        self._y_mu: float = 0.0
        self._y_sigma: float = 1.0

    def fit(self, features: np.ndarray, target: np.ndarray) -> "MlpRegressor":
        """Train the network (inputs and targets are standardised)."""
        features = np.asarray(features, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        if features.shape[0] > self.max_rows:
            keep = rng.choice(features.shape[0], self.max_rows, replace=False)
            features = features[keep]
            target = target[keep]
        self._mu = features.mean(axis=0)
        self._sigma = features.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        x = (features - self._mu) / self._sigma
        self._y_mu = float(target.mean())
        self._y_sigma = float(target.std()) or 1.0
        y = (target - self._y_mu) / self._y_sigma

        n, f = x.shape
        h = self.hidden
        self._w1 = rng.normal(0.0, np.sqrt(2.0 / f), size=(f, h))
        self._b1 = np.zeros(h)
        self._w2 = rng.normal(0.0, np.sqrt(2.0 / h), size=(h, 1))
        self._b2 = 0.0

        beta1, beta2, eps = 0.9, 0.999, 1e-8
        moments = {
            key: (np.zeros_like(value), np.zeros_like(value))
            for key, value in (("w1", self._w1), ("b1", self._b1), ("w2", self._w2))
        }
        m_b2 = v_b2 = 0.0
        step = 0
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                rows = order[start : start + self.batch_size]
                xb = x[rows]
                yb = y[rows]
                step += 1
                # Forward.
                pre = xb @ self._w1 + self._b1
                act = np.maximum(pre, 0.0)
                out = (act @ self._w2).ravel() + self._b2
                # Backward (MSE).
                grad_out = 2.0 * (out - yb) / rows.size
                grad_w2 = act.T @ grad_out[:, None]
                grad_b2 = float(grad_out.sum())
                grad_act = grad_out[:, None] @ self._w2.T
                grad_pre = grad_act * (pre > 0.0)
                grad_w1 = xb.T @ grad_pre
                grad_b1 = grad_pre.sum(axis=0)
                # Adam updates.
                for key, param, grad in (
                    ("w1", self._w1, grad_w1),
                    ("b1", self._b1, grad_b1),
                    ("w2", self._w2, grad_w2),
                ):
                    m, v = moments[key]
                    m *= beta1
                    m += (1 - beta1) * grad
                    v *= beta2
                    v += (1 - beta2) * grad**2
                    m_hat = m / (1 - beta1**step)
                    v_hat = v / (1 - beta2**step)
                    param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
                m_b2 = beta1 * m_b2 + (1 - beta1) * grad_b2
                v_b2 = beta2 * v_b2 + (1 - beta2) * grad_b2**2
                self._b2 -= self.learning_rate * (
                    (m_b2 / (1 - beta1**step)) / (np.sqrt(v_b2 / (1 - beta2**step)) + eps)
                )
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Network output, de-standardised."""
        if self._w1 is None:
            raise PredictionError("MLP not fitted")
        x = (np.asarray(features, dtype=np.float64) - self._mu) / self._sigma
        act = np.maximum(x @ self._w1 + self._b1, 0.0)
        out = (act @ self._w2).ravel() + self._b2
        return out * self._y_sigma + self._y_mu


class NeuralNetworkPredictor(Predictor):
    """The paper's NN predictor: the MLP over per-cell features."""

    name = "NN"

    def __init__(self, hidden: int = 48, epochs: int = 25, seed: int = 0) -> None:
        super().__init__()
        self._features = CellFeatureizer()
        self._model = MlpRegressor(hidden=hidden, epochs=epochs, seed=seed)

    def fit(self, history: DemandHistory) -> None:
        """Featureise the history and train the MLP."""
        super().fit(history)
        self._features.fit(history)
        design, target = self._features.training_matrix(history)
        self._model.fit(design, target)

    def _predict(self, context: DayContext) -> np.ndarray:
        design = self._features.target_matrix(context)
        flat = self._model.predict(design)
        slots, areas = self._fitted_shape
        return flat.reshape(slots, areas)
