"""Per-cell feature engineering shared by the GBRT and NN predictors.

The paper's strong predictors consume "the numbers of tasks and workers
of the 15 most recent corresponding periods and other features e.g. the
weather condition" (NN description, Section 6.3.1).  For a target cell
(day ``d``, slot ``i``, area ``j``) we build:

* day lags — the same (slot, area) cell on days ``d−1 … d−L``;
* the area's historical mean at that slot and overall;
* slot-of-day harmonics (sin/cos of one and two cycles per day);
* weekday indicators (weekend flag plus the raw index);
* weather one-hot for the target slot.

The featureizer is fit once on history (it memorises the lag window and
per-cell climatology) and can then emit both the training matrix over
all history days with enough lag context and the matrix for the target
day.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import DayContext, DemandHistory

__all__ = ["CellFeatureizer", "N_WEATHER_STATES"]

N_WEATHER_STATES = 3


class CellFeatureizer:
    """Builds (rows × features) matrices for per-cell count regression.

    Args:
        n_day_lags: number of same-slot day lags (default 7 — a full
            week, which both captures weekly cycles and keeps the matrix
            compact; the paper's 15 is supported by passing 15).
    """

    def __init__(self, n_day_lags: int = 7) -> None:
        if n_day_lags < 1:
            raise PredictionError(f"n_day_lags must be >= 1, got {n_day_lags}")
        self.n_day_lags = n_day_lags
        self._history: Optional[DemandHistory] = None
        self._slot_mean: Optional[np.ndarray] = None
        self._area_mean: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def fit(self, history: DemandHistory) -> "CellFeatureizer":
        """Memorise history and per-cell climatology."""
        counts = np.asarray(history.counts, dtype=np.float64)
        self._history = history
        self._slot_mean = counts.mean(axis=0)  # (slots, areas)
        self._area_mean = counts.mean(axis=(0, 1))  # (areas,)
        return self

    @property
    def n_features(self) -> int:
        """Width of the emitted matrices."""
        return self.n_day_lags + 2 + 4 + 2 + N_WEATHER_STATES

    # ------------------------------------------------------------------ #
    # Matrix construction
    # ------------------------------------------------------------------ #

    def _rows_for_day(
        self,
        counts: np.ndarray,
        day: int,
        day_of_week: int,
        weather_row: np.ndarray,
    ) -> np.ndarray:
        """Feature rows for every (slot, area) of one day.

        ``counts`` must contain at least ``day`` days; lags index
        backwards from ``day``.
        """
        n_slots, n_areas = counts.shape[1], counts.shape[2]
        usable = min(self.n_day_lags, day)
        blocks = []
        for lag in range(1, self.n_day_lags + 1):
            if lag <= usable:
                block = counts[day - lag]
            else:
                block = self._slot_mean  # pad with climatology
            blocks.append(block.reshape(-1))
        lag_block = np.stack(blocks, axis=1)  # (slots*areas, n_day_lags)

        slot_mean = self._slot_mean.reshape(-1)
        area_mean = np.tile(self._area_mean, n_slots)

        slot_index = np.repeat(np.arange(n_slots), n_areas)
        angle = 2.0 * np.pi * slot_index / n_slots
        harmonics = np.stack(
            [np.sin(angle), np.cos(angle), np.sin(2 * angle), np.cos(2 * angle)],
            axis=1,
        )

        weekend = 1.0 if day_of_week >= 5 else 0.0
        calendar = np.stack(
            [
                np.full(n_slots * n_areas, weekend),
                np.full(n_slots * n_areas, float(day_of_week)),
            ],
            axis=1,
        )

        weather_states = np.repeat(np.asarray(weather_row), n_areas)
        weather_onehot = np.zeros((n_slots * n_areas, N_WEATHER_STATES))
        valid = (weather_states >= 0) & (weather_states < N_WEATHER_STATES)
        weather_onehot[np.arange(n_slots * n_areas)[valid], weather_states[valid]] = 1.0

        return np.hstack(
            [
                lag_block,
                slot_mean[:, None],
                area_mean[:, None],
                harmonics,
                calendar,
                weather_onehot,
            ]
        )

    def training_matrix(self, history: DemandHistory) -> Tuple[np.ndarray, np.ndarray]:
        """Design matrix and targets over all history days with ≥1 lag.

        Raises:
            PredictionError: if called before :meth:`fit` or on a
                single-day history (no lag context at all).
        """
        if self._history is None:
            raise PredictionError("featureizer not fitted")
        counts = np.asarray(history.counts, dtype=np.float64)
        n_days = counts.shape[0]
        if n_days < 2:
            raise PredictionError("need at least two history days for lags")
        designs = []
        targets = []
        for day in range(1, n_days):
            designs.append(
                self._rows_for_day(
                    counts, day, int(history.day_of_week[day]), history.weather[day]
                )
            )
            targets.append(counts[day].reshape(-1))
        return np.concatenate(designs, axis=0), np.concatenate(targets, axis=0)

    def target_matrix(self, context: DayContext) -> np.ndarray:
        """Design matrix for the forecast day (lags come from the full
        history tail)."""
        if self._history is None:
            raise PredictionError("featureizer not fitted")
        counts = np.asarray(self._history.counts, dtype=np.float64)
        return self._rows_for_day(
            counts, counts.shape[0], context.day_of_week, np.asarray(context.weather)
        )
