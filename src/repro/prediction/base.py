"""Shared containers and the predictor protocol.

Prediction is *offline* (Section 3.1.1): before the evaluation day starts
the platform forecasts the whole day's counts per (slot, area) from
historical observations plus exogenous day features (day of week, weather
forecast).  All predictors implement :class:`Predictor`:
``fit(DemandHistory)`` then ``predict(DayContext) → (slots, areas)``.

Counts are non-negative floats at the prediction layer; the guide rounds
them to integers (:func:`repro.streams.oracle.rounded_counts`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import PredictionError

__all__ = ["DemandHistory", "DayContext", "Predictor", "clip_counts"]


@dataclass(frozen=True)
class DemandHistory:
    """Historical per-(day, slot, area) counts with day-level features.

    Attributes:
        counts: integer tensor, shape ``(n_days, n_slots, n_areas)``.
        day_of_week: per-day weekday index 0–6 (0 = Monday), shape
            ``(n_days,)``.
        weather: per-(day, slot) categorical weather state (0 = clear,
            1 = overcast, 2 = rain), shape ``(n_days, n_slots)``.
    """

    counts: np.ndarray
    day_of_week: np.ndarray
    weather: np.ndarray

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts)
        if counts.ndim != 3:
            raise PredictionError(
                f"counts must be (days, slots, areas), got shape {counts.shape}"
            )
        if (counts < 0).any():
            raise PredictionError("counts must be non-negative")
        n_days, n_slots, _ = counts.shape
        dow = np.asarray(self.day_of_week)
        if dow.shape != (n_days,):
            raise PredictionError(
                f"day_of_week shape {dow.shape} inconsistent with {n_days} days"
            )
        weather = np.asarray(self.weather)
        if weather.shape != (n_days, n_slots):
            raise PredictionError(
                f"weather shape {weather.shape} inconsistent with "
                f"({n_days}, {n_slots})"
            )

    @property
    def n_days(self) -> int:
        """Number of history days."""
        return self.counts.shape[0]

    @property
    def n_slots(self) -> int:
        """Slots per day."""
        return self.counts.shape[1]

    @property
    def n_areas(self) -> int:
        """Grid areas."""
        return self.counts.shape[2]

    def tail(self, n_days: int) -> "DemandHistory":
        """The most recent ``n_days`` of history (for recency predictors)."""
        if n_days <= 0:
            raise PredictionError(f"n_days must be positive, got {n_days}")
        n_days = min(n_days, self.n_days)
        return DemandHistory(
            counts=self.counts[-n_days:],
            day_of_week=self.day_of_week[-n_days:],
            weather=self.weather[-n_days:],
        )

    def flattened_series(self) -> np.ndarray:
        """Counts as one time series per area: shape
        ``(n_days * n_slots, n_areas)`` in chronological order."""
        return self.counts.reshape(self.n_days * self.n_slots, self.n_areas)


@dataclass(frozen=True)
class DayContext:
    """Exogenous information about the target day.

    Attributes:
        day_of_week: weekday index 0–6 of the day being forecast.
        weather: forecast weather state per slot, shape ``(n_slots,)``.
        day_index: absolute day index (``history.n_days`` for the day
            right after the history window).
    """

    day_of_week: int
    weather: np.ndarray
    day_index: int

    def __post_init__(self) -> None:
        if not 0 <= self.day_of_week <= 6:
            raise PredictionError(f"day_of_week must be in 0..6, got {self.day_of_week}")
        if np.asarray(self.weather).ndim != 1:
            raise PredictionError("weather must be a 1-D per-slot array")

    @property
    def is_weekend(self) -> bool:
        """Saturday (5) or Sunday (6)."""
        return self.day_of_week >= 5


class Predictor(abc.ABC):
    """Forecast per-(slot, area) counts for a future day.

    Subclasses set :attr:`name` (the paper's label) and implement
    :meth:`fit` / :meth:`_predict`.  ``predict`` wraps ``_predict`` with
    the shared fitted-state and shape checks so every predictor enforces
    the same contract.
    """

    name: str = "base"

    def __init__(self) -> None:
        self._fitted_shape: Optional[tuple] = None

    @abc.abstractmethod
    def fit(self, history: DemandHistory) -> None:
        """Estimate model state from history.

        Implementations must call ``super().fit(history)`` (or set
        ``_fitted_shape``) so :meth:`predict` can validate.
        """
        self._fitted_shape = (history.n_slots, history.n_areas)

    @abc.abstractmethod
    def _predict(self, context: DayContext) -> np.ndarray:
        """Produce the raw forecast; shape checking happens in
        :meth:`predict`."""

    def predict(self, context: DayContext) -> np.ndarray:
        """Forecast the target day: non-negative floats, shape
        ``(n_slots, n_areas)``.

        Raises:
            PredictionError: if called before :meth:`fit` or if the
                implementation returns a mis-shaped forecast.
        """
        if self._fitted_shape is None:
            raise PredictionError(f"{self.name}: predict() called before fit()")
        forecast = np.asarray(self._predict(context), dtype=np.float64)
        if forecast.shape != self._fitted_shape:
            raise PredictionError(
                f"{self.name}: forecast shape {forecast.shape} != fitted "
                f"shape {self._fitted_shape}"
            )
        return clip_counts(forecast)


def clip_counts(forecast: np.ndarray) -> np.ndarray:
    """Clamp a forecast to non-negative finite values.

    Predictors built on unconstrained regressors (LR, ARIMA, NN) can emit
    small negative counts; the guide interprets counts as capacities so
    negatives are clamped to zero and non-finite values rejected.

    Raises:
        PredictionError: if the forecast contains NaN or infinity.
    """
    if not np.isfinite(forecast).all():
        raise PredictionError("forecast contains non-finite values")
    return np.maximum(forecast, 0.0)
