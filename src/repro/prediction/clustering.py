"""K-means clustering from scratch (HP-MSI's station-grouping stage).

Lloyd's algorithm with k-means++ seeding, multiple restarts and empty-
cluster reseeding.  Deterministic given the seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import PredictionError

__all__ = ["KMeans"]


class KMeans:
    """K-means on rows of a feature matrix.

    Args:
        n_clusters: number of clusters ``k``.
        n_init: restarts (best inertia wins).
        max_iter: Lloyd iterations per restart.
        seed: RNG seed.
    """

    def __init__(
        self, n_clusters: int, n_init: int = 4, max_iter: int = 100, seed: int = 0
    ) -> None:
        if n_clusters < 1:
            raise PredictionError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_init < 1 or max_iter < 1:
            raise PredictionError("n_init and max_iter must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.seed = seed
        self.centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = float("inf")

    # ------------------------------------------------------------------ #

    def _plusplus_init(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = data.shape[0]
        centers = [data[rng.integers(n)]]
        for _ in range(1, self.n_clusters):
            distances = np.min(
                ((data[:, None, :] - np.asarray(centers)[None, :, :]) ** 2).sum(axis=2),
                axis=1,
            )
            total = distances.sum()
            if total <= 0:
                centers.append(data[rng.integers(n)])
                continue
            probabilities = distances / total
            centers.append(data[rng.choice(n, p=probabilities)])
        return np.asarray(centers)

    def fit(self, data: np.ndarray) -> "KMeans":
        """Cluster ``data`` (n, f); ``k`` is clamped to ``n`` rows."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise PredictionError(f"data must be a non-empty 2-D matrix, got {data.shape}")
        k = min(self.n_clusters, data.shape[0])
        rng = np.random.default_rng(self.seed)
        best: Tuple[float, Optional[np.ndarray], Optional[np.ndarray]] = (
            float("inf"),
            None,
            None,
        )
        for _restart in range(self.n_init):
            centers = self._plusplus_init(data, rng)[:k]
            labels = np.zeros(data.shape[0], dtype=np.int64)
            for _iteration in range(self.max_iter):
                distances = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
                new_labels = distances.argmin(axis=1)
                if (new_labels == labels).all() and _iteration > 0:
                    break
                labels = new_labels
                for cluster in range(k):
                    members = data[labels == cluster]
                    if members.shape[0] == 0:
                        # Reseed an empty cluster at the farthest point.
                        farthest = distances.min(axis=1).argmax()
                        centers[cluster] = data[farthest]
                    else:
                        centers[cluster] = members.mean(axis=0)
            inertia = float(
                ((data - centers[labels]) ** 2).sum()
            )
            if inertia < best[0]:
                best = (inertia, centers.copy(), labels.copy())
        self.inertia_, self.centers_, self.labels_ = best
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Assign rows of ``data`` to the fitted centres."""
        if self.centers_ is None:
            raise PredictionError("KMeans not fitted")
        data = np.asarray(data, dtype=np.float64)
        distances = ((data[:, None, :] - self.centers_[None, :, :]) ** 2).sum(axis=2)
        return distances.argmin(axis=1)
