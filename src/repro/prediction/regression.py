"""LR — lagged linear regression (Section 6.3.1).

"Using a linear regression model with the numbers of tasks and workers
of the 15 most recent corresponding periods."  For every (slot, area)
cell the features are that cell's counts on the 15 most recent days
(same slot — the "corresponding period"), and one global linear model is
fit across all cells by least squares.  Linear pooling captures level
and trend but cannot express the nonlinear weather response, which keeps
LR behind GBRT/NN/HP-MSI in Table 5.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import DayContext, DemandHistory, Predictor

__all__ = ["LaggedLinearRegression"]


class LaggedLinearRegression(Predictor):
    """One global least-squares model over per-cell day lags.

    Args:
        n_lags: number of most recent corresponding periods (paper: 15).
        ridge: small L2 regulariser keeping the normal equations well
            conditioned when history days are collinear.
    """

    name = "LR"

    def __init__(self, n_lags: int = 15, ridge: float = 1e-6) -> None:
        super().__init__()
        if n_lags < 1:
            raise PredictionError(f"n_lags must be >= 1, got {n_lags}")
        if ridge < 0:
            raise PredictionError(f"ridge must be non-negative, got {ridge}")
        self.n_lags = n_lags
        self.ridge = ridge
        self._weights: np.ndarray | None = None
        self._recent: np.ndarray | None = None

    def fit(self, history: DemandHistory) -> None:
        """Fit the pooled lag model.

        Training rows are every day ``d >= usable_lags`` and every
        (slot, area): features = the cell's counts on days
        ``d-1 .. d-usable_lags``, target = the cell's count on day ``d``.
        When the history is shorter than ``n_lags + 1`` days the lag
        window shrinks to what is available.
        """
        super().fit(history)
        counts = np.asarray(history.counts, dtype=np.float64)
        n_days = counts.shape[0]
        usable_lags = min(self.n_lags, max(1, n_days - 1))
        rows = []
        targets = []
        for day in range(usable_lags, n_days):
            lagged = counts[day - usable_lags : day]  # (lags, slots, areas)
            # Most recent lag first, flattened over cells.
            features = lagged[::-1].reshape(usable_lags, -1).T
            rows.append(features)
            targets.append(counts[day].reshape(-1))
        if not rows:
            raise PredictionError("LR: history too short to build any training row")
        design = np.concatenate(rows, axis=0)
        design = np.hstack([design, np.ones((design.shape[0], 1))])
        target = np.concatenate(targets, axis=0)
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ target)
        recent = counts[-usable_lags:]  # most recent `usable_lags` days
        self._recent = recent[::-1].reshape(usable_lags, -1).T

    def _predict(self, context: DayContext) -> np.ndarray:
        if self._weights is None or self._recent is None:
            raise PredictionError("LR: internal state missing")
        design = np.hstack([self._recent, np.ones((self._recent.shape[0], 1))])
        flat = design @ self._weights
        slots, areas = self._fitted_shape
        return flat.reshape(slots, areas)
