"""HP-MSI — hierarchical prediction with multi-similarity inference
(Li et al., GIS 2015; the paper's winning predictor, Section 6.3.1).

The original system forecasts bike-share rents per station cluster:
(1) stations are grouped by behaviour, (2) a city-level model predicts
the total, (3) the total is distributed across clusters by inferring the
proportion from *similar historical contexts* (weather, time, weekday —
the "multi-similarity" part), then within clusters by station shares.

Our from-scratch adaptation to grid areas:

1. **Cluster areas** with k-means on their normalised diurnal profiles
   (weekday and weekend profiles concatenated).
2. **City-level GBRT** forecasts the total count per slot from lags,
   harmonics, weekday and weather features.
3. **Cluster shares** per slot are similarity-weighted averages of
   historical shares, where a history observation's weight combines
   weekend-match, weather-match and slot proximity.
4. **Area shares** within a cluster come from per-slot historical
   averages.

HP-MSI layers the nonlinear city model *and* context-aware allocation,
which is why it wins Table 5 on data with weather-driven demand.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import DayContext, DemandHistory, Predictor
from repro.prediction.clustering import KMeans
from repro.prediction.features import N_WEATHER_STATES
from repro.prediction.gbrt import GradientBoostingRegressor

__all__ = ["HpMsiPredictor"]

_SHARE_SMOOTHING = 1e-3


class HpMsiPredictor(Predictor):
    """Hierarchical cluster-share predictor.

    Args:
        n_clusters: number of area clusters (clamped to the area count).
        n_day_lags: lag features for the city-level model.
        n_estimators / learning_rate / max_depth: city-level GBRT knobs.
        seed: RNG seed for clustering and boosting.
    """

    name = "HP-MSI"

    def __init__(
        self,
        n_clusters: int = 12,
        n_day_lags: int = 7,
        n_estimators: int = 60,
        learning_rate: float = 0.12,
        max_depth: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_clusters < 1 or n_day_lags < 1:
            raise PredictionError("n_clusters and n_day_lags must be >= 1")
        self.n_clusters = n_clusters
        self.n_day_lags = n_day_lags
        self.seed = seed
        self._city_model = GradientBoostingRegressor(
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            seed=seed,
        )
        self._labels: Optional[np.ndarray] = None
        self._history: Optional[DemandHistory] = None
        self._cluster_share_obs: Optional[np.ndarray] = None
        self._area_share: Optional[np.ndarray] = None
        self._k: int = 0

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def fit(self, history: DemandHistory) -> None:
        """Cluster areas, fit the city model, collect share observations."""
        super().fit(history)
        self._history = history
        counts = np.asarray(history.counts, dtype=np.float64)
        n_days, n_slots, n_areas = counts.shape

        # 1. Cluster areas on weekday/weekend diurnal shape.
        weekend_mask = history.day_of_week >= 5
        weekday_profile = counts[~weekend_mask].mean(axis=0) if (~weekend_mask).any() else counts.mean(axis=0)
        weekend_profile = counts[weekend_mask].mean(axis=0) if weekend_mask.any() else counts.mean(axis=0)

        def normalise(profile: np.ndarray) -> np.ndarray:
            totals = profile.sum(axis=0, keepdims=True)
            totals[totals == 0] = 1.0
            return profile / totals

        signature = np.vstack([normalise(weekday_profile), normalise(weekend_profile)]).T
        kmeans = KMeans(n_clusters=self.n_clusters, seed=self.seed)
        kmeans.fit(signature)
        self._labels = kmeans.labels_
        self._k = int(self._labels.max()) + 1

        # 2. City-level GBRT on per-slot totals.
        totals = counts.sum(axis=2)  # (days, slots)
        design, target = self._city_rows(history, totals)
        self._city_model.fit(design, target)

        # 3. Historical cluster shares per (day, slot).
        cluster_counts = np.zeros((n_days, n_slots, self._k))
        for cluster in range(self._k):
            cluster_counts[:, :, cluster] = counts[:, :, self._labels == cluster].sum(axis=2)
        slot_totals = totals.copy()
        slot_totals[slot_totals == 0] = 1.0
        self._cluster_share_obs = cluster_counts / slot_totals[:, :, None]

        # 4. Area shares within clusters, per slot (smoothed).
        area_share = np.zeros((n_slots, n_areas))
        cluster_slot_totals = cluster_counts.sum(axis=0)  # (slots, k)
        area_slot_totals = counts.sum(axis=0)  # (slots, areas)
        for cluster in range(self._k):
            members = np.nonzero(self._labels == cluster)[0]
            denom = cluster_slot_totals[:, cluster] + _SHARE_SMOOTHING * members.size
            for area in members:
                area_share[:, area] = (
                    area_slot_totals[:, area] + _SHARE_SMOOTHING
                ) / denom
        self._area_share = area_share

    def _city_rows(self, history: DemandHistory, totals: np.ndarray):
        """City-level design matrix: one row per (day, slot)."""
        n_days, n_slots = totals.shape
        designs = []
        targets = []
        for day in range(1, n_days):
            designs.append(
                self._city_rows_for_day(
                    totals, day, int(history.day_of_week[day]), history.weather[day]
                )
            )
            targets.append(totals[day])
        return np.concatenate(designs, axis=0), np.concatenate(targets)

    def _city_rows_for_day(
        self, totals: np.ndarray, day: int, day_of_week: int, weather_row: np.ndarray
    ) -> np.ndarray:
        n_slots = totals.shape[1]
        usable = min(self.n_day_lags, day)
        mean_profile = totals[:day].mean(axis=0) if day > 0 else totals.mean(axis=0)
        lags = []
        for lag in range(1, self.n_day_lags + 1):
            lags.append(totals[day - lag] if lag <= usable else mean_profile)
        lag_block = np.stack(lags, axis=1)
        angle = 2.0 * np.pi * np.arange(n_slots) / n_slots
        harmonics = np.stack(
            [np.sin(angle), np.cos(angle), np.sin(2 * angle), np.cos(2 * angle)], axis=1
        )
        weekend = np.full(n_slots, 1.0 if day_of_week >= 5 else 0.0)
        dow = np.full(n_slots, float(day_of_week))
        weather_onehot = np.zeros((n_slots, N_WEATHER_STATES))
        states = np.asarray(weather_row)
        valid = (states >= 0) & (states < N_WEATHER_STATES)
        weather_onehot[np.arange(n_slots)[valid], states[valid]] = 1.0
        return np.hstack(
            [lag_block, harmonics, weekend[:, None], dow[:, None], weather_onehot]
        )

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def _predict(self, context: DayContext) -> np.ndarray:
        if (
            self._history is None
            or self._labels is None
            or self._cluster_share_obs is None
            or self._area_share is None
        ):
            raise PredictionError("HP-MSI: internal state missing")
        history = self._history
        counts_totals = np.asarray(history.counts, dtype=np.float64).sum(axis=2)
        n_slots = history.n_slots

        design = self._city_rows_for_day(
            np.vstack([counts_totals, np.zeros((1, n_slots))]),
            counts_totals.shape[0],
            context.day_of_week,
            np.asarray(context.weather),
        )
        city_forecast = np.maximum(self._city_model.predict(design), 0.0)

        cluster_share = self._infer_cluster_shares(context)
        forecast = np.zeros(self._fitted_shape)
        for cluster in range(self._k):
            members = self._labels == cluster
            per_slot_cluster = city_forecast * cluster_share[:, cluster]
            forecast[:, members] = (
                per_slot_cluster[:, None] * self._area_share[:, members]
            )
        return forecast

    def _infer_cluster_shares(self, context: DayContext) -> np.ndarray:
        """Multi-similarity inference of per-slot cluster proportions.

        Every historical (day, slot) observation votes with weight
        ``w = weekend_match · weather_match · slot_kernel``; the target
        slot's share vector is the weighted mean, renormalised.
        """
        history = self._history
        observations = self._cluster_share_obs  # (days, slots, k)
        n_days, n_slots, k = observations.shape
        target_weekend = context.day_of_week >= 5
        weather = np.asarray(context.weather)

        weekend_hist = (history.day_of_week >= 5).astype(np.float64)
        weekend_weight = np.where(
            weekend_hist == float(target_weekend), 1.0, 0.25
        )  # (days,)

        shares = np.empty((n_slots, k))
        slot_index = np.arange(n_slots)
        for slot in range(n_slots):
            weather_weight = np.where(
                history.weather[:, slot] == weather[slot], 1.0, 0.35
            )  # (days,)
            # Slot kernel: the same slot counts fully; neighbours decay.
            offsets = np.abs(slot_index - slot)
            offsets = np.minimum(offsets, n_slots - offsets)
            slot_kernel = np.exp(-(offsets**2) / 2.0)  # (slots,)
            weights = (
                (weekend_weight * weather_weight)[:, None] * slot_kernel[None, :]
            )  # (days, slots)
            weighted = (observations * weights[:, :, None]).sum(axis=(0, 1))
            total_weight = weights.sum()
            if total_weight <= 0:
                shares[slot] = observations.mean(axis=(0, 1))
            else:
                shares[slot] = weighted / total_weight
        row_sums = shares.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        return shares / row_sums
