"""HA — Historical Average (Section 6.3.1).

"Using the average of the history in the same time slot and the same
grid area in the same day of week."  The simplest baseline: it captures
the weekly/diurnal cycle but is blind to weather and recent trends,
which is why it trails the feature-based models in Table 5.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import DayContext, DemandHistory, Predictor

__all__ = ["HistoricalAverage"]


class HistoricalAverage(Predictor):
    """Per-(slot, area) mean over history days with the same weekday.

    Falls back to the all-days mean for weekdays absent from the history
    (e.g. a training window shorter than one week).
    """

    name = "HA"

    def __init__(self) -> None:
        super().__init__()
        self._by_weekday: dict = {}
        self._overall: np.ndarray | None = None

    def fit(self, history: DemandHistory) -> None:
        """Average the history per weekday."""
        super().fit(history)
        counts = np.asarray(history.counts, dtype=np.float64)
        self._overall = counts.mean(axis=0)
        self._by_weekday = {}
        for weekday in range(7):
            mask = history.day_of_week == weekday
            if mask.any():
                self._by_weekday[weekday] = counts[mask].mean(axis=0)

    def _predict(self, context: DayContext) -> np.ndarray:
        if self._overall is None:
            raise PredictionError("HA: internal state missing")
        return self._by_weekday.get(context.day_of_week, self._overall)
