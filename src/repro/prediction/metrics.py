"""The paper's two prediction-accuracy metrics (Section 6.3.1).

Error Rate::

    ER = (1/t) Σ_i  [ Σ_j |a_ij − ã_ij| ]  /  [ Σ_j a_ij ]

Root Mean Squared Logarithmic Error (the paper writes "RMLSE")::

    RMSLE = (1/t) Σ_i sqrt( (1/g) Σ_j (log(a_ij + 1) − log(ã_ij + 1))² )

Both average per-slot scores over the ``t`` slots; smaller is better.
Slots with zero actual demand would divide by zero in ER — the paper does
not define that case, so we skip empty slots and average over the rest
(documented deviation; it only matters for overnight slots in the taxi
stand-in).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PredictionError

__all__ = ["error_rate", "rmsle", "rmlse"]


def _validate(actual: np.ndarray, predicted: np.ndarray) -> tuple:
    a = np.asarray(actual, dtype=np.float64)
    p = np.asarray(predicted, dtype=np.float64)
    if a.shape != p.shape:
        raise PredictionError(f"shape mismatch: actual {a.shape} vs predicted {p.shape}")
    if a.ndim != 2:
        raise PredictionError(f"metrics expect (slots, areas) matrices, got {a.ndim}-D")
    if (a < 0).any() or (p < 0).any():
        raise PredictionError("counts must be non-negative")
    return a, p


def error_rate(actual: np.ndarray, predicted: np.ndarray) -> float:
    """The paper's ER metric; lower is better.

    Raises:
        PredictionError: on shape mismatch, negative counts, or if every
            slot has zero actual demand.
    """
    a, p = _validate(actual, predicted)
    per_slot_actual = a.sum(axis=1)
    mask = per_slot_actual > 0
    if not mask.any():
        raise PredictionError("all slots empty: ER undefined")
    per_slot_abs = np.abs(a - p).sum(axis=1)
    return float((per_slot_abs[mask] / per_slot_actual[mask]).mean())


def rmsle(actual: np.ndarray, predicted: np.ndarray) -> float:
    """The paper's RMLSE metric; lower is better."""
    a, p = _validate(actual, predicted)
    squared = (np.log1p(a) - np.log1p(p)) ** 2
    return float(np.sqrt(squared.mean(axis=1)).mean())


# The paper spells the metric "RMLSE"; keep that name as an alias.
rmlse = rmsle
