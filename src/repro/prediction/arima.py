"""ARIMA — autoregressive integrated moving average (Section 6.3.1).

A from-scratch seasonal ARIMA for count series, fit independently per
grid area on the flattened (day × slot) series:

1. optional seasonal differencing at the daily lag (removes the diurnal
   cycle — the dominant non-stationarity in taxi demand);
2. optional first differencing (``d``);
3. AR(p) + MA(q) estimation by the Hannan–Rissanen two-stage method —
   a long AR fit by least squares produces residual estimates, then the
   ARMA coefficients are fit by regressing on lagged values *and* lagged
   residuals.  Pure least squares, no iterative likelihood — adequate
   for point forecasts and fully deterministic.

Forecasting rolls the recursion forward ``n_slots`` steps with future
shocks at their mean (zero), then integrates the differencing back.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import DayContext, DemandHistory, Predictor

__all__ = ["ArimaPredictor", "fit_arma", "forecast_arma"]


def fit_arma(series: np.ndarray, p: int, q: int, ridge: float = 1e-6):
    """Hannan–Rissanen ARMA(p, q) fit; returns ``(phi, theta, intercept,
    residuals)``.

    Raises:
        PredictionError: if the series is too short for the requested
            orders.
    """
    series = np.asarray(series, dtype=np.float64)
    n = series.shape[0]
    long_order = min(max(2 * (p + q), p + q + 1, 4), max(1, n // 4))
    if n <= long_order + max(p, q) + 2:
        raise PredictionError(
            f"series of length {n} too short for ARMA({p}, {q}) estimation"
        )

    def lagged_design(values: np.ndarray, order: int, offset: int, rows: int):
        columns = [values[offset - k : offset - k + rows] for k in range(1, order + 1)]
        if not columns:
            return np.empty((rows, 0))
        return np.stack(columns, axis=1)

    # Stage 1: long AR for residual estimates.
    rows1 = n - long_order
    design1 = np.hstack(
        [lagged_design(series, long_order, long_order, rows1), np.ones((rows1, 1))]
    )
    target1 = series[long_order:]
    gram1 = design1.T @ design1 + ridge * np.eye(design1.shape[1])
    coef1 = np.linalg.solve(gram1, design1.T @ target1)
    residuals = np.zeros(n)
    residuals[long_order:] = target1 - design1 @ coef1

    # Stage 2: regress on p value lags and q residual lags.
    start = long_order + max(p, q)
    rows2 = n - start
    blocks = [
        lagged_design(series, p, start, rows2),
        lagged_design(residuals, q, start, rows2),
        np.ones((rows2, 1)),
    ]
    design2 = np.hstack([b for b in blocks if b.shape[1] > 0])
    target2 = series[start:]
    gram2 = design2.T @ design2 + ridge * np.eye(design2.shape[1])
    coef2 = np.linalg.solve(gram2, design2.T @ target2)
    phi = coef2[:p]
    theta = coef2[p : p + q]
    intercept = coef2[-1]
    fitted_resid = np.zeros(n)
    fitted_resid[start:] = target2 - design2 @ coef2
    return phi, theta, float(intercept), fitted_resid


def forecast_arma(
    series: np.ndarray,
    residuals: np.ndarray,
    phi: np.ndarray,
    theta: np.ndarray,
    intercept: float,
    steps: int,
) -> np.ndarray:
    """Roll the ARMA recursion ``steps`` ahead with zero future shocks."""
    history: List[float] = list(np.asarray(series, dtype=np.float64))
    shocks: List[float] = list(np.asarray(residuals, dtype=np.float64))
    out = np.empty(steps)
    for step in range(steps):
        value = intercept
        for k, coefficient in enumerate(phi, start=1):
            value += coefficient * history[-k]
        for k, coefficient in enumerate(theta, start=1):
            value += coefficient * shocks[-k] if k <= len(shocks) else 0.0
        history.append(value)
        shocks.append(0.0)
        out[step] = value
    return out


class ArimaPredictor(Predictor):
    """Per-area seasonal ARIMA(p, d, q) with daily seasonal differencing.

    Args:
        p / d / q: the non-seasonal orders.
        seasonal: apply one round of differencing at the daily lag before
            the ARMA stage (recommended for diurnal series).
    """

    name = "ARIMA"

    def __init__(self, p: int = 3, d: int = 0, q: int = 1, seasonal: bool = True) -> None:
        super().__init__()
        if p < 0 or d < 0 or q < 0 or p + q == 0:
            raise PredictionError(f"invalid ARIMA orders ({p}, {d}, {q})")
        self.p = p
        self.d = d
        self.q = q
        self.seasonal = seasonal
        self._forecast: Optional[np.ndarray] = None

    def fit(self, history: DemandHistory) -> None:
        """Fit one model per area and precompute the next-day forecast.

        The forecast is context-free (pure time series), so computing it
        at fit time keeps ``predict`` cheap; areas whose series defeat the
        estimator (all-zero or too short) fall back to their historical
        slot means.
        """
        super().fit(history)
        n_slots = history.n_slots
        n_areas = history.n_areas
        season = n_slots if self.seasonal else 0
        series_all = history.flattened_series().astype(np.float64)
        fallback = np.asarray(history.counts, dtype=np.float64).mean(axis=0)
        forecast = np.empty((n_slots, n_areas))
        for area in range(n_areas):
            series = series_all[:, area]
            try:
                forecast[:, area] = self._forecast_area(series, season, n_slots)
            except (PredictionError, np.linalg.LinAlgError):
                forecast[:, area] = fallback[:, area]
        self._forecast = np.maximum(forecast, 0.0)

    def _forecast_area(self, series: np.ndarray, season: int, steps: int) -> np.ndarray:
        work = series.copy()
        seasonal_base = None
        if season and work.shape[0] > season:
            seasonal_base = work.copy()
            work = work[season:] - work[:-season]
        diff_heads = []
        for _ in range(self.d):
            if work.shape[0] < 2:
                raise PredictionError("series exhausted by differencing")
            diff_heads.append(work[-1])
            work = np.diff(work)
        if np.allclose(work, work[0] if work.size else 0.0):
            # Constant (often all-zero) series: forecast the constant.
            flat = np.full(steps, work[-1] if work.size else 0.0)
        else:
            phi, theta, intercept, residuals = fit_arma(work, self.p, self.q)
            flat = forecast_arma(work, residuals, phi, theta, intercept, steps)
        # Undo first differencing.
        for head in reversed(diff_heads):
            flat = head + np.cumsum(flat)
        # Undo seasonal differencing: x[t] = diff[t] + x[t - season].
        if seasonal_base is not None:
            last_season = seasonal_base[-season:]
            flat = flat + last_season[: len(flat)]
        return flat

    def _predict(self, context: DayContext) -> np.ndarray:
        if self._forecast is None:
            raise PredictionError("ARIMA: internal state missing")
        return self._forecast
