"""PAQ — predictive aggregation queries (Section 6.3.1).

"Using aggregation queries with moving object trajectories in the 6
latest hours."  PAQ estimates each area's *current level* from the most
recent six hours of observations and projects it through the historical
slot-of-day profile.  Because prediction is offline (the guide is built
before the day starts), "the 6 latest hours" are the last six hours of
the training history — the adaptation is documented in DESIGN.md.

Concretely, with per-area recent level ``L_j`` (mean count over the last
``6h`` of history) and historical temporal profile ``p_i`` (share of a
day's demand falling in slot ``i``)::

    forecast[i, j] = L_j · n_slots · p_i · dow_factor

The day-of-week factor rescales for weekday/weekend volume differences.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import DayContext, DemandHistory, Predictor

__all__ = ["PredictiveAggregation"]


class PredictiveAggregation(Predictor):
    """Recency level × historical diurnal profile.

    Args:
        window_hours: the aggregation window (paper: 6 hours).
    """

    name = "PAQ"

    def __init__(self, window_hours: float = 6.0) -> None:
        super().__init__()
        if window_hours <= 0:
            raise PredictionError(f"window_hours must be positive, got {window_hours}")
        self.window_hours = window_hours
        self._level: np.ndarray | None = None
        self._profile: np.ndarray | None = None
        self._dow_factor: dict = {}

    def fit(self, history: DemandHistory) -> None:
        """Estimate recent levels, the diurnal profile and dow factors."""
        super().fit(history)
        counts = np.asarray(history.counts, dtype=np.float64)
        n_days, n_slots, _ = counts.shape

        window_slots = max(1, int(round(self.window_hours / 24.0 * n_slots)))
        series = counts.reshape(n_days * n_slots, -1)
        recent = series[-window_slots:]
        self._level = recent.mean(axis=0)  # per-area mean count per slot

        per_slot = counts.mean(axis=(0, 2))  # mean count per slot over days/areas
        total = per_slot.sum()
        if total <= 0:
            # Degenerate all-zero history: fall back to a flat profile.
            self._profile = np.full(n_slots, 1.0 / n_slots)
        else:
            self._profile = per_slot / total

        overall_daily = counts.sum(axis=(1, 2)).mean()
        self._dow_factor = {}
        for weekday in range(7):
            mask = history.day_of_week == weekday
            if mask.any() and overall_daily > 0:
                self._dow_factor[weekday] = (
                    counts[mask].sum(axis=(1, 2)).mean() / overall_daily
                )

    def _predict(self, context: DayContext) -> np.ndarray:
        if self._level is None or self._profile is None:
            raise PredictionError("PAQ: internal state missing")
        n_slots = self._profile.shape[0]
        factor = self._dow_factor.get(context.day_of_week, 1.0)
        # level is a per-slot rate; profile redistributes a day of it.
        daily_per_area = self._level * n_slots
        return factor * np.outer(self._profile, daily_per_area)
