"""Offline prediction substrate (Section 6.3.1).

The two-step framework needs the number of workers/tasks per (slot, area).
The paper compares seven representative predictors on real data and picks
the best (HP-MSI) to drive the guide.  All seven are implemented here
from scratch on numpy:

* :class:`~repro.prediction.historical.HistoricalAverage` (HA)
* :class:`~repro.prediction.arima.ArimaPredictor` (ARIMA)
* :class:`~repro.prediction.gbrt.GradientBoostedTrees` (GBRT)
* :class:`~repro.prediction.paq.PredictiveAggregation` (PAQ)
* :class:`~repro.prediction.regression.LaggedLinearRegression` (LR)
* :class:`~repro.prediction.neural.NeuralNetworkPredictor` (NN)
* :class:`~repro.prediction.hpmsi.HpMsiPredictor` (HP-MSI)

plus the shared containers (:mod:`~repro.prediction.base`), feature
engineering (:mod:`~repro.prediction.features`), k-means clustering
(:mod:`~repro.prediction.clustering`), decision trees
(:mod:`~repro.prediction.trees`) and the paper's two evaluation metrics
(:mod:`~repro.prediction.metrics`).
"""

from repro.prediction.arima import ArimaPredictor
from repro.prediction.base import DayContext, DemandHistory, Predictor
from repro.prediction.clustering import KMeans
from repro.prediction.gbrt import GradientBoostedTrees
from repro.prediction.historical import HistoricalAverage
from repro.prediction.hpmsi import HpMsiPredictor
from repro.prediction.metrics import error_rate, rmsle
from repro.prediction.neural import NeuralNetworkPredictor
from repro.prediction.paq import PredictiveAggregation
from repro.prediction.regression import LaggedLinearRegression
from repro.prediction.trees import DecisionTreeRegressor

__all__ = [
    "DemandHistory",
    "DayContext",
    "Predictor",
    "HistoricalAverage",
    "ArimaPredictor",
    "LaggedLinearRegression",
    "PredictiveAggregation",
    "DecisionTreeRegressor",
    "GradientBoostedTrees",
    "NeuralNetworkPredictor",
    "HpMsiPredictor",
    "KMeans",
    "error_rate",
    "rmsle",
    "ALL_PREDICTORS",
    "make_predictor",
]

ALL_PREDICTORS = ("HA", "ARIMA", "GBRT", "PAQ", "LR", "NN", "HP-MSI")


def make_predictor(name: str, seed: int = 0):
    """Factory mapping the paper's predictor names to instances.

    Args:
        name: one of :data:`ALL_PREDICTORS` (case-insensitive).
        seed: RNG seed for the stochastic predictors (GBRT row sampling,
            NN initialisation, HP-MSI clustering).

    Raises:
        ValueError: for an unknown name.
    """
    key = name.upper()
    if key == "HA":
        return HistoricalAverage()
    if key == "ARIMA":
        return ArimaPredictor()
    if key == "GBRT":
        return GradientBoostedTrees(seed=seed)
    if key == "PAQ":
        return PredictiveAggregation()
    if key == "LR":
        return LaggedLinearRegression()
    if key == "NN":
        return NeuralNetworkPredictor(seed=seed)
    if key in ("HP-MSI", "HPMSI", "HP_MSI"):
        return HpMsiPredictor(seed=seed)
    raise ValueError(f"unknown predictor {name!r}; expected one of {ALL_PREDICTORS}")
