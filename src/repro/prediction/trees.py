"""CART regression trees from scratch (the GBRT base learner).

A histogram-style regressor: at each node the best split per feature is
found by sorting once and evaluating sum-of-squared-error reduction at up
to ``max_candidates`` boundaries with vectorised prefix sums.  Trees are
stored as flat arrays and predict iteratively, so there is no recursion
limit concern and prediction is a tight loop.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import PredictionError

__all__ = ["DecisionTreeRegressor"]

_LEAF = -1


class DecisionTreeRegressor:
    """A least-squares regression tree.

    Args:
        max_depth: maximum depth (root = 0).
        min_samples_split: minimum rows to attempt a split.
        min_samples_leaf: minimum rows on each side of a split.
        max_candidates: maximum split positions evaluated per feature
            (evenly spaced through the sorted order).
        rng: optional numpy Generator used only to subsample candidate
            features (when ``max_features`` is set).
        max_features: number of features examined per split (None = all).
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_split: int = 8,
        min_samples_leaf: int = 4,
        max_candidates: int = 32,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_depth < 0:
            raise PredictionError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise PredictionError("invalid minimum sample parameters")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_candidates = max_candidates
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self._feature: List[int] = []
        self._threshold: List[float] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._value: List[float] = []

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def fit(self, features: np.ndarray, target: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on ``features`` (n, f) against ``target`` (n,)."""
        features = np.asarray(features, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if features.ndim != 2 or target.ndim != 1 or features.shape[0] != target.shape[0]:
            raise PredictionError(
                f"bad shapes: features {features.shape}, target {target.shape}"
            )
        if features.shape[0] == 0:
            raise PredictionError("cannot fit a tree on zero rows")
        self._feature = []
        self._threshold = []
        self._left = []
        self._right = []
        self._value = []
        root_index = self._new_node(float(target.mean()))
        stack = [(root_index, np.arange(features.shape[0]), 0)]
        while stack:
            node, rows, depth = stack.pop()
            split = self._best_split(features, target, rows, depth)
            if split is None:
                continue
            feature, threshold, left_rows, right_rows = split
            left_node = self._new_node(float(target[left_rows].mean()))
            right_node = self._new_node(float(target[right_rows].mean()))
            self._feature[node] = feature
            self._threshold[node] = threshold
            self._left[node] = left_node
            self._right[node] = right_node
            stack.append((left_node, left_rows, depth + 1))
            stack.append((right_node, right_rows, depth + 1))
        return self

    def _new_node(self, value: float) -> int:
        self._feature.append(_LEAF)
        self._threshold.append(0.0)
        self._left.append(_LEAF)
        self._right.append(_LEAF)
        self._value.append(value)
        return len(self._value) - 1

    def _best_split(self, features, target, rows, depth):
        n = rows.shape[0]
        if depth >= self.max_depth or n < self.min_samples_split:
            return None
        y = target[rows]
        total_sum = y.sum()
        total_sq = (y**2).sum()
        base_sse = total_sq - total_sum**2 / n
        if base_sse <= 1e-12:
            return None

        n_features = features.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            feature_ids = self.rng.choice(n_features, self.max_features, replace=False)
        else:
            feature_ids = range(n_features)

        best = None
        best_gain = 1e-12
        for feature in feature_ids:
            column = features[rows, feature]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            sorted_y = y[order]
            prefix_sum = np.cumsum(sorted_y)
            prefix_sq = np.cumsum(sorted_y**2)
            # Valid split positions: between distinct neighbour values,
            # honouring the leaf minimum on both sides.
            lo = self.min_samples_leaf
            hi = n - self.min_samples_leaf
            if lo >= hi:
                continue
            positions = np.nonzero(sorted_vals[lo:hi] < sorted_vals[lo + 1 : hi + 1])[0] + lo
            if positions.size == 0:
                continue
            if positions.size > self.max_candidates:
                pick = np.linspace(0, positions.size - 1, self.max_candidates).astype(int)
                positions = positions[pick]
            left_n = positions + 1
            left_sum = prefix_sum[positions]
            left_sq = prefix_sq[positions]
            right_n = n - left_n
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            sse = (
                left_sq
                - left_sum**2 / left_n
                + right_sq
                - right_sum**2 / right_n
            )
            gain = base_sse - sse
            arg = int(np.argmax(gain))
            if gain[arg] > best_gain:
                best_gain = float(gain[arg])
                position = positions[arg]
                threshold = 0.5 * (sorted_vals[position] + sorted_vals[position + 1])
                mask = column <= threshold
                best = (int(feature), float(threshold), rows[mask], rows[~mask])
        return best

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the fitted tree (0 before fitting)."""
        return len(self._value)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, f)."""
        if not self._value:
            raise PredictionError("tree not fitted")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise PredictionError(f"features must be 2-D, got shape {features.shape}")
        n = features.shape[0]
        out = np.empty(n)
        # Vectorised level-order descent: all rows walk down together.
        node_of_row = np.zeros(n, dtype=np.int64)
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        value = np.asarray(self._value)
        active = np.arange(n)
        while active.size:
            nodes = node_of_row[active]
            is_leaf = feature[nodes] == _LEAF
            done = active[is_leaf]
            out[done] = value[nodes[is_leaf]]
            moving = active[~is_leaf]
            if moving.size == 0:
                break
            nodes = node_of_row[moving]
            go_left = (
                features[moving, feature[nodes]] <= threshold[nodes]
            )
            node_of_row[moving] = np.where(go_left, left[nodes], right[nodes])
            active = moving
        return out
