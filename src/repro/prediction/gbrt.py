"""GBRT — gradient boosted regression trees (Section 6.3.1).

Friedman-style boosting with squared loss: each stage fits a shallow
regression tree to the current residuals and the ensemble advances by a
shrunk step.  Rows can be subsampled per stage (stochastic gradient
boosting), which both regularises and keeps from-scratch training
tractable on the full feature matrix of a city.

The per-cell feature map (day lags, slot-of-day encodings, weekday and
weather indicators — :mod:`repro.prediction.features`) is what lets GBRT
express the nonlinear weather/rush-hour interactions that the linear
baselines miss (Table 5's discussion).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import DayContext, DemandHistory, Predictor
from repro.prediction.features import CellFeatureizer
from repro.prediction.trees import DecisionTreeRegressor

__all__ = ["GradientBoostedTrees", "GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Plain gradient boosting for squared loss on numeric features.

    Args:
        n_estimators: boosting stages.
        learning_rate: shrinkage per stage.
        max_depth: base-tree depth.
        subsample: per-stage row fraction (1.0 = deterministic boosting).
        min_samples_leaf: base-tree leaf minimum.
        max_rows: hard cap on training rows (uniformly subsampled once)
            so paper-scale feature matrices stay tractable from scratch.
        seed: RNG seed for all sampling.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        learning_rate: float = 0.15,
        max_depth: int = 3,
        subsample: float = 0.7,
        min_samples_leaf: int = 8,
        max_rows: int = 60_000,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise PredictionError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0 < learning_rate <= 1:
            raise PredictionError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0 < subsample <= 1:
            raise PredictionError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.max_rows = max_rows
        self.seed = seed
        self._trees: List[DecisionTreeRegressor] = []
        self._base: float = 0.0

    def fit(self, features: np.ndarray, target: np.ndarray) -> "GradientBoostingRegressor":
        """Fit the ensemble; rows beyond ``max_rows`` are subsampled."""
        features = np.asarray(features, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        if features.shape[0] > self.max_rows:
            keep = rng.choice(features.shape[0], self.max_rows, replace=False)
            features = features[keep]
            target = target[keep]
        self._base = float(target.mean())
        current = np.full(target.shape[0], self._base)
        self._trees = []
        n = target.shape[0]
        for _stage in range(self.n_estimators):
            residual = target - current
            if self.subsample < 1.0:
                rows = rng.choice(n, max(1, int(self.subsample * n)), replace=False)
            else:
                rows = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=rng,
            )
            tree.fit(features[rows], residual[rows])
            self._trees.append(tree)
            current = current + self.learning_rate * tree.predict(features)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Ensemble prediction."""
        if not self._trees:
            raise PredictionError("GBRT not fitted")
        features = np.asarray(features, dtype=np.float64)
        out = np.full(features.shape[0], self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(features)
        return out


class GradientBoostedTrees(Predictor):
    """The paper's GBRT predictor: boosting over per-cell features."""

    name = "GBRT"

    def __init__(
        self,
        n_estimators: int = 40,
        learning_rate: float = 0.15,
        max_depth: int = 3,
        max_rows: int = 60_000,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self._features = CellFeatureizer()
        self._model = GradientBoostingRegressor(
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            max_rows=max_rows,
            seed=seed,
        )

    def fit(self, history: DemandHistory) -> None:
        """Build the per-cell training matrix and fit the ensemble."""
        super().fit(history)
        self._features.fit(history)
        design, target = self._features.training_matrix(history)
        self._model.fit(design, target)

    def _predict(self, context: DayContext) -> np.ndarray:
        design = self._features.target_matrix(context)
        flat = self._model.predict(design)
        slots, areas = self._fitted_shape
        return flat.reshape(slots, areas)
