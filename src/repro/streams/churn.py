"""Churn generation: sampled availability windows over any stream.

DATA-WA-style dynamic worker availability and the hyperlocal serving
frameworks treat churn — workers logging off, objects relocating — as
first-class stream events.  This module samples churn for an existing
arrival stream so experiments can sweep a *churn rate* the same way they
sweep radius or population scale:

* with probability ``departure_rate`` an entity's availability window is
  truncated: it departs at a uniform instant inside ``(start,
  deadline)`` instead of surviving to its deadline;
* with probability ``move_rate`` an entity relocates once, at a uniform
  instant inside its (possibly truncated) window, to a uniform location
  in the grid bounds.

Sampling is deterministic in ``(stream, config)`` — the RNG is derived
from the config seed and consumed in stream order — and a zero-rate
config yields no events, so churn-free pipelines are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.model.events import Arrival, Departure, Move, StreamEvent, merge_churn
from repro.seeding import derive_random
from repro.spatial.geometry import BoundingBox, Point

__all__ = ["ChurnConfig", "sample_churn", "with_churn"]


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of one churn setting.

    Attributes:
        departure_rate: probability an entity departs before its
            deadline (its availability window is truncated).
        move_rate: probability an entity relocates once mid-window.
        seed: RNG seed; sampling is deterministic in it.
    """

    departure_rate: float = 0.0
    move_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("departure_rate", "move_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )

    @property
    def any_churn(self) -> bool:
        """Whether this config can produce any churn events."""
        return self.departure_rate > 0.0 or self.move_rate > 0.0


def sample_churn(
    stream: Sequence[Arrival],
    bounds: BoundingBox,
    config: ChurnConfig,
) -> List[StreamEvent]:
    """Sample departures and moves for every arrival in ``stream``.

    For each entity the departure is sampled first (truncating the
    availability window), then the move inside the surviving window —
    so a moved-and-departing entity always moves before it departs.
    Move destinations are uniform in ``bounds``.

    Returns the churn events alone (time-unsorted);
    :func:`repro.model.events.merge_churn` or
    :func:`with_churn` interleaves them into the stream.
    """
    if not config.any_churn:
        return []
    rng = derive_random(config.seed, "churn")
    random = rng.random
    uniform = rng.uniform
    events: List[StreamEvent] = []
    for arrival in stream:
        entity = arrival.entity
        end = entity.deadline
        departs = random() < config.departure_rate
        if departs:
            end = entity.start + random() * entity.duration
        if random() < config.move_rate:
            move_time = entity.start + random() * (end - entity.start)
            location = Point(
                uniform(bounds.x_min, bounds.x_max),
                uniform(bounds.y_min, bounds.y_max),
            )
            events.append(
                Move(
                    time=move_time,
                    seq=0,
                    kind=arrival.kind,
                    object_id=entity.id,
                    location=location,
                )
            )
        if departs:
            events.append(
                Departure(
                    time=end, seq=0, kind=arrival.kind, object_id=entity.id
                )
            )
    return events


def with_churn(
    stream: Sequence[Arrival],
    bounds: BoundingBox,
    config: ChurnConfig,
) -> List[StreamEvent]:
    """An event stream: ``stream`` with sampled churn merged in.

    A zero-rate config returns the input arrivals unchanged (same
    objects, same order) — the churn-free parity guarantee.
    """
    churn = sample_churn(stream, bounds, config)
    if not churn:
        return list(stream)
    return merge_churn(stream, churn)
