"""Prediction oracles for synthetic experiments.

The i.i.d. model (Section 3.2) assumes the platform knows the arrival
distributions; for synthetic data the natural offline prediction is the
exact expectation ``E[a_ij]`` / ``E[b_ij]`` from the generator.  Real
predictors are imperfect, so :func:`perturbed_oracle` injects controlled
relative error — the knob behind the prediction-noise ablation that
explains the paper's Figure 5(c–d) observation (SimpleGreedy can beat
POLAR when the guide is wrong).

Expected counts are real-valued; the guide needs integers.  We round with
the largest-remainder method so the grand total is preserved exactly —
naive per-cell rounding systematically loses mass on sparse grids, which
would bias every experiment that varies the number of grids or slots.
"""

from __future__ import annotations

import random
from typing import Tuple

import numpy as np

from repro.errors import PredictionError

__all__ = ["rounded_counts", "exact_oracle", "perturbed_oracle"]


def rounded_counts(expected: np.ndarray) -> np.ndarray:
    """Largest-remainder rounding of a non-negative tensor to integers.

    The result has the same shape and its sum equals ``round(sum)``.

    Raises:
        PredictionError: if any entry is negative or not finite.
    """
    values = np.asarray(expected, dtype=np.float64)
    if not np.isfinite(values).all():
        raise PredictionError("expected counts contain non-finite values")
    if (values < 0).any():
        raise PredictionError("expected counts contain negative values")
    floors = np.floor(values)
    remainders = values - floors
    target_total = int(round(float(values.sum())))
    deficit = target_total - int(floors.sum())
    result = floors.astype(np.int64)
    if deficit > 0:
        flat = remainders.reshape(-1)
        # Indices of the largest remainders receive the leftover units.
        top = np.argsort(flat)[::-1][:deficit]
        np.add.at(result.reshape(-1), top, 1)
    return result


def exact_oracle(generator) -> Tuple[np.ndarray, np.ndarray]:
    """Integer ``(a_ij, b_ij)`` from a generator's exact expectations.

    Works with any object exposing ``expected_worker_counts()`` and
    ``expected_task_counts()`` (duck-typed so the taxi city can reuse it).
    """
    return (
        rounded_counts(generator.expected_worker_counts()),
        rounded_counts(generator.expected_task_counts()),
    )


def perturbed_oracle(
    expected: np.ndarray,
    relative_error: float,
    rng: random.Random,
) -> np.ndarray:
    """Expected counts corrupted by multiplicative Gaussian noise.

    Each cell is scaled by ``max(0, 1 + relative_error · N(0, 1))`` and
    the result rounded with :func:`rounded_counts`.  ``relative_error=0``
    reproduces the exact oracle; around 0.3–0.5 mimics the error rates the
    paper measures for real predictors (Table 5 ER ≈ 0.22–0.28).

    Raises:
        PredictionError: for a negative ``relative_error``.
    """
    if relative_error < 0:
        raise PredictionError(f"relative_error must be non-negative, got {relative_error}")
    values = np.asarray(expected, dtype=np.float64)
    noisy = np.empty_like(values)
    flat_in = values.reshape(-1)
    flat_out = noisy.reshape(-1)
    for index in range(flat_in.size):
        factor = 1.0 + relative_error * rng.gauss(0.0, 1.0)
        flat_out[index] = flat_in[index] * max(0.0, factor)
    return rounded_counts(noisy)
