"""The Table 4 synthetic workload generator.

Section 6.1: workers and tasks are placed on a ``g = x × y`` grid over a
horizon of ``t`` slots.  Temporal positions follow a normal distribution
whose mean/std are table fractions *times t*; spatial positions follow a
bivariate normal whose mean is the fraction *times (x, y)* and whose
covariance is diagonal (no x–y correlation), the fraction scaling the
side lengths.  Defaults (bold in Table 4): 20 000 workers and tasks,
50×50 grid, 48 slots, ``Dr = 2`` slots, all four distribution fractions
0.5 for tasks; the Figure 6 discussion fixes the *worker* fractions at
0.25 and sweeps the task fractions.

Each generator also knows its exact distribution, so it can hand the
two-step framework the true expected counts per (slot, area) — the
natural "perfect predictor" for synthetic experiments under the i.i.d.
model, which assumes exactly these distributions as prior (Section 3.2).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.model.entities import Task, Worker
from repro.model.instance import Instance
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel
from repro.streams.distributions import TruncatedNormal

__all__ = ["SyntheticConfig", "SyntheticGenerator"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic setting (one Table 4 column choice).

    All distribution parameters are the table's *fractions*; the generator
    scales them by ``n_slots`` (temporal) or the grid side (spatial).

    Attributes:
        n_workers: ``|W|``.
        n_tasks: ``|R|``.
        grid_side: cells per side (``g = side × side``).
        n_slots: number of time slots ``t`` over a 24 h horizon.
        task_duration_slots: ``Dr`` in slot units (Table 4: 1.0–3.0).
        worker_duration_slots: ``Dw`` in slot units.  The paper leaves the
            synthetic ``Dw`` implicit but needs workers to outlive several
            slots for guidance to matter (Example 1 uses worker deadlines
            15× the task deadlines); default 4 slots.
        cells_per_slot: worker speed (Section 6.1: 5 cells per slot).
        worker_temporal_mu / worker_temporal_sigma: worker fractions
            (Figure 6 fixes these at 0.25).
        task_temporal_mu / task_temporal_sigma: task fractions (bold 0.5).
        worker_spatial_mean / worker_spatial_cov: worker fractions (0.25).
        task_spatial_mean / task_spatial_cov: task fractions (bold 0.5).
        seed: RNG seed; every derived stream is deterministic in it.
    """

    n_workers: int = 20_000
    n_tasks: int = 20_000
    grid_side: int = 50
    n_slots: int = 48
    task_duration_slots: float = 2.0
    worker_duration_slots: float = 4.0
    cells_per_slot: float = 5.0
    worker_temporal_mu: float = 0.25
    worker_temporal_sigma: float = 0.25
    task_temporal_mu: float = 0.5
    task_temporal_sigma: float = 0.5
    worker_spatial_mean: float = 0.25
    worker_spatial_cov: float = 0.25
    task_spatial_mean: float = 0.5
    task_spatial_cov: float = 0.5
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_workers < 0 or self.n_tasks < 0:
            raise ConfigurationError("population sizes must be non-negative")
        if self.grid_side <= 0 or self.n_slots <= 0:
            raise ConfigurationError("grid_side and n_slots must be positive")
        if self.task_duration_slots <= 0 or self.worker_duration_slots <= 0:
            raise ConfigurationError("durations must be positive")
        if self.cells_per_slot <= 0:
            raise ConfigurationError("cells_per_slot must be positive")
        for name in (
            "worker_temporal_sigma",
            "task_temporal_sigma",
            "worker_spatial_cov",
            "task_spatial_cov",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def scaled(self, **overrides: object) -> "SyntheticConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **overrides)


class SyntheticGenerator:
    """Draws i.i.d. workers and tasks from a :class:`SyntheticConfig`.

    The generator owns the grid, timeline and travel model implied by the
    config; :meth:`generate` materialises an :class:`Instance` and
    :meth:`expected_worker_counts` / :meth:`expected_task_counts` expose
    the exact per-type expectations for the prediction oracle.
    """

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config
        self.grid = Grid.square(config.grid_side)
        self.timeline = Timeline.day(config.n_slots)
        self.travel = TravelModel.cells_per_slot(
            config.cells_per_slot, self.timeline.slot_minutes
        )
        horizon = self.timeline.duration
        side = float(config.grid_side)
        self._worker_time = TruncatedNormal(
            mu=config.worker_temporal_mu * horizon,
            sigma=config.worker_temporal_sigma * horizon,
            low=0.0,
            high=horizon,
        )
        self._task_time = TruncatedNormal(
            mu=config.task_temporal_mu * horizon,
            sigma=config.task_temporal_sigma * horizon,
            low=0.0,
            high=horizon,
        )
        # Section 6.1: "the covariance is the value in the table times the
        # matrix diag(x, y)" — the table fraction scales the *variance*,
        # so the standard deviation is sqrt(fraction × side).  (The
        # temporal σ, by contrast, is stated directly as fraction × t.)
        worker_sigma = math.sqrt(config.worker_spatial_cov * side)
        task_sigma = math.sqrt(config.task_spatial_cov * side)
        self._worker_x = TruncatedNormal(
            config.worker_spatial_mean * side, worker_sigma, 0.0, side
        )
        self._worker_y = TruncatedNormal(
            config.worker_spatial_mean * side, worker_sigma, 0.0, side
        )
        self._task_x = TruncatedNormal(
            config.task_spatial_mean * side, task_sigma, 0.0, side
        )
        self._task_y = TruncatedNormal(
            config.task_spatial_mean * side, task_sigma, 0.0, side
        )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def generate(self, seed: Optional[int] = None) -> Instance:
        """Materialise one instance (workers, tasks, arrival times).

        Args:
            seed: overrides the config seed, letting callers draw several
                independent instances from one distribution (the i.i.d.
                competitive-ratio experiments need this).
        """
        rng = random.Random(self.config.seed if seed is None else seed)
        slot_minutes = self.timeline.slot_minutes
        worker_duration = self.config.worker_duration_slots * slot_minutes
        task_duration = self.config.task_duration_slots * slot_minutes

        workers: List[Worker] = []
        for ident in range(self.config.n_workers):
            start = self._worker_time.sample(rng)
            location = Point(self._worker_x.sample(rng), self._worker_y.sample(rng))
            workers.append(
                Worker(id=ident, location=location, start=start, duration=worker_duration)
            )
        tasks: List[Task] = []
        for ident in range(self.config.n_tasks):
            start = self._task_time.sample(rng)
            location = Point(self._task_x.sample(rng), self._task_y.sample(rng))
            tasks.append(
                Task(id=ident, location=location, start=start, duration=task_duration)
            )
        return Instance(
            workers=workers,
            tasks=tasks,
            grid=self.grid,
            timeline=self.timeline,
            travel=self.travel,
            name=f"synthetic(seed={rng})",
        )

    # ------------------------------------------------------------------ #
    # Exact expectations (the synthetic oracle)
    # ------------------------------------------------------------------ #

    def _expected_counts(
        self,
        n: int,
        time_dist: TruncatedNormal,
        x_dist: TruncatedNormal,
        y_dist: TruncatedNormal,
    ) -> np.ndarray:
        slot_edges = [self.timeline.slot_start(i) for i in range(self.timeline.n_slots)]
        slot_edges.append(self.timeline.horizon_end)
        time_probs = np.asarray(time_dist.bin_probabilities(slot_edges))

        side = self.config.grid_side
        col_edges = [float(c) for c in range(side + 1)]
        x_probs = np.asarray(x_dist.bin_probabilities(col_edges))
        y_probs = np.asarray(y_dist.bin_probabilities(col_edges))
        # Row-major flat area index: area = row * nx + col, so the outer
        # product must be (row, col) then flattened.
        spatial = np.outer(y_probs, x_probs).reshape(-1)
        return n * np.outer(time_probs, spatial)

    def expected_worker_counts(self) -> np.ndarray:
        """Exact ``E[a_ij]``, shape ``(n_slots, n_areas)`` (float)."""
        return self._expected_counts(
            self.config.n_workers, self._worker_time, self._worker_x, self._worker_y
        )

    def expected_task_counts(self) -> np.ndarray:
        """Exact ``E[b_ij]``, shape ``(n_slots, n_areas)`` (float)."""
        return self._expected_counts(
            self.config.n_tasks, self._task_time, self._task_x, self._task_y
        )
