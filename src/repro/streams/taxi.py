"""Synthetic taxi-calling city — the Beijing/Hangzhou stand-in.

The paper evaluates on proprietary Didi taxi-calling logs (Jul–Dec 2016,
Beijing and Hangzhou; Table 3: ~50k workers and ~48–54k tasks per day,
a 20×30 grid of 0.01°×0.01° cells).  We cannot ship that data, so this
module builds a city *simulator* that reproduces the statistical
structure the paper's pipeline exploits:

* recurring spatial structure — a mixture of hotspots (business district,
  transport hubs, residential belts) with weekday/weekend re-weighting;
* recurring temporal structure — bimodal rush-hour profiles, with supply
  (taxis) slightly smoother and earlier than demand;
* exogenous shocks — a per-hour Markov weather process that *nonlinearly*
  boosts demand and dampens supply (this is what separates feature-based
  predictors like GBRT/NN/HP-MSI from HA/LR/ARIMA in Table 5);
* sampling noise — per-(slot, area) Poisson counts around the intensity.

The simulator hands the prediction layer an ordinary
:class:`repro.prediction.base.DemandHistory` and materialises evaluation
days as :class:`repro.model.instance.Instance` objects with jittered
within-cell locations and within-slot times.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.model.entities import Task, Worker
from repro.model.instance import Instance
from repro.prediction.base import DayContext, DemandHistory
from repro.seeding import derive_numpy_rng, derive_random
from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel

__all__ = ["Hotspot", "CityConfig", "TaxiCity", "beijing_config", "hangzhou_config"]

WEATHER_CLEAR, WEATHER_OVERCAST, WEATHER_RAIN = 0, 1, 2
_WEATHER_STATES = (WEATHER_CLEAR, WEATHER_OVERCAST, WEATHER_RAIN)

# Hourly weather transition matrix (rows: from-state).  Sticky states with
# occasional rain spells, roughly temperate-climate-like.
_WEATHER_TRANSITIONS = (
    (0.90, 0.08, 0.02),
    (0.15, 0.75, 0.10),
    (0.10, 0.25, 0.65),
)

# Nonlinear demand/supply response: rain sharply raises taxi demand and
# mildly suppresses active supply.
_TASK_WEATHER_FACTOR = (1.00, 1.08, 1.45)
_WORKER_WEATHER_FACTOR = (1.00, 1.00, 0.88)


@dataclass(frozen=True)
class Hotspot:
    """One spatial demand centre: a 2-D Gaussian bump in cell units.

    Attributes:
        col / row: centre in cell coordinates.
        weight: relative mass of this hotspot.
        spread: isotropic standard deviation in cells.
        weekend_weight: relative mass on Saturdays/Sundays (lets business
            districts fade and leisure areas grow on weekends).
    """

    col: float
    row: float
    weight: float
    spread: float
    weekend_weight: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight < 0 or self.spread <= 0:
            raise ConfigurationError("hotspot needs weight >= 0 and spread > 0")

    def weight_for(self, weekend: bool) -> float:
        """The mixture weight on a weekday or weekend day."""
        if weekend and self.weekend_weight is not None:
            return self.weekend_weight
        return self.weight


@dataclass(frozen=True)
class CityConfig:
    """Full parameterisation of one synthetic city.

    Defaults follow Table 3: a 20×30 grid (``g = 600``), ``t = 12`` slots
    (two-hour slots — Section 6.1's 15-minute remark is inconsistent with
    Table 3's ``t = 12``; we follow the table, which also matches the
    reported prediction error magnitudes), worker deadline ``Dw = 2``
    hours = 1 slot, task deadline ``Dr`` swept over 0.5–1.5 slots, speed
    5 cells per slot.

    Attributes:
        name: city label.
        nx / ny: grid dimensions (areas = nx*ny).
        n_slots: slots per day.
        daily_tasks / daily_workers: expected arrivals per weekday.
        task_hotspots / worker_hotspots: spatial mixtures.
        uniform_floor: fraction of mass spread uniformly (keeps every
            area reachable and avoids zero-probability cells).
        morning_peak_hour / evening_peak_hour: centres of the two demand
            peaks, in hours.
        peak_width_hours: standard deviation of each peak.
        base_rate: flat demand floor relative to the peaks.
        worker_lead_hours: how much earlier the supply profile runs
            (drivers come online before the rush).
        weekend_task_factor / weekend_worker_factor: weekend volume
            multipliers.
        task_duration_slots: default ``Dr`` in slots.
        worker_duration_slots: ``Dw`` in slots.
        cells_per_slot: speed.
        seed: base RNG seed for weather and sampling.
    """

    name: str
    nx: int = 20
    ny: int = 30
    n_slots: int = 12
    daily_tasks: int = 54_000
    daily_workers: int = 50_000
    task_hotspots: Tuple[Hotspot, ...] = ()
    worker_hotspots: Tuple[Hotspot, ...] = ()
    uniform_floor: float = 0.08
    morning_peak_hour: float = 8.25
    evening_peak_hour: float = 18.5
    peak_width_hours: float = 1.6
    base_rate: float = 0.25
    worker_lead_hours: float = 0.5
    weekend_task_factor: float = 0.85
    weekend_worker_factor: float = 0.92
    task_duration_slots: float = 1.0
    worker_duration_slots: float = 1.0
    cells_per_slot: float = 5.0
    seed: int = 2016

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0 or self.n_slots <= 0:
            raise ConfigurationError("grid dimensions and n_slots must be positive")
        if self.daily_tasks < 0 or self.daily_workers < 0:
            raise ConfigurationError("daily volumes must be non-negative")
        if not 0.0 <= self.uniform_floor < 1.0:
            raise ConfigurationError("uniform_floor must lie in [0, 1)")
        if not self.task_hotspots or not self.worker_hotspots:
            raise ConfigurationError("cities need at least one hotspot per side")

    def scaled(self, factor: float) -> "CityConfig":
        """A volume-scaled copy (experiments at laptop scale).

        Scales daily volumes by ``factor`` leaving everything else fixed.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            daily_tasks=max(1, int(round(self.daily_tasks * factor))),
            daily_workers=max(1, int(round(self.daily_workers * factor))),
        )


def beijing_config() -> CityConfig:
    """The "Beijing" stand-in: larger, CBD-dominated, strong rush hours."""
    return CityConfig(
        name="beijing",
        daily_tasks=54_129,
        daily_workers=50_637,
        task_hotspots=(
            Hotspot(col=11.0, row=17.0, weight=0.40, spread=3.2, weekend_weight=0.22),
            Hotspot(col=5.5, row=23.5, weight=0.18, spread=2.4),
            Hotspot(col=15.0, row=8.0, weight=0.22, spread=2.8),
            Hotspot(col=8.0, row=10.5, weight=0.20, spread=4.0, weekend_weight=0.36),
        ),
        worker_hotspots=(
            Hotspot(col=10.5, row=16.0, weight=0.35, spread=4.0, weekend_weight=0.25),
            Hotspot(col=6.0, row=22.0, weight=0.20, spread=3.0),
            Hotspot(col=14.0, row=9.0, weight=0.25, spread=3.5),
            Hotspot(col=9.0, row=11.0, weight=0.20, spread=5.0, weekend_weight=0.30),
        ),
        seed=1016,
    )


def hangzhou_config() -> CityConfig:
    """The "Hangzhou" stand-in: smaller volumes, lakeside leisure pull."""
    return CityConfig(
        name="hangzhou",
        daily_tasks=48_507,
        daily_workers=49_324,
        task_hotspots=(
            Hotspot(col=9.0, row=14.0, weight=0.38, spread=2.8, weekend_weight=0.24),
            Hotspot(col=4.5, row=18.0, weight=0.24, spread=2.2, weekend_weight=0.40),
            Hotspot(col=14.5, row=20.0, weight=0.20, spread=3.0),
            Hotspot(col=11.0, row=6.5, weight=0.18, spread=3.6),
        ),
        worker_hotspots=(
            Hotspot(col=9.5, row=13.0, weight=0.36, spread=3.4, weekend_weight=0.28),
            Hotspot(col=5.0, row=17.0, weight=0.22, spread=2.8, weekend_weight=0.32),
            Hotspot(col=13.5, row=19.0, weight=0.22, spread=3.4),
            Hotspot(col=10.0, row=7.5, weight=0.20, spread=4.2),
        ),
        seed=571,
    )


class TaxiCity:
    """A generative city model: intensities, weather, history and days.

    Day indexing is absolute: days ``0 .. n_history-1`` form the training
    history and evaluation days continue the same weather process, so a
    predictor never peeks ahead.
    """

    def __init__(self, config: CityConfig) -> None:
        self.config = config
        bounds = BoundingBox(0.0, 0.0, float(config.nx), float(config.ny))
        self.grid = Grid(bounds, config.nx, config.ny)
        self.timeline = Timeline.day(config.n_slots)
        self.travel = TravelModel.cells_per_slot(
            config.cells_per_slot, self.timeline.slot_minutes
        )
        self._task_spatial_weekday = self._spatial_profile(config.task_hotspots, False)
        self._task_spatial_weekend = self._spatial_profile(config.task_hotspots, True)
        self._worker_spatial_weekday = self._spatial_profile(config.worker_hotspots, False)
        self._worker_spatial_weekend = self._spatial_profile(config.worker_hotspots, True)
        self._task_temporal = self._temporal_profile(lead_hours=0.0)
        self._worker_temporal = self._temporal_profile(lead_hours=config.worker_lead_hours)

    # ------------------------------------------------------------------ #
    # Profiles
    # ------------------------------------------------------------------ #

    def _spatial_profile(self, hotspots: Sequence[Hotspot], weekend: bool) -> np.ndarray:
        """Normalised per-area weights for one side and day type."""
        nx, ny = self.config.nx, self.config.ny
        cols = np.arange(nx) + 0.5
        rows = np.arange(ny) + 0.5
        col_grid, row_grid = np.meshgrid(cols, rows)  # shape (ny, nx)
        density = np.zeros((ny, nx), dtype=np.float64)
        for spot in hotspots:
            weight = spot.weight_for(weekend)
            if weight <= 0:
                continue
            squared = (col_grid - spot.col) ** 2 + (row_grid - spot.row) ** 2
            density += weight * np.exp(-squared / (2.0 * spot.spread**2))
        total = density.sum()
        if total <= 0:
            raise ConfigurationError("hotspot mixture has zero mass")
        density /= total
        floor = self.config.uniform_floor
        flat = density.reshape(-1)  # row-major: area = row * nx + col
        return (1.0 - floor) * flat + floor / flat.size

    def _temporal_profile(self, lead_hours: float) -> np.ndarray:
        """Normalised per-slot weights: base + two rush-hour bumps."""
        cfg = self.config
        hours = (np.arange(cfg.n_slots) + 0.5) * (24.0 / cfg.n_slots)
        morning = np.exp(
            -((hours - (cfg.morning_peak_hour - lead_hours)) ** 2)
            / (2.0 * cfg.peak_width_hours**2)
        )
        evening = np.exp(
            -((hours - (cfg.evening_peak_hour - lead_hours)) ** 2)
            / (2.0 * cfg.peak_width_hours**2)
        )
        profile = cfg.base_rate + morning + 0.9 * evening
        return profile / profile.sum()

    # ------------------------------------------------------------------ #
    # Weather
    # ------------------------------------------------------------------ #

    def weather_for_days(self, n_days: int, start_day: int = 0) -> np.ndarray:
        """Per-(day, slot) weather states for absolute days
        ``start_day .. start_day + n_days - 1``.

        The process is a per-hour Markov chain seeded deterministically
        from the config seed and the absolute day index, so history and
        evaluation days share one consistent weather trajectory.
        """
        if n_days <= 0:
            raise ConfigurationError(f"n_days must be positive, got {n_days}")
        slots_per_hour = max(1, self.config.n_slots // 24)
        states = np.empty((n_days, self.config.n_slots), dtype=np.int64)
        for offset in range(n_days):
            day = start_day + offset
            rng = derive_random(self.config.seed, "weather", day)
            state = rng.choices(_WEATHER_STATES, weights=(0.6, 0.3, 0.1))[0]
            for slot in range(self.config.n_slots):
                if slot % slots_per_hour == 0 and slot > 0:
                    state = rng.choices(
                        _WEATHER_STATES, weights=_WEATHER_TRANSITIONS[state]
                    )[0]
                states[offset, slot] = state
        return states

    @staticmethod
    def day_of_week(day: int) -> int:
        """Absolute day index → weekday 0–6 (day 0 is a Monday)."""
        return day % 7

    # ------------------------------------------------------------------ #
    # Intensities
    # ------------------------------------------------------------------ #

    def _intensity(
        self,
        daily_volume: float,
        temporal: np.ndarray,
        spatial: np.ndarray,
        weather: np.ndarray,
        weather_factors: Sequence[float],
        weekend_factor: float,
        weekend: bool,
    ) -> np.ndarray:
        factors = np.asarray([weather_factors[s] for s in weather])
        volume = daily_volume * (weekend_factor if weekend else 1.0)
        per_slot = volume * temporal * factors
        return np.outer(per_slot, spatial)

    def task_intensity(self, day: int, weather: Optional[np.ndarray] = None) -> np.ndarray:
        """Expected tasks per (slot, area) for absolute day ``day``."""
        if weather is None:
            weather = self.weather_for_days(1, start_day=day)[0]
        weekend = self.day_of_week(day) >= 5
        spatial = self._task_spatial_weekend if weekend else self._task_spatial_weekday
        return self._intensity(
            self.config.daily_tasks,
            self._task_temporal,
            spatial,
            weather,
            _TASK_WEATHER_FACTOR,
            self.config.weekend_task_factor,
            weekend,
        )

    def worker_intensity(self, day: int, weather: Optional[np.ndarray] = None) -> np.ndarray:
        """Expected workers per (slot, area) for absolute day ``day``."""
        if weather is None:
            weather = self.weather_for_days(1, start_day=day)[0]
        weekend = self.day_of_week(day) >= 5
        spatial = self._worker_spatial_weekend if weekend else self._worker_spatial_weekday
        return self._intensity(
            self.config.daily_workers,
            self._worker_temporal,
            spatial,
            weather,
            _WORKER_WEATHER_FACTOR,
            self.config.weekend_worker_factor,
            weekend,
        )

    # ------------------------------------------------------------------ #
    # History generation (predictor training data)
    # ------------------------------------------------------------------ #

    def generate_history(self, n_days: int, start_day: int = 0) -> Tuple[DemandHistory, DemandHistory]:
        """Sampled histories ``(tasks, workers)`` over ``n_days`` days.

        Counts are Poisson draws around the intensity; the weather and
        day-of-week features are attached for the feature-based
        predictors.
        """
        weather = self.weather_for_days(n_days, start_day=start_day)
        dows = np.asarray([self.day_of_week(start_day + d) for d in range(n_days)])
        task_counts = np.empty((n_days, self.config.n_slots, self.grid.n_areas), dtype=np.int64)
        worker_counts = np.empty_like(task_counts)
        for offset in range(n_days):
            day = start_day + offset
            rng = derive_numpy_rng(self.config.seed, "counts", day)
            task_counts[offset] = rng.poisson(self.task_intensity(day, weather[offset]))
            worker_counts[offset] = rng.poisson(self.worker_intensity(day, weather[offset]))
        tasks = DemandHistory(counts=task_counts, day_of_week=dows, weather=weather)
        workers = DemandHistory(counts=worker_counts, day_of_week=dows, weather=weather)
        return tasks, workers

    def day_context(self, day: int) -> DayContext:
        """The exogenous :class:`DayContext` for absolute day ``day``."""
        return DayContext(
            day_of_week=self.day_of_week(day),
            weather=self.weather_for_days(1, start_day=day)[0],
            day_index=day,
        )

    # ------------------------------------------------------------------ #
    # Evaluation-day instances
    # ------------------------------------------------------------------ #

    def generate_day(
        self,
        day: int,
        task_duration_slots: Optional[float] = None,
    ) -> Instance:
        """Materialise absolute day ``day`` as an online problem instance.

        Counts are Poisson-sampled from the day's intensity (same RNG
        stream as :meth:`generate_history`, so an evaluation day is
        exchangeable with a history day); each object gets a uniform
        within-cell location and within-slot arrival time.

        Args:
            day: absolute day index.
            task_duration_slots: override ``Dr`` (the real-data sweeps
                vary it; Table 3 uses 0.5–1.5 slots).
        """
        weather = self.weather_for_days(1, start_day=day)[0]
        rng_counts = derive_numpy_rng(self.config.seed, "counts", day)
        task_counts = rng_counts.poisson(self.task_intensity(day, weather))
        worker_counts = rng_counts.poisson(self.worker_intensity(day, weather))
        rng = derive_random(self.config.seed, "events", day)
        slot_minutes = self.timeline.slot_minutes
        dr_slots = (
            self.config.task_duration_slots
            if task_duration_slots is None
            else task_duration_slots
        )
        if dr_slots <= 0:
            raise ConfigurationError(f"task_duration_slots must be positive, got {dr_slots}")
        task_duration = dr_slots * slot_minutes
        worker_duration = self.config.worker_duration_slots * slot_minutes

        workers: List[Worker] = []
        tasks: List[Task] = []
        for slot in range(self.config.n_slots):
            slot_start = self.timeline.slot_start(slot)
            for area in range(self.grid.n_areas):
                box = self.grid.cell_box(area)
                for _ in range(int(worker_counts[slot, area])):
                    workers.append(
                        Worker(
                            id=len(workers),
                            location=Point(
                                rng.uniform(box.x_min, box.x_max),
                                rng.uniform(box.y_min, box.y_max),
                            ),
                            start=slot_start + rng.uniform(0.0, slot_minutes),
                            duration=worker_duration,
                        )
                    )
                for _ in range(int(task_counts[slot, area])):
                    tasks.append(
                        Task(
                            id=len(tasks),
                            location=Point(
                                rng.uniform(box.x_min, box.x_max),
                                rng.uniform(box.y_min, box.y_max),
                            ),
                            start=slot_start + rng.uniform(0.0, slot_minutes),
                            duration=task_duration,
                        )
                    )
        return Instance(
            workers=workers,
            tasks=tasks,
            grid=self.grid,
            timeline=self.timeline,
            travel=self.travel,
            name=f"{self.config.name}-day{day}",
        )
