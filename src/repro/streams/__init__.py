"""Workload generation: synthetic sweeps and the taxi-platform stand-in.

* :mod:`repro.streams.distributions` — truncated normal sampling and cell
  probabilities (the paper generates temporal and spatial positions from
  normal distributions, Section 6.1).
* :mod:`repro.streams.synthetic` — the Table 4 parameter space generator
  used by Figures 4 and 6 and the scalability test.
* :mod:`repro.streams.taxi` — a synthetic taxi-calling city (hotspots,
  rush hours, weekday/weekend, weather) standing in for the proprietary
  Beijing/Hangzhou datasets; produces both training history for the
  predictors and evaluation-day instances.
* :mod:`repro.streams.oracle` — prediction oracles: exact expected counts
  and perturbed variants for the prediction-noise ablation.
* :mod:`repro.streams.churn` — sampled availability windows: departures
  and moves merged into any arrival stream at a configurable churn rate.
"""

from repro.streams.churn import ChurnConfig, sample_churn, with_churn
from repro.streams.distributions import TruncatedNormal
from repro.streams.oracle import exact_oracle, perturbed_oracle, rounded_counts
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator
from repro.streams.taxi import CityConfig, TaxiCity, beijing_config, hangzhou_config

__all__ = [
    "TruncatedNormal",
    "ChurnConfig",
    "sample_churn",
    "with_churn",
    "SyntheticConfig",
    "SyntheticGenerator",
    "CityConfig",
    "TaxiCity",
    "beijing_config",
    "hangzhou_config",
    "exact_oracle",
    "perturbed_oracle",
    "rounded_counts",
]
