"""Truncated normal distributions for workload generation.

Section 6.1 simulates temporal and spatial positions with normal
distributions whose mean/std are fractions of the horizon or the grid
side (Table 4).  Positions must land inside the horizon/grid, so we use
the normal *truncated* to an interval: sampling by rejection (with a
clamping fallback for pathological parameters) and interval probabilities
through the error function — the latter give the exact expected
``a_ij`` / ``b_ij`` used by the oracle predictor.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from repro.errors import ConfigurationError

__all__ = ["TruncatedNormal"]

_SQRT2 = math.sqrt(2.0)
_MAX_REJECTION_TRIES = 1000


def _normal_cdf(x: float, mu: float, sigma: float) -> float:
    return 0.5 * (1.0 + math.erf((x - mu) / (sigma * _SQRT2)))


class TruncatedNormal:
    """A normal ``N(mu, sigma²)`` truncated to ``[low, high]``.

    Args:
        mu: mean of the parent normal.
        sigma: standard deviation of the parent normal (positive).
        low / high: truncation interval, ``low < high``.

    Raises:
        ConfigurationError: for non-positive sigma, an empty interval, or
            an interval carrying (numerically) zero probability mass.
    """

    __slots__ = ("mu", "sigma", "low", "high", "_mass_low", "_mass")

    def __init__(self, mu: float, sigma: float, low: float, high: float) -> None:
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        if not low < high:
            raise ConfigurationError(f"empty truncation interval [{low}, {high}]")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.low = float(low)
        self.high = float(high)
        self._mass_low = _normal_cdf(low, mu, sigma)
        self._mass = _normal_cdf(high, mu, sigma) - self._mass_low
        if self._mass <= 0.0:
            raise ConfigurationError(
                f"truncation interval [{low}, {high}] has zero mass under "
                f"N({mu}, {sigma}^2)"
            )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def sample(self, rng: random.Random) -> float:
        """Draw one value by rejection; clamp as a last resort.

        Rejection is exact and fast whenever the interval holds
        non-negligible mass (all Table 4 settings).  If an adversarial
        parameterisation starves the sampler, the draw is clamped into the
        interval rather than looping forever — a documented approximation.
        """
        for _ in range(_MAX_REJECTION_TRIES):
            value = rng.gauss(self.mu, self.sigma)
            if self.low <= value <= self.high:
                return value
        value = rng.gauss(self.mu, self.sigma)
        return min(max(value, self.low), self.high)

    def sample_many(self, n: int, rng: random.Random) -> List[float]:
        """Draw ``n`` values."""
        if n < 0:
            raise ConfigurationError(f"cannot draw {n} samples")
        return [self.sample(rng) for _ in range(n)]

    # ------------------------------------------------------------------ #
    # Probabilities
    # ------------------------------------------------------------------ #

    def interval_probability(self, a: float, b: float) -> float:
        """Probability mass of ``[a, b] ∩ [low, high]`` after truncation."""
        a = max(a, self.low)
        b = min(b, self.high)
        if a >= b:
            return 0.0
        mass = _normal_cdf(b, self.mu, self.sigma) - _normal_cdf(a, self.mu, self.sigma)
        return mass / self._mass

    def bin_probabilities(self, edges: Sequence[float]) -> List[float]:
        """Probability per bin for monotone ``edges`` (len = bins + 1).

        The bins jointly cover the truncation interval when ``edges``
        spans ``[low, high]``; probabilities then sum to 1 (a property
        test asserts this).
        """
        if len(edges) < 2:
            raise ConfigurationError("need at least two bin edges")
        for left, right in zip(edges, edges[1:]):
            if not left < right:
                raise ConfigurationError(f"bin edges not increasing at [{left}, {right}]")
        return [
            self.interval_probability(left, right)
            for left, right in zip(edges, edges[1:])
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TruncatedNormal(mu={self.mu:g}, sigma={self.sigma:g}, "
            f"[{self.low:g}, {self.high:g}])"
        )
