"""The assignment container ``M`` and its invariants.

FTOA maximises ``MaxSum(M) = Σ I(w, r)`` over one-to-one worker–task
pairs (Definition 4).  :class:`Matching` enforces the one-to-one and
*invariable* constraints at insertion time: once ``(w, r)`` enters the
matching it cannot be revoked, and neither endpoint can be reused.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import MatchingError
from repro.model.entities import Task, Worker
from repro.model.feasibility import deadline_feasible
from repro.spatial.travel import TravelModel

__all__ = ["Matching"]


class Matching:
    """A growing one-to-one assignment between worker ids and task ids.

    The container stores ids, not entities, because the online algorithms
    identify objects by id; resolve entities through the owning
    :class:`repro.model.instance.Instance` when needed.
    """

    __slots__ = ("_worker_to_task", "_task_to_worker", "_order")

    def __init__(self) -> None:
        self._worker_to_task: Dict[int, int] = {}
        self._task_to_worker: Dict[int, int] = {}
        self._order: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def assign(self, worker_id: int, task_id: int) -> None:
        """Record the pair ``(worker_id, task_id)``.

        Raises:
            MatchingError: if either endpoint is already matched (the
                invariable constraint makes reassignment illegal).
        """
        if worker_id in self._worker_to_task:
            raise MatchingError(
                f"worker {worker_id} already matched to task "
                f"{self._worker_to_task[worker_id]}"
            )
        if task_id in self._task_to_worker:
            raise MatchingError(
                f"task {task_id} already matched to worker "
                f"{self._task_to_worker[task_id]}"
            )
        self._worker_to_task[worker_id] = task_id
        self._task_to_worker[task_id] = worker_id
        self._order.append((worker_id, task_id))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """``MaxSum(M)`` — the number of assigned pairs."""
        return len(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        """Iterate pairs in assignment order."""
        return iter(self._order)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        worker_id, task_id = pair
        return self._worker_to_task.get(worker_id) == task_id

    def task_of(self, worker_id: int) -> Optional[int]:
        """The task matched to ``worker_id``, or None."""
        return self._worker_to_task.get(worker_id)

    def worker_of(self, task_id: int) -> Optional[int]:
        """The worker matched to ``task_id``, or None."""
        return self._task_to_worker.get(task_id)

    def worker_is_matched(self, worker_id: int) -> bool:
        """Whether the worker already holds an assignment."""
        return worker_id in self._worker_to_task

    def task_is_matched(self, task_id: int) -> bool:
        """Whether the task already holds an assignment."""
        return task_id in self._task_to_worker

    def pairs(self) -> List[Tuple[int, int]]:
        """A copy of the pairs in assignment order."""
        return list(self._order)

    # ------------------------------------------------------------------ #
    # Audit
    # ------------------------------------------------------------------ #

    def validate_feasibility(
        self,
        workers: Dict[int, Worker],
        tasks: Dict[int, Task],
        travel: TravelModel,
    ) -> List[Tuple[int, int]]:
        """Return the pairs violating Definition 4's deadline constraints.

        An empty list means the matching is feasible under the flexible
        (pre-dispatch) semantics.  Unknown ids raise — a matching that
        references entities outside the instance is a bug, not a
        feasibility question.

        Raises:
            MatchingError: if a pair references an unknown worker or task.
        """
        violations: List[Tuple[int, int]] = []
        for worker_id, task_id in self._order:
            if worker_id not in workers:
                raise MatchingError(f"matching references unknown worker {worker_id}")
            if task_id not in tasks:
                raise MatchingError(f"matching references unknown task {task_id}")
            if not deadline_feasible(workers[worker_id], tasks[task_id], travel):
                violations.append((worker_id, task_id))
        return violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Matching(size={self.size})"
