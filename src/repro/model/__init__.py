"""Problem model for FTOA (Definition 4).

* :mod:`repro.model.entities` — :class:`Worker` and :class:`Task` records.
* :mod:`repro.model.feasibility` — the deadline-constraint predicates, in
  both the paper's pre-dispatch form and the wait-in-place form used by
  the greedy baselines.
* :mod:`repro.model.matching` — the one-to-one assignment container with
  its validity audit.
* :mod:`repro.model.instance` — a full problem instance (workers + tasks +
  grid + timeline + travel model) and its event stream.
"""

from repro.model.entities import Task, Worker
from repro.model.events import (
    ARRIVAL,
    DEPARTURE,
    MOVE,
    TASK,
    WORKER,
    Arrival,
    Departure,
    Move,
    StreamEvent,
    build_stream,
    merge_churn,
    resample_order,
)
from repro.model.feasibility import (
    deadline_feasible,
    latest_departure,
    wait_in_place_feasible,
)
from repro.model.instance import Instance
from repro.model.matching import Matching

__all__ = [
    "Worker",
    "Task",
    "Arrival",
    "Departure",
    "Move",
    "StreamEvent",
    "WORKER",
    "TASK",
    "ARRIVAL",
    "DEPARTURE",
    "MOVE",
    "build_stream",
    "merge_churn",
    "resample_order",
    "deadline_feasible",
    "wait_in_place_feasible",
    "latest_departure",
    "Matching",
    "Instance",
]
