"""Arrival events and the online arrival order.

In FTOA "workers and tasks can dynamically appear on the platform one by
one at any time" (Definition 4).  The online algorithms therefore consume
a single totally-ordered stream of :class:`Arrival` events.  Ties in
arrival time are broken by a sequence number so every instance has one
canonical order; generators may also shuffle tie groups to produce the
alternative orders quantified over by the competitive ratio
(Definition 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Union

from repro.errors import SimulationError
from repro.model.entities import Task, Worker

__all__ = ["Arrival", "WORKER", "TASK", "build_stream", "resample_order"]

WORKER = "worker"
TASK = "task"


@dataclass(frozen=True, order=False)
class Arrival:
    """One platform arrival: a worker or a task appearing at ``time``.

    Attributes:
        time: arrival instant (``Sw`` or ``Sr``).
        seq: tie-breaking sequence number, unique within a stream.
        kind: :data:`WORKER` or :data:`TASK`.
        entity: the arriving :class:`Worker` or :class:`Task`.
    """

    time: float
    seq: int
    kind: str
    entity: Union[Worker, Task]

    def __post_init__(self) -> None:
        if self.kind not in (WORKER, TASK):
            raise SimulationError(f"unknown arrival kind {self.kind!r}")
        if self.time != self.entity.start:
            raise SimulationError(
                f"arrival time {self.time} disagrees with entity start {self.entity.start}"
            )

    @property
    def is_worker(self) -> bool:
        """Whether this arrival is a worker."""
        return self.kind == WORKER

    @property
    def is_task(self) -> bool:
        """Whether this arrival is a task."""
        return self.kind == TASK


def build_stream(workers: Iterable[Worker], tasks: Iterable[Task]) -> List[Arrival]:
    """Merge workers and tasks into one time-ordered arrival stream.

    Ties are broken deterministically: by time, then by kind (workers
    before tasks, matching the toy example's Table 1 where ``w1`` precedes
    ``r1`` at 9:00), then by entity id.
    """
    events: List[Arrival] = []
    ordered = sorted(
        [(w.start, 0, w.id, WORKER, w) for w in workers]
        + [(t.start, 1, t.id, TASK, t) for t in tasks]
    )
    for seq, (time, _kind_rank, _ident, kind, entity) in enumerate(ordered):
        events.append(Arrival(time=time, seq=seq, kind=kind, entity=entity))
    return events


def resample_order(stream: Sequence[Arrival], rng: random.Random) -> List[Arrival]:
    """A new stream with arrival *times kept* but same-time ties reshuffled.

    The i.i.d. competitive ratio (Definition 5) minimises over "all
    possible input orders"; resampling tie groups (and, for generators
    that quantise times to slots, whole slots) explores that order space
    without changing any entity's spatiotemporal attributes.
    """
    groups: List[List[Arrival]] = []
    current: List[Arrival] = []
    for event in sorted(stream, key=lambda e: (e.time, e.seq)):
        if current and current[-1].time != event.time:
            groups.append(current)
            current = []
        current.append(event)
    if current:
        groups.append(current)

    reordered: List[Arrival] = []
    seq = 0
    for group in groups:
        rng.shuffle(group)
        for event in group:
            reordered.append(Arrival(time=event.time, seq=seq, kind=event.kind, entity=event.entity))
            seq += 1
    return reordered
