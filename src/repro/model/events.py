"""Stream events: arrivals plus the churn events (departures, moves).

In FTOA "workers and tasks can dynamically appear on the platform one by
one at any time" (Definition 4).  The online algorithms therefore consume
a single totally-ordered stream of events.  The canonical paper model is
arrival-only; real platforms also see *churn* — workers logging off and
objects relocating mid-stream — so the stream element is the
:data:`StreamEvent` union:

* :class:`Arrival` — a worker or task appearing (the paper's event);
* :class:`Departure` — a previously-arrived object leaving the platform
  early (a worker logs off, a requester cancels);
* :class:`Move` — a previously-arrived object relocating while keeping
  its deadline (``start`` and ``duration`` are unchanged; only the
  location differs).

Churn events carry the *object identity* (side + id), not the entity
record: the platform already holds the entity from its arrival, and the
wire protocol (:mod:`repro.serving.replay`) only ships ``{kind, side,
id, time}``.  Ties in event time are broken by a sequence number so
every instance has one canonical order; within a tie group arrivals
precede moves precede departures (an object that arrives, moves, and
departs in the same instant does so in that order).  A churn-free
stream built here is bit-identical to the historical arrival-only
stream — the parity gate every matcher is tested against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable, List, Sequence, Union

from repro.errors import SimulationError
from repro.model.entities import Task, Worker
from repro.spatial.geometry import Point

__all__ = [
    "Arrival",
    "Departure",
    "Move",
    "StreamEvent",
    "WORKER",
    "TASK",
    "ARRIVAL",
    "DEPARTURE",
    "MOVE",
    "build_stream",
    "merge_churn",
    "resample_order",
]

WORKER = "worker"
TASK = "task"

# Event-kind tags (the JSONL codec's ``kind`` values for churn records;
# arrivals keep their historical per-side kinds ``worker`` / ``task``).
ARRIVAL = "arrival"
DEPARTURE = "departure"
MOVE = "move"


def _validate_side(kind: str) -> None:
    if kind not in (WORKER, TASK):
        raise SimulationError(f"unknown arrival kind {kind!r}")


@dataclass(frozen=True, order=False)
class Arrival:
    """One platform arrival: a worker or a task appearing at ``time``.

    Attributes:
        time: arrival instant (``Sw`` or ``Sr``).
        seq: tie-breaking sequence number, unique within a stream.
        kind: :data:`WORKER` or :data:`TASK`.
        entity: the arriving :class:`Worker` or :class:`Task`.
    """

    time: float
    seq: int
    kind: str
    entity: Union[Worker, Task]

    event_kind = ARRIVAL

    def __post_init__(self) -> None:
        _validate_side(self.kind)
        if self.time != self.entity.start:
            raise SimulationError(
                f"arrival time {self.time} disagrees with entity start {self.entity.start}"
            )

    @property
    def is_worker(self) -> bool:
        """Whether this arrival is a worker."""
        return self.kind == WORKER

    @property
    def is_task(self) -> bool:
        """Whether this arrival is a task."""
        return self.kind == TASK

    @property
    def object_id(self) -> int:
        """The arriving object's id (uniform accessor across events)."""
        return self.entity.id


@dataclass(frozen=True, order=False)
class Departure:
    """A previously-arrived object leaving the platform at ``time``.

    Departures reference the object by (side, id); the platform resolves
    the entity from its own state.  Matchers *reject* a departure for an
    object they never saw arrive (depart-before-arrive) and treat a
    departure of an already-matched object as a no-op (the pair stands —
    the worker leaves to serve it).

    Attributes:
        time: departure instant.
        seq: tie-breaking sequence number, unique within a stream.
        kind: :data:`WORKER` or :data:`TASK` — the departing side.
        object_id: the departing object's id.
    """

    time: float
    seq: int
    kind: str
    object_id: int

    event_kind = DEPARTURE

    def __post_init__(self) -> None:
        _validate_side(self.kind)

    @property
    def is_worker(self) -> bool:
        """Whether the departing object is a worker."""
        return self.kind == WORKER

    @property
    def is_task(self) -> bool:
        """Whether the departing object is a task."""
        return self.kind == TASK


@dataclass(frozen=True, order=False)
class Move:
    """A previously-arrived object relocating to ``location`` at ``time``.

    The object's deadline is preserved: ``start`` and ``duration`` are
    unchanged, only the location differs, so a moved task is still due by
    its original ``Sr + Dr`` and a moved worker still leaves at
    ``Sw + Dw``.  Matchers reindex the object under its new location (and
    may match it immediately if the move makes a pairing feasible);
    moves of unknown objects are rejected and moves of matched objects
    are no-ops.

    Attributes:
        time: relocation instant.
        seq: tie-breaking sequence number, unique within a stream.
        kind: :data:`WORKER` or :data:`TASK` — the moving side.
        object_id: the moving object's id.
        location: the new location.
    """

    time: float
    seq: int
    kind: str
    object_id: int
    location: Point

    event_kind = MOVE

    def __post_init__(self) -> None:
        _validate_side(self.kind)

    @property
    def is_worker(self) -> bool:
        """Whether the moving object is a worker."""
        return self.kind == WORKER

    @property
    def is_task(self) -> bool:
        """Whether the moving object is a task."""
        return self.kind == TASK


StreamEvent = Union[Arrival, Departure, Move]

# Within a tie group (same event time) the stream orders arrivals, then
# moves, then departures: an object may arrive, relocate, and leave in a
# single instant, in that order.
_CHURN_RANK = {MOVE: 0, DEPARTURE: 1}


def merge_churn(
    stream: Sequence[Arrival], churn: Iterable[StreamEvent]
) -> List[StreamEvent]:
    """Interleave churn events into an arrival stream, reassigning seq.

    The arrival stream's own (time-ordered) order is preserved exactly;
    churn events slot in by time, *after* any arrival sharing their
    instant (and moves before departures on churn-only ties).  With an
    empty ``churn`` the result is the input arrivals with their original
    sequence numbers — bit-identical, so churn-free callers pay nothing.

    Raises:
        SimulationError: if the arrival stream is not time-ordered, or
            if ``churn`` contains a non-churn event.
    """
    churn = list(churn)
    for event in churn:
        if event.event_kind not in _CHURN_RANK:
            raise SimulationError(
                f"churn events must be Departure or Move, got {event!r}"
            )
    churn_sorted = sorted(
        churn, key=lambda e: (e.time, _CHURN_RANK[e.event_kind], e.kind, e.object_id)
    )
    if not churn_sorted:
        return list(stream)
    merged: List[StreamEvent] = []
    pending = iter(churn_sorted)
    next_churn = next(pending, None)
    last_time = None
    for arrival in stream:
        if last_time is not None and arrival.time < last_time:
            raise SimulationError(
                f"arrival at t={arrival.time} after t={last_time} "
                "(streams must be time-ordered)"
            )
        last_time = arrival.time
        while next_churn is not None and next_churn.time < arrival.time:
            merged.append(next_churn)
            next_churn = next(pending, None)
        merged.append(arrival)
    while next_churn is not None:
        merged.append(next_churn)
        next_churn = next(pending, None)
    return [replace(event, seq=seq) for seq, event in enumerate(merged)]


def build_stream(
    workers: Iterable[Worker],
    tasks: Iterable[Task],
    churn: Iterable[StreamEvent] = (),
) -> List[StreamEvent]:
    """Merge workers, tasks (and churn events) into one ordered stream.

    Ties are broken deterministically: by time, then by kind (workers
    before tasks, matching the toy example's Table 1 where ``w1`` precedes
    ``r1`` at 9:00), then by entity id.  Churn events (from
    :func:`repro.streams.churn.sample_churn` or hand-built) are merged in
    by :func:`merge_churn` — after arrivals sharing their instant.  With
    no churn the result is exactly the historical arrival-only stream.
    """
    events: List[Arrival] = []
    ordered = sorted(
        [(w.start, 0, w.id, WORKER, w) for w in workers]
        + [(t.start, 1, t.id, TASK, t) for t in tasks]
    )
    for seq, (time, _kind_rank, _ident, kind, entity) in enumerate(ordered):
        events.append(Arrival(time=time, seq=seq, kind=kind, entity=entity))
    churn = list(churn)
    if not churn:
        return events
    return merge_churn(events, churn)


def resample_order(stream: Sequence[StreamEvent], rng: random.Random) -> List[StreamEvent]:
    """A new stream with event *times kept* but same-time ties reshuffled.

    The i.i.d. competitive ratio (Definition 5) minimises over "all
    possible input orders"; resampling tie groups (and, for generators
    that quantise times to slots, whole slots) explores that order space
    without changing any entity's spatiotemporal attributes.

    Churn events participate in the shuffle like any other event, except
    that a tie group is shuffled *per event kind* (arrivals among
    arrivals, moves among moves, departures among departures) so the
    arrive → move → depart invariant for any single object survives the
    reshuffle — a departure can never overtake its object's same-instant
    arrival or move.
    """
    groups: List[List[StreamEvent]] = []
    current: List[StreamEvent] = []
    for event in sorted(stream, key=lambda e: (e.time, e.seq)):
        if current and current[-1].time != event.time:
            groups.append(current)
            current = []
        current.append(event)
    if current:
        groups.append(current)

    reordered: List[StreamEvent] = []
    seq = 0
    for group in groups:
        arrivals = [e for e in group if e.event_kind == ARRIVAL]
        moves = [e for e in group if e.event_kind == MOVE]
        departures = [e for e in group if e.event_kind == DEPARTURE]
        rng.shuffle(arrivals)
        if moves:
            rng.shuffle(moves)
        if departures:
            rng.shuffle(departures)
        for event in arrivals + moves + departures:
            reordered.append(replace(event, seq=seq))
            seq += 1
    return reordered
