"""Deadline-constraint predicates of Definition 4.

The paper's feasibility for a pair ``(w, r)`` has two conditions:

1. ``Sr < Sw + Dw`` — the task appears before the worker leaves.
2. ``Dr − (Sw − Sr) − d(Lw, Lr) ≥ 0`` — the worker reaches ``Lr`` by the
   task's deadline.

Condition 2 is the **pre-dispatch** (flexible) semantics: a worker who
appears *after* the task pays the elapsed wait ``Sw − Sr``; a worker who
appears *before* the task gets extra budget ``Sr − Sw`` because FTOA lets
the platform move them toward ``Lr`` from the moment they arrive.  This is
the edge rule of the offline guide (Algorithm 1 line 8) and of OPT.

The baselines that keep workers stationary (SimpleGreedy, GR) use the
**wait-in-place** semantics: the worker departs from their fixed location
no earlier than both arrivals, so the travel time must fit in the task's
*remaining* window.
"""

from __future__ import annotations

from repro.model.entities import Task, Worker
from repro.spatial.travel import TravelModel

__all__ = [
    "deadline_feasible",
    "wait_in_place_feasible",
    "latest_departure",
    "slack",
]


def deadline_feasible(worker: Worker, task: Task, travel: TravelModel) -> bool:
    """Definition 4 feasibility (pre-dispatch semantics).

    Returns True iff the pair ``(worker, task)`` satisfies both deadline
    conditions, with the worker free to start moving toward the task the
    moment both the worker exists and the platform knows the target.
    """
    if not task.start < worker.deadline:
        return False
    travel_minutes = travel.travel_time(worker.location, task.location)
    return task.duration - (worker.start - task.start) - travel_minutes >= 0.0


def slack(worker: Worker, task: Task, travel: TravelModel) -> float:
    """The slack ``Dr − (Sw − Sr) − d(Lw, Lr)`` of condition 2.

    Non-negative iff the travel condition holds; useful for ranking
    candidate pairs (larger slack = safer assignment).
    """
    return (
        task.duration
        - (worker.start - task.start)
        - travel.travel_time(worker.location, task.location)
    )


def wait_in_place_feasible(
    worker: Worker,
    task: Task,
    travel: TravelModel,
    now: float,
) -> bool:
    """Feasibility for stationary workers assigned at instant ``now``.

    The worker sits at their initial location until the platform assigns
    them at ``now`` (no earlier than both arrivals); they then need
    ``d(Lw, Lr)`` minutes and must arrive by ``Sr + Dr``.  The task must
    also have appeared before the worker's deadline (condition 1) and the
    assignment instant must not pre-date either party.
    """
    if now < worker.start or now < task.start:
        return False
    if not task.start < worker.deadline:
        return False
    travel_minutes = travel.travel_time(worker.location, task.location)
    return now + travel_minutes <= task.deadline


def latest_departure(worker: Worker, task: Task, travel: TravelModel) -> float:
    """The latest instant a stationary worker can leave for ``task`` and
    still arrive by its deadline.

    Can be in the past (infeasible) — callers compare against *now*.
    """
    return task.deadline - travel.travel_time(worker.location, task.location)
