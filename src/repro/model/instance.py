"""A complete FTOA problem instance.

An :class:`Instance` bundles everything an algorithm run needs: the
worker and task populations, the spatial grid, the timeline, and the
travel model.  It owns id → entity lookup, the canonical arrival stream,
and the empirical (slot, area) count tensors that the offline-prediction
step estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GridError, InvalidEntityError, TimelineError
from repro.model.entities import Task, Worker
from repro.model.events import Arrival, StreamEvent, build_stream
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel

__all__ = ["Instance"]


@dataclass
class Instance:
    """Workers + tasks + space/time discretisation + travel model.

    Attributes:
        workers: the worker population ``W`` (ids must be unique).
        tasks: the task population ``R`` (ids must be unique).
        grid: the spatial partition into areas.
        timeline: the temporal partition into slots.
        travel: the constant-velocity travel model.
        name: optional label for reports.
    """

    workers: List[Worker]
    tasks: List[Task]
    grid: Grid
    timeline: Timeline
    travel: TravelModel
    name: str = "instance"
    _worker_by_id: Dict[int, Worker] = field(init=False, repr=False)
    _task_by_id: Dict[int, Task] = field(init=False, repr=False)
    _stream: Optional[List[Arrival]] = field(
        init=False, repr=False, default=None, compare=False
    )
    _typed_stream: Optional[Tuple[List[Arrival], List[int]]] = field(
        init=False, repr=False, default=None, compare=False
    )

    def __post_init__(self) -> None:
        self._worker_by_id = {w.id: w for w in self.workers}
        if len(self._worker_by_id) != len(self.workers):
            raise InvalidEntityError("duplicate worker ids in instance")
        self._task_by_id = {t.id: t for t in self.tasks}
        if len(self._task_by_id) != len(self.tasks):
            raise InvalidEntityError("duplicate task ids in instance")
        for w in self.workers:
            if not self.grid.bounds.contains(w.location):
                raise InvalidEntityError(f"worker {w.id} located outside the grid")
            if not self.timeline.contains(w.start):
                raise InvalidEntityError(f"worker {w.id} starts outside the timeline")
        for t in self.tasks:
            if not self.grid.bounds.contains(t.location):
                raise InvalidEntityError(f"task {t.id} located outside the grid")
            if not self.timeline.contains(t.start):
                raise InvalidEntityError(f"task {t.id} starts outside the timeline")

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    @property
    def n_workers(self) -> int:
        """``|W|``."""
        return len(self.workers)

    @property
    def n_tasks(self) -> int:
        """``|R|``."""
        return len(self.tasks)

    def worker(self, worker_id: int) -> Worker:
        """Resolve a worker id.

        Raises:
            InvalidEntityError: for unknown ids.
        """
        try:
            return self._worker_by_id[worker_id]
        except KeyError:
            raise InvalidEntityError(f"unknown worker id {worker_id}") from None

    def task(self, task_id: int) -> Task:
        """Resolve a task id.

        Raises:
            InvalidEntityError: for unknown ids.
        """
        try:
            return self._task_by_id[task_id]
        except KeyError:
            raise InvalidEntityError(f"unknown task id {task_id}") from None

    def worker_map(self) -> Dict[int, Worker]:
        """A copy of the id → worker mapping (for audits)."""
        return dict(self._worker_by_id)

    def task_map(self) -> Dict[int, Task]:
        """A copy of the id → task mapping (for audits)."""
        return dict(self._task_by_id)

    # ------------------------------------------------------------------ #
    # Discretisation
    # ------------------------------------------------------------------ #

    def type_of_worker(self, worker: Worker) -> Tuple[int, int]:
        """The (slot, area) type of a worker's arrival."""
        return self.timeline.slot_of(worker.start), self.grid.area_of(worker.location)

    def type_of_task(self, task: Task) -> Tuple[int, int]:
        """The (slot, area) type of a task's release."""
        return self.timeline.slot_of(task.start), self.grid.area_of(task.location)

    def worker_counts(self) -> np.ndarray:
        """Empirical ``a_ij`` tensor: workers per (slot, area), shape
        ``(n_slots, n_areas)``."""
        counts = np.zeros((self.timeline.n_slots, self.grid.n_areas), dtype=np.int64)
        for w in self.workers:
            slot, area = self.type_of_worker(w)
            counts[slot, area] += 1
        return counts

    def task_counts(self) -> np.ndarray:
        """Empirical ``b_ij`` tensor: tasks per (slot, area)."""
        counts = np.zeros((self.timeline.n_slots, self.grid.n_areas), dtype=np.int64)
        for t in self.tasks:
            slot, area = self.type_of_task(t)
            counts[slot, area] += 1
        return counts

    # ------------------------------------------------------------------ #
    # Online view
    # ------------------------------------------------------------------ #

    def arrival_stream(self) -> List[Arrival]:
        """The canonical time-ordered arrival stream of this instance.

        The stream is built (sorted) once and cached — every algorithm
        run on the same instance shares it.  Callers must not mutate the
        returned list; order-perturbing experiments go through
        :func:`repro.model.events.resample_order`, which copies.
        """
        if self._stream is None:
            self._stream = build_stream(self.workers, self.tasks)
        return self._stream

    def churn_stream(self, config) -> List[StreamEvent]:
        """The canonical stream with sampled churn events merged in.

        ``config`` is a :class:`repro.streams.churn.ChurnConfig`;
        sampling is deterministic in it, and a zero-rate config returns
        the canonical arrival-only stream (shared cache — do not
        mutate).  Unlike :meth:`arrival_stream` the churned stream is
        not cached: each call re-samples from the config.
        """
        from repro.streams.churn import with_churn

        return with_churn(self.arrival_stream(), self.grid.bounds, config)

    def typed_arrivals(self) -> Tuple[List[Arrival], List[int]]:
        """The canonical stream plus each event's flat (slot, area) type.

        Types are computed for the whole stream in one vectorized numpy
        pass (``type = slot * n_areas + area``, the same flattening as
        :meth:`repro.core.guide.OfflineGuide.type_index`) and cached, so
        the per-arrival ``slot_of``/``area_of`` Python calls disappear
        from the POLAR/POLAR-OP event loops.  Both returned sequences are
        shared caches — callers must not mutate them.
        """
        if self._typed_stream is None:
            events = self.arrival_stream()
            n = len(events)
            starts = np.empty(n, dtype=np.float64)
            xs = np.empty(n, dtype=np.float64)
            ys = np.empty(n, dtype=np.float64)
            for k, event in enumerate(events):
                entity = event.entity
                starts[k] = entity.start
                location = entity.location
                xs[k] = location.x
                ys[k] = location.y
            timeline = self.timeline
            grid = self.grid
            # Mirror the scalar paths' refusal to mis-bin out-of-range
            # data (entities are validated at construction, but the
            # lists are mutable) before the branch-free clamp below.
            if n:
                if starts.min() < timeline.t0 or starts.max() > timeline.horizon_end:
                    raise TimelineError("arrival outside the instance timeline")
                bounds = grid.bounds
                if (
                    xs.min() < bounds.x_min
                    or xs.max() > bounds.x_max
                    or ys.min() < bounds.y_min
                    or ys.max() > bounds.y_max
                ):
                    raise GridError("arrival located outside the instance grid")
            # Same arithmetic as Timeline.slot_of / Grid.cell_of, applied
            # to arrays: truncation == floor for the non-negative offsets
            # below, and the far-edge clamp mirrors the scalar branches.
            slots = ((starts - timeline.t0) / timeline.slot_minutes).astype(np.int64)
            np.minimum(slots, timeline.n_slots - 1, out=slots)
            cols = ((xs - grid.bounds.x_min) / grid.cell_width).astype(np.int64)
            np.minimum(cols, grid.nx - 1, out=cols)
            rows = ((ys - grid.bounds.y_min) / grid.cell_height).astype(np.int64)
            np.minimum(rows, grid.ny - 1, out=rows)
            types = slots * grid.n_areas + rows * grid.nx + cols
            self._typed_stream = (events, types.tolist())
        return self._typed_stream

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Instance({self.name!r}: |W|={self.n_workers}, |R|={self.n_tasks}, "
            f"{self.grid.nx}x{self.grid.ny} areas, {self.timeline.n_slots} slots)"
        )
