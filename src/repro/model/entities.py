"""Workers and tasks (Definitions 1 and 2).

A worker ``w = <Lw, Sw, Dw>`` appears at location ``Lw`` at time ``Sw``
and leaves the platform at ``Sw + Dw``.  A task ``r = <Lr, Sr, Dr>`` is
released at ``Lr`` at time ``Sr`` and must be *reached* by its assigned
worker no later than ``Sr + Dr``.

Both are frozen dataclasses: the online model never mutates an entity
(worker movement is state owned by the simulator, not by the record).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import InvalidEntityError
from repro.spatial.geometry import Point

__all__ = ["Worker", "Task"]


def _validate_common(kind: str, ident: int, start: float, duration: float) -> None:
    if ident < 0:
        raise InvalidEntityError(f"{kind} id must be non-negative, got {ident}")
    if duration <= 0:
        raise InvalidEntityError(
            f"{kind} {ident}: duration must be positive, got {duration}"
        )
    if start < 0:
        raise InvalidEntityError(f"{kind} {ident}: start must be non-negative, got {start}")


@dataclass(frozen=True)
class Worker:
    """A worker ``<Lw, Sw, Dw>``.

    Attributes:
        id: unique non-negative identifier within an instance.
        location: initial location ``Lw`` on arrival.
        start: arrival instant ``Sw`` (minutes).
        duration: waiting budget ``Dw``; the worker leaves at
            ``start + duration``.
        tags: optional free-form metadata (e.g. the generator's ground
            truth (slot, area) type) — never read by the algorithms.
    """

    id: int
    location: Point
    start: float
    duration: float
    tags: Optional[Mapping[str, Any]] = field(default=None, compare=False, hash=False)

    def __post_init__(self) -> None:
        _validate_common("worker", self.id, self.start, self.duration)

    @property
    def deadline(self) -> float:
        """The instant ``Sw + Dw`` after which the worker is gone."""
        return self.start + self.duration

    def available_at(self, t: float) -> bool:
        """Whether the worker is on the platform at instant ``t``.

        Per Definition 4's deadline constraint (1), a task must *appear*
        strictly before the worker's deadline, so availability is the
        half-open interval ``[start, deadline)``.
        """
        return self.start <= t < self.deadline


@dataclass(frozen=True)
class Task:
    """A task ``<Lr, Sr, Dr>``.

    Attributes:
        id: unique non-negative identifier within an instance.
        location: release location ``Lr`` (fixed once released).
        start: release instant ``Sr`` (minutes).
        duration: service window ``Dr``; the assigned worker must arrive
            at ``location`` by ``start + duration``.
        tags: optional free-form metadata, never read by the algorithms.
    """

    id: int
    location: Point
    start: float
    duration: float
    tags: Optional[Mapping[str, Any]] = field(default=None, compare=False, hash=False)

    def __post_init__(self) -> None:
        _validate_common("task", self.id, self.start, self.duration)

    @property
    def deadline(self) -> float:
        """The instant ``Sr + Dr`` by which a worker must arrive."""
        return self.start + self.duration

    def expired_at(self, t: float) -> bool:
        """Whether the task can no longer be served starting at instant ``t``.

        A worker departing at ``t`` needs strictly positive travel budget
        unless already co-located, so expiry is ``t > deadline``.
        """
        return t > self.deadline
