"""Flow and matching substrate.

Algorithm 1 of the paper builds a source/sink flow network over predicted
workers and tasks and runs Ford–Fulkerson; its Lemma 2 argues through the
residual-reachability min-cut; a footnote notes that any max-flow — or a
min-cost max-flow, to also minimise travel — would do.  This package
implements all of those pieces from scratch:

* :mod:`repro.graph.network` — residual flow network with paired edges.
* :mod:`repro.graph.maxflow` — Edmonds–Karp (the BFS Ford–Fulkerson the
  paper cites) and Dinic.
* :mod:`repro.graph.bipartite` — bipartite graphs and Hopcroft–Karp.
* :mod:`repro.graph.mincost` — successive-shortest-path min-cost max-flow.
* :mod:`repro.graph.mincut` — the canonical reachability min-cut of
  Lemma 2.
* :mod:`repro.graph.transportation` — the type-compressed transportation
  form of the guide network (see DESIGN.md §5).
"""

from repro.graph.bipartite import BipartiteGraph, greedy_matching, hopcroft_karp
from repro.graph.maxflow import dinic, edmonds_karp
from repro.graph.mincost import min_cost_max_flow
from repro.graph.mincut import residual_min_cut
from repro.graph.network import Edge, FlowNetwork
from repro.graph.transportation import TransportationProblem, TransportationSolution

__all__ = [
    "FlowNetwork",
    "Edge",
    "edmonds_karp",
    "dinic",
    "BipartiteGraph",
    "hopcroft_karp",
    "greedy_matching",
    "min_cost_max_flow",
    "residual_min_cut",
    "TransportationProblem",
    "TransportationSolution",
]
