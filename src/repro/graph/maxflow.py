"""Maximum-flow algorithms over :class:`repro.graph.network.FlowNetwork`.

The paper's Algorithm 1 line 10 runs Ford–Fulkerson and notes "any other
max-flow algorithm is applicable".  We provide:

* :func:`edmonds_karp` — Ford–Fulkerson with BFS augmenting paths, the
  variant the paper's complexity analysis (``O(min(m, n)·|E|)``) assumes.
* :func:`dinic` — the level-graph algorithm, asymptotically and
  practically faster; the default guide solver at paper scale.

Both mutate the network's residual state in place and return the flow
value; callers can then read per-edge flow or extract the min-cut.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import List

from repro.errors import FlowError
from repro.graph.network import FlowNetwork

__all__ = ["edmonds_karp", "dinic"]

_UNSET = -1


def _check_endpoints(network: FlowNetwork, source: int, sink: int) -> None:
    if not 0 <= source < network.n or not 0 <= sink < network.n:
        raise FlowError(f"source/sink ({source}, {sink}) out of range [0, {network.n})")
    if source == sink:
        raise FlowError("source and sink must differ")


def edmonds_karp(network: FlowNetwork, source: int, sink: int) -> int:
    """Ford–Fulkerson with shortest (BFS) augmenting paths.

    Returns the value of the maximum flow.  Runs in ``O(V·E²)`` in
    general and ``O(min(m, n)·E)`` on unit-capacity bipartite networks —
    the bound quoted in the paper's complexity analysis of Algorithm 1.
    """
    _check_endpoints(network, source, sink)
    total = 0
    parent_edge: List[int] = [_UNSET] * network.n
    while True:
        for i in range(network.n):
            parent_edge[i] = _UNSET
        parent_edge[source] = -2
        queue = deque([source])
        reached = False
        while queue and not reached:
            u = queue.popleft()
            for e in network.adj[u]:
                v = network.to[e]
                if network.residual[e] > 0 and parent_edge[v] == _UNSET:
                    parent_edge[v] = e
                    if v == sink:
                        reached = True
                        break
                    queue.append(v)
        if not reached:
            return total
        # Find the bottleneck along the path, then push it.
        bottleneck = None
        v = sink
        while v != source:
            e = parent_edge[v]
            if bottleneck is None or network.residual[e] < bottleneck:
                bottleneck = network.residual[e]
            v = network.to[e ^ 1]
        assert bottleneck is not None and bottleneck > 0
        v = sink
        while v != source:
            e = parent_edge[v]
            network.push(e, bottleneck)
            v = network.to[e ^ 1]
        total += bottleneck


def dinic(network: FlowNetwork, source: int, sink: int) -> int:
    """Dinic's algorithm: BFS level graph + DFS blocking flows.

    Returns the maximum-flow value.  ``O(E·√V)`` on unit-capacity
    bipartite networks, which covers both the expanded guide network and
    (with integer type capacities) the compressed transportation form.

    The blocking-flow DFS recurses along level-graph paths; the guide
    networks are source → workers → tasks → sink, so depth is constant.
    For arbitrary deep networks the recursion limit is raised to the node
    count plus headroom.
    """
    _check_endpoints(network, source, sink)
    n = network.n
    adj = network.adj
    to = network.to
    residual = network.residual
    level = [_UNSET] * n
    iter_index = [0] * n

    def bfs() -> bool:
        for i in range(n):
            level[i] = _UNSET
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for e in adj[u]:
                v = to[e]
                if residual[e] > 0 and level[v] == _UNSET:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level[sink] != _UNSET

    def dfs(u: int, limit: int) -> int:
        if u == sink:
            return limit
        while iter_index[u] < len(adj[u]):
            e = adj[u][iter_index[u]]
            v = to[e]
            if residual[e] > 0 and level[v] == level[u] + 1:
                pushed = dfs(v, min(limit, residual[e]))
                if pushed > 0:
                    residual[e] -= pushed
                    residual[e ^ 1] += pushed
                    return pushed
            iter_index[u] += 1
        level[u] = _UNSET
        return 0

    old_limit = sys.getrecursionlimit()
    needed = n + 100
    if needed > old_limit:
        sys.setrecursionlimit(needed)
    try:
        infinity = 1 << 60
        total = 0
        while bfs():
            for i in range(n):
                iter_index[i] = 0
            while True:
                pushed = dfs(source, infinity)
                if pushed == 0:
                    break
                total += pushed
        return total
    finally:
        if needed > old_limit:
            sys.setrecursionlimit(old_limit)
