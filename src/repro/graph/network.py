"""A residual flow network with integer capacities.

Edges are stored in xor-paired arrays (edge ``e`` and its reverse
``e ^ 1``), the classic representation that makes residual updates O(1)
and works for every augmenting-path algorithm in this package.  Costs are
optional and only consulted by the min-cost solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import FlowError, GraphError

__all__ = ["FlowNetwork", "Edge"]


@dataclass(frozen=True)
class Edge:
    """A read-only view of one directed edge for callers inspecting flow.

    Attributes:
        index: the edge id inside the network (its reverse is ``index^1``).
        tail: source endpoint.
        head: target endpoint.
        capacity: original capacity.
        flow: current flow (capacity minus residual).
        cost: per-unit cost (0 unless set).
    """

    index: int
    tail: int
    head: int
    capacity: int
    flow: int
    cost: float


class FlowNetwork:
    """A directed graph supporting residual flow operations.

    Nodes are dense integers ``0..n-1``.  ``add_edge`` creates the forward
    edge and its zero-capacity reverse twin; algorithms push flow by
    decrementing ``residual[e]`` and incrementing ``residual[e^1]``.
    """

    __slots__ = ("n", "adj", "to", "residual", "capacity", "cost")

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise GraphError(f"network needs at least one node, got {n_nodes}")
        self.n = int(n_nodes)
        self.adj: List[List[int]] = [[] for _ in range(self.n)]
        self.to: List[int] = []
        self.residual: List[int] = []
        self.capacity: List[int] = []
        self.cost: List[float] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_edge(self, tail: int, head: int, capacity: int, cost: float = 0.0) -> int:
        """Add a directed edge and its residual twin; return the edge id.

        Raises:
            GraphError: for out-of-range endpoints, self-loops, or negative
                capacity.
        """
        self._check_node(tail)
        self._check_node(head)
        if tail == head:
            raise GraphError(f"self-loop at node {tail} not allowed")
        if capacity < 0:
            raise GraphError(f"negative capacity {capacity} on edge {tail}->{head}")
        edge_id = len(self.to)
        self.to.append(head)
        self.residual.append(int(capacity))
        self.capacity.append(int(capacity))
        self.cost.append(float(cost))
        self.adj[tail].append(edge_id)
        self.to.append(tail)
        self.residual.append(0)
        self.capacity.append(0)
        self.cost.append(-float(cost))
        self.adj[head].append(edge_id + 1)
        return edge_id

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise GraphError(f"node {node} out of range [0, {self.n})")

    # ------------------------------------------------------------------ #
    # Flow bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def n_edges(self) -> int:
        """Number of forward edges (reverse twins are not counted)."""
        return len(self.to) // 2

    def flow_on(self, edge_id: int) -> int:
        """Current flow on forward edge ``edge_id``.

        Raises:
            FlowError: if ``edge_id`` names a reverse twin.
        """
        if edge_id % 2 != 0:
            raise FlowError(f"edge id {edge_id} is a residual twin, not a forward edge")
        return self.capacity[edge_id] - self.residual[edge_id]

    def push(self, edge_id: int, amount: int) -> None:
        """Push ``amount`` units along edge ``edge_id`` (either direction).

        Raises:
            FlowError: if the residual capacity is insufficient.
        """
        if amount < 0:
            raise FlowError(f"cannot push negative amount {amount}")
        if self.residual[edge_id] < amount:
            raise FlowError(
                f"edge {edge_id} has residual {self.residual[edge_id]} < {amount}"
            )
        self.residual[edge_id] -= amount
        self.residual[edge_id ^ 1] += amount

    def reset_flow(self) -> None:
        """Zero all flow, restoring original capacities."""
        for e in range(len(self.residual)):
            self.residual[e] = self.capacity[e]

    def edges(self) -> Iterator[Edge]:
        """Iterate read-only views of the forward edges."""
        for e in range(0, len(self.to), 2):
            yield Edge(
                index=e,
                tail=self.to[e ^ 1],
                head=self.to[e],
                capacity=self.capacity[e],
                flow=self.capacity[e] - self.residual[e],
                cost=self.cost[e],
            )

    def outflow(self, node: int) -> int:
        """Net flow leaving ``node`` (flow out minus flow in on forward edges)."""
        self._check_node(node)
        net = 0
        for e in self.adj[node]:
            if e % 2 == 0:
                net += self.capacity[e] - self.residual[e]
            else:
                net -= self.capacity[e ^ 1] - self.residual[e ^ 1]
        return net

    def check_conservation(self, source: int, sink: int) -> None:
        """Assert flow conservation at every node except source and sink.

        Raises:
            FlowError: if any interior node creates or destroys flow.
        """
        for node in range(self.n):
            if node in (source, sink):
                continue
            net = self.outflow(node)
            if net != 0:
                raise FlowError(f"conservation violated at node {node}: net outflow {net}")

    def total_flow(self, source: int) -> int:
        """The value of the current flow, measured at the source."""
        self._check_node(source)
        return self.outflow(source)

    def flow_by_pair(self) -> Dict[Tuple[int, int], int]:
        """Aggregate positive flow per (tail, head) pair — the guide's
        per-type-pair counts come from this on the compressed network."""
        flows: Dict[Tuple[int, int], int] = {}
        for edge in self.edges():
            if edge.flow > 0:
                key = (edge.tail, edge.head)
                flows[key] = flows.get(key, 0) + edge.flow
        return flows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowNetwork(n={self.n}, edges={self.n_edges})"
