"""Min-cost max-flow by successive shortest paths.

The paper notes (Section 4, note 2) that adding travel costs to the guide
edges and running any min-cost max-flow yields a maximum matching that
*also* minimises total travel.  We implement successive shortest paths
with SPFA (queue-based Bellman–Ford) distances, which tolerates the
negative reduced costs that appear in residual arcs without potentials
and is simple to verify.

The primary objective stays cardinality: flow is augmented until no
augmenting path exists, exactly like plain max-flow; among maximum flows
the path selection by cheapest cost drives total cost to the minimum.
"""

from __future__ import annotations

from collections import deque
from typing import List, NamedTuple

from repro.errors import FlowError
from repro.graph.network import FlowNetwork

__all__ = ["MinCostFlowResult", "min_cost_max_flow"]

_INF = float("inf")


class MinCostFlowResult(NamedTuple):
    """Outcome of a min-cost max-flow computation.

    Attributes:
        flow: the (maximum) flow value.
        cost: total cost ``Σ flow(e) · cost(e)``.
    """

    flow: int
    cost: float


def min_cost_max_flow(network: FlowNetwork, source: int, sink: int) -> MinCostFlowResult:
    """Augment along cheapest residual paths until none remain.

    Returns the flow value and its total cost.  The network's residual
    state is mutated in place, as with the other solvers.

    Raises:
        FlowError: for invalid endpoints or a negative-cost cycle
            reachable from the source (cannot happen on guide networks,
            whose costs are non-negative travel times).
    """
    if not 0 <= source < network.n or not 0 <= sink < network.n:
        raise FlowError(f"source/sink ({source}, {sink}) out of range [0, {network.n})")
    if source == sink:
        raise FlowError("source and sink must differ")

    n = network.n
    adj = network.adj
    to = network.to
    residual = network.residual
    cost = network.cost
    total_flow = 0
    total_cost = 0.0

    dist: List[float] = [0.0] * n
    in_queue: List[bool] = [False] * n
    parent_edge: List[int] = [-1] * n
    relax_count: List[int] = [0] * n

    while True:
        for i in range(n):
            dist[i] = _INF
            in_queue[i] = False
            parent_edge[i] = -1
            relax_count[i] = 0
        dist[source] = 0.0
        queue = deque([source])
        in_queue[source] = True
        while queue:
            u = queue.popleft()
            in_queue[u] = False
            for e in adj[u]:
                if residual[e] <= 0:
                    continue
                v = to[e]
                candidate = dist[u] + cost[e]
                if candidate < dist[v] - 1e-12:
                    dist[v] = candidate
                    parent_edge[v] = e
                    if not in_queue[v]:
                        relax_count[v] += 1
                        if relax_count[v] > n:
                            raise FlowError("negative-cost cycle detected")
                        queue.append(v)
                        in_queue[v] = True
        if dist[sink] == _INF:
            return MinCostFlowResult(total_flow, total_cost)
        bottleneck = None
        v = sink
        while v != source:
            e = parent_edge[v]
            if bottleneck is None or residual[e] < bottleneck:
                bottleneck = residual[e]
            v = to[e ^ 1]
        assert bottleneck is not None and bottleneck > 0
        v = sink
        while v != source:
            e = parent_edge[v]
            network.push(e, bottleneck)
            total_cost += cost[e] * bottleneck
            v = to[e ^ 1]
        total_flow += bottleneck
