"""Bipartite graphs and maximum-cardinality matching.

OPT and the GR batch baseline both reduce to maximum bipartite matching
over feasibility edges.  :func:`hopcroft_karp` is the workhorse
(``O(E·√V)``); :func:`greedy_matching` provides the cheap first-fit bound
used to warm-start and to cross-check (greedy is a maximal matching, so
its size is at least half the maximum — a property test relies on this).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GraphError

__all__ = ["BipartiteGraph", "hopcroft_karp", "greedy_matching", "MatchResult"]

_FREE = -1
_INF = 1 << 60


class BipartiteGraph:
    """Adjacency lists from ``n_left`` left nodes to ``n_right`` right nodes."""

    __slots__ = ("n_left", "n_right", "adj")

    def __init__(self, n_left: int, n_right: int) -> None:
        if n_left < 0 or n_right < 0:
            raise GraphError(f"negative side sizes ({n_left}, {n_right})")
        self.n_left = int(n_left)
        self.n_right = int(n_right)
        self.adj: List[List[int]] = [[] for _ in range(self.n_left)]

    def add_edge(self, left: int, right: int) -> None:
        """Add an edge; duplicate edges are permitted and harmless.

        Raises:
            GraphError: for out-of-range endpoints.
        """
        if not 0 <= left < self.n_left:
            raise GraphError(f"left node {left} out of range [0, {self.n_left})")
        if not 0 <= right < self.n_right:
            raise GraphError(f"right node {right} out of range [0, {self.n_right})")
        self.adj[left].append(right)

    @property
    def n_edges(self) -> int:
        """Total number of stored edges (duplicates included)."""
        return sum(len(neighbours) for neighbours in self.adj)

    @staticmethod
    def from_edges(
        n_left: int, n_right: int, edges: Iterable[Tuple[int, int]]
    ) -> "BipartiteGraph":
        """Build a graph from an iterable of ``(left, right)`` pairs."""
        graph = BipartiteGraph(n_left, n_right)
        for left, right in edges:
            graph.add_edge(left, right)
        return graph


class MatchResult:
    """The outcome of a bipartite matching computation.

    Attributes:
        size: number of matched pairs.
        left_match: per-left-node partner (right index) or -1.
        right_match: per-right-node partner (left index) or -1.
    """

    __slots__ = ("size", "left_match", "right_match")

    def __init__(self, size: int, left_match: List[int], right_match: List[int]) -> None:
        self.size = size
        self.left_match = left_match
        self.right_match = right_match

    def pairs(self) -> List[Tuple[int, int]]:
        """Matched ``(left, right)`` pairs in left-index order."""
        return [
            (left, right)
            for left, right in enumerate(self.left_match)
            if right != _FREE
        ]

    def validate(self, graph: BipartiteGraph) -> None:
        """Check mutual consistency and edge membership.

        Raises:
            GraphError: if the two partner arrays disagree or a matched
                pair is not an edge of ``graph``.
        """
        count = 0
        for left, right in enumerate(self.left_match):
            if right == _FREE:
                continue
            count += 1
            if self.right_match[right] != left:
                raise GraphError(
                    f"asymmetric matching: left {left}->{right} but right "
                    f"{right}->{self.right_match[right]}"
                )
            if right not in graph.adj[left]:
                raise GraphError(f"matched pair ({left}, {right}) is not an edge")
        if count != self.size:
            raise GraphError(f"declared size {self.size} but found {count} pairs")


def greedy_matching(graph: BipartiteGraph) -> MatchResult:
    """First-fit maximal matching (each left node takes its first free
    neighbour).  At least half the maximum size; linear time."""
    left_match = [_FREE] * graph.n_left
    right_match = [_FREE] * graph.n_right
    size = 0
    for left in range(graph.n_left):
        for right in graph.adj[left]:
            if right_match[right] == _FREE:
                left_match[left] = right
                right_match[right] = left
                size += 1
                break
    return MatchResult(size, left_match, right_match)


def hopcroft_karp(graph: BipartiteGraph) -> MatchResult:
    """Maximum-cardinality bipartite matching in ``O(E·√V)``.

    Alternates BFS phases that layer the free left nodes with DFS phases
    that harvest a maximal set of shortest vertex-disjoint augmenting
    paths.  Deterministic for a fixed graph.
    """
    n_left = graph.n_left
    adj = graph.adj
    left_match = [_FREE] * n_left
    right_match = [_FREE] * graph.n_right
    dist = [0] * n_left
    size = 0

    def bfs() -> bool:
        queue = deque()
        for left in range(n_left):
            if left_match[left] == _FREE:
                dist[left] = 0
                queue.append(left)
            else:
                dist[left] = _INF
        found_free = False
        while queue:
            left = queue.popleft()
            for right in adj[left]:
                nxt = right_match[right]
                if nxt == _FREE:
                    found_free = True
                elif dist[nxt] == _INF:
                    dist[nxt] = dist[left] + 1
                    queue.append(nxt)
        return found_free

    def dfs(left: int) -> bool:
        for right in adj[left]:
            nxt = right_match[right]
            if nxt == _FREE or (dist[nxt] == dist[left] + 1 and dfs(nxt)):
                left_match[left] = right
                right_match[right] = left
                return True
        dist[left] = _INF
        return False

    import sys

    old_limit = sys.getrecursionlimit()
    needed = n_left + graph.n_right + 100
    if needed > old_limit:
        sys.setrecursionlimit(needed)
    try:
        while bfs():
            for left in range(n_left):
                if left_match[left] == _FREE and dfs(left):
                    size += 1
    finally:
        if needed > old_limit:
            sys.setrecursionlimit(old_limit)
    return MatchResult(size, left_match, right_match)
