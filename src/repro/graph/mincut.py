"""Minimum-cut extraction from a residual network (Lemma 2's construction).

After a max-flow computation, the nodes reachable from the source in the
residual graph form the source side ``S`` of a minimum cut; the paper's
Lemma 2 builds exactly this "canonical reachability" cut on the guide's
residual network to upper-bound OPT.  :func:`residual_min_cut` returns
the partition and the saturated cut edges, and asserts the max-flow =
min-cut identity the proof relies on.
"""

from __future__ import annotations

from collections import deque
from typing import List, NamedTuple, Set, Tuple

from repro.errors import FlowError
from repro.graph.network import FlowNetwork

__all__ = ["MinCut", "residual_min_cut"]


class MinCut(NamedTuple):
    """A source/sink partition with its crossing edges.

    Attributes:
        source_side: node set ``S`` (contains the source).
        sink_side: node set ``T`` (contains the sink).
        cut_edges: forward edge ids crossing from ``S`` to ``T``.
        capacity: total capacity of the crossing edges.
    """

    source_side: Set[int]
    sink_side: Set[int]
    cut_edges: List[int]
    capacity: int


def residual_min_cut(network: FlowNetwork, source: int, sink: int) -> MinCut:
    """Extract the reachability min-cut from a maxed-out network.

    Must be called after a max-flow algorithm has saturated the network;
    if the sink is still reachable in the residual graph the flow was not
    maximum and a :class:`FlowError` is raised.

    Raises:
        FlowError: if the residual graph still has an augmenting path, or
            if the cut capacity disagrees with the flow value (both would
            indicate a broken solver).
    """
    reachable: Set[int] = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for e in network.adj[u]:
            v = network.to[e]
            if network.residual[e] > 0 and v not in reachable:
                reachable.add(v)
                queue.append(v)
    if sink in reachable:
        raise FlowError("sink reachable in residual graph: flow is not maximum")

    cut_edges: List[int] = []
    capacity = 0
    for edge in network.edges():
        if edge.tail in reachable and edge.head not in reachable:
            cut_edges.append(edge.index)
            capacity += edge.capacity

    flow_value = network.total_flow(source)
    if capacity != flow_value:
        raise FlowError(
            f"max-flow/min-cut mismatch: cut capacity {capacity} != flow {flow_value}"
        )
    sink_side = set(range(network.n)) - reachable
    return MinCut(reachable, sink_side, cut_edges, capacity)
