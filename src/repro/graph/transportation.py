"""Type-compressed transportation form of the guide network.

Algorithm 1 instantiates one node per *predicted object*: ``a_ij`` worker
nodes and ``b_ij`` task nodes per (slot, area) type, unit edges, then a
max-flow.  All nodes of one type are interchangeable — same location
(area centre), same representative time, same deadline — so the expanded
matching is exactly an integer transportation problem on the *types*:

* source → worker-type ``u`` with capacity ``a(u)``,
* worker-type ``u`` → task-type ``v`` with capacity ``min(a(u), b(v))``
  wherever the type pair is deadline-feasible,
* task-type ``v`` → sink with capacity ``b(v)``.

The max-flow value equals the expanded maximum-matching cardinality, and
the per-lane flows are the numbers of guide pairs between the two types
(a unit test asserts this equivalence against the literal expanded
construction).  This is what makes paper-scale guides (40k+ predicted
objects) tractable in pure Python.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FlowError, GraphError
from repro.graph.maxflow import dinic, edmonds_karp
from repro.graph.mincost import min_cost_max_flow
from repro.graph.network import FlowNetwork

__all__ = ["TransportationProblem", "TransportationSolution"]


class TransportationSolution:
    """The solved guide flow in type space.

    Attributes:
        total: max-flow value = maximum matching cardinality ``|E*|``.
        lane_flow: ``(left_type, right_type) → units`` for positive lanes.
        cost: total travel cost if solved with the min-cost method, else
            None.
        network: the solved residual network (for min-cut extraction).
        source / sink: node ids inside ``network``.
    """

    __slots__ = ("total", "lane_flow", "cost", "network", "source", "sink", "n_left", "n_right")

    def __init__(
        self,
        total: int,
        lane_flow: Dict[Tuple[int, int], int],
        cost: Optional[float],
        network: FlowNetwork,
        source: int,
        sink: int,
        n_left: int,
        n_right: int,
    ) -> None:
        self.total = total
        self.lane_flow = lane_flow
        self.cost = cost
        self.network = network
        self.source = source
        self.sink = sink
        self.n_left = n_left
        self.n_right = n_right

    def left_served(self, left_type: int) -> int:
        """Units shipped out of left type ``u`` (matched predicted workers)."""
        return sum(
            units for (u, _v), units in self.lane_flow.items() if u == left_type
        )

    def right_served(self, right_type: int) -> int:
        """Units shipped into right type ``v`` (matched predicted tasks)."""
        return sum(
            units for (_u, v), units in self.lane_flow.items() if v == right_type
        )

    def lanes_from(self, left_type: int) -> List[Tuple[int, int]]:
        """``(right_type, units)`` lanes leaving ``left_type``."""
        return [
            (v, units) for (u, v), units in self.lane_flow.items() if u == left_type
        ]

    def lanes_into(self, right_type: int) -> List[Tuple[int, int]]:
        """``(left_type, units)`` lanes entering ``right_type``."""
        return [
            (u, units) for (u, v), units in self.lane_flow.items() if v == right_type
        ]


class TransportationProblem:
    """An integer transportation instance between left and right types.

    Args:
        supplies: capacity per left type (``a_ij`` flattened over types).
        demands: capacity per right type (``b_ij`` flattened over types).

    Lanes (feasible type pairs) are added with :meth:`add_lane`; zero-
    capacity types may exist but cannot carry flow.
    """

    def __init__(self, supplies: Sequence[int], demands: Sequence[int]) -> None:
        for value in supplies:
            if value < 0:
                raise GraphError(f"negative supply {value}")
        for value in demands:
            if value < 0:
                raise GraphError(f"negative demand {value}")
        self.supplies = [int(v) for v in supplies]
        self.demands = [int(v) for v in demands]
        self._lanes: List[Tuple[int, int, float]] = []

    @property
    def n_left(self) -> int:
        """Number of left (worker) types."""
        return len(self.supplies)

    @property
    def n_right(self) -> int:
        """Number of right (task) types."""
        return len(self.demands)

    @property
    def n_lanes(self) -> int:
        """Number of feasible type pairs added so far."""
        return len(self._lanes)

    def add_lane(self, left_type: int, right_type: int, cost: float = 0.0) -> None:
        """Declare the type pair ``(left_type, right_type)`` feasible.

        ``cost`` is the per-pair travel cost for the min-cost variant.

        Raises:
            GraphError: for out-of-range type indices or negative cost.
        """
        if not 0 <= left_type < self.n_left:
            raise GraphError(f"left type {left_type} out of range [0, {self.n_left})")
        if not 0 <= right_type < self.n_right:
            raise GraphError(f"right type {right_type} out of range [0, {self.n_right})")
        if cost < 0:
            raise GraphError(f"negative lane cost {cost}")
        self._lanes.append((left_type, right_type, cost))

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #

    def solve(self, method: str = "dinic") -> TransportationSolution:
        """Solve for maximum flow; return per-lane shipment counts.

        Args:
            method: ``"dinic"`` (default), ``"edmonds_karp"``, or
                ``"mincost"`` (maximum flow of minimum total travel cost —
                the paper's Section 4 note 2 variant).

        Raises:
            FlowError: for an unknown method name.
        """
        n_left = self.n_left
        n_right = self.n_right
        source = 0
        sink = n_left + n_right + 1
        network = FlowNetwork(n_left + n_right + 2)
        for u, supply in enumerate(self.supplies):
            if supply > 0:
                network.add_edge(source, 1 + u, supply)
        for v, demand in enumerate(self.demands):
            if demand > 0:
                network.add_edge(1 + n_left + v, sink, demand)
        lane_edges: List[Tuple[int, int, int]] = []
        for u, v, cost in self._lanes:
            capacity = min(self.supplies[u], self.demands[v])
            if capacity <= 0:
                continue
            edge_id = network.add_edge(1 + u, 1 + n_left + v, capacity, cost)
            lane_edges.append((edge_id, u, v))

        total_cost: Optional[float] = None
        if method == "dinic":
            total = dinic(network, source, sink)
        elif method == "edmonds_karp":
            total = edmonds_karp(network, source, sink)
        elif method == "mincost":
            result = min_cost_max_flow(network, source, sink)
            total = result.flow
            total_cost = result.cost
        else:
            raise FlowError(f"unknown solve method {method!r}")

        network.check_conservation(source, sink)
        lane_flow: Dict[Tuple[int, int], int] = {}
        for edge_id, u, v in lane_edges:
            units = network.flow_on(edge_id)
            if units > 0:
                lane_flow[(u, v)] = lane_flow.get((u, v), 0) + units
        return TransportationSolution(
            total=total,
            lane_flow=lane_flow,
            cost=total_cost,
            network=network,
            source=source,
            sink=sink,
            n_left=n_left,
            n_right=n_right,
        )
