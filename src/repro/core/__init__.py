"""The paper's contribution: the two-step FTOA framework.

* :mod:`repro.core.guide` — Algorithm 1, offline guide generation.
* :mod:`repro.core.engine` — the incremental matcher protocol
  (``begin → observe → finish``) and the five stateful matchers all
  online algorithms are implemented as.
* :mod:`repro.core.polar` — Algorithm 2, POLAR (occupy, CR ≈ 0.40).
* :mod:`repro.core.polar_op` — Algorithm 3, POLAR-OP (associate,
  CR ≈ 0.47).
* :mod:`repro.core.greedy` — the SimpleGreedy baseline (Section 2.2).
* :mod:`repro.core.batch` — the GR batched baseline (To et al. 2015).
* :mod:`repro.core.opt` — the offline optimum OPT.
* :mod:`repro.core.tgoa` — the TGOA baseline from the paper's related
  work [26] (extension; not evaluated in the paper itself).
* :mod:`repro.core.outcome` — the shared assignment-outcome record.
* :mod:`repro.core.theory` — the competitive-ratio constants and bounds
  of Lemmas 1–3 / Theorems 1–2.

The ``run_*`` entry points are thin batch adapters over the matchers;
stream-driven callers (the serving layer, live replays) use the matchers
directly through :class:`repro.serving.session.MatchingSession`.
"""

from repro.core.batch import run_batch
from repro.core.engine import (
    BatchMatcher,
    GreedyMatcher,
    Matcher,
    PolarMatcher,
    PolarOpMatcher,
    STREAM_ALGORITHMS,
    TgoaMatcher,
    create_matcher,
)
from repro.core.greedy import run_simple_greedy
from repro.core.guide import OfflineGuide, build_guide
from repro.core.opt import run_opt
from repro.core.outcome import IGNORED, STAY, WAIT, AssignmentOutcome, Decision
from repro.core.polar import run_polar
from repro.core.polar_op import run_polar_op
from repro.core.tgoa import run_tgoa
from repro.core.theory import (
    azuma_deviation_bound,
    expected_min_poisson,
    polar_op_ratio,
    polar_ratio,
)

__all__ = [
    "OfflineGuide",
    "build_guide",
    "run_polar",
    "run_polar_op",
    "run_simple_greedy",
    "run_batch",
    "run_opt",
    "run_tgoa",
    "Matcher",
    "PolarMatcher",
    "PolarOpMatcher",
    "GreedyMatcher",
    "BatchMatcher",
    "TgoaMatcher",
    "STREAM_ALGORITHMS",
    "create_matcher",
    "AssignmentOutcome",
    "Decision",
    "STAY",
    "WAIT",
    "IGNORED",
    "polar_ratio",
    "polar_op_ratio",
    "expected_min_poisson",
    "azuma_deviation_bound",
]
