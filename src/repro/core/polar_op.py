"""Algorithm 3 — POLAR-OP: POLAR with node re-use ("associate").

POLAR ignores every object beyond the predicted count of its type.
POLAR-OP instead lets a guide node be *associated* with any number of
real objects: an arrival picks a node of its type uniformly at random,
follows the node's guide edge, and matches the oldest unmatched object
associated with the paired node if one exists; otherwise it parks itself
on its own node (workers are dispatched toward the paired area, tasks
wait).  Objects are only ignored when their type has **zero** predicted
nodes.

Per guide edge ``e`` the number of matches is ``min(We, Re)`` — the
balls-into-bins quantity behind Lemma 3's ``≈ 0.47`` competitive ratio.
Processing stays O(1) per arrival.

The algorithm lives in :class:`repro.core.engine.PolarOpMatcher`; this
module keeps :func:`run_polar_op` as the batch adapter over the
matcher's bulk typed-event loop (bit-identical to the pre-refactor
implementation — parity tests assert it).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import PolarOpMatcher, typed_events as _typed_events
from repro.core.guide import OfflineGuide
from repro.core.outcome import AssignmentOutcome
from repro.model.events import Arrival
from repro.model.instance import Instance

__all__ = ["run_polar_op"]


def run_polar_op(
    instance: Instance,
    guide: OfflineGuide,
    stream: Optional[Sequence[Arrival]] = None,
    node_choice: str = "round_robin",
    seed: int = 0,
) -> AssignmentOutcome:
    """Run POLAR-OP over an instance's arrival stream.

    Args:
        instance: the problem instance.
        guide: the offline guide ``Ĝf``.
        stream: arrival-order override (defaults to the canonical order).
        node_choice: Algorithm 3 leaves the choice of "a node of o's
            type" free.  ``"round_robin"`` (default) cycles through the
            type's nodes, so the first ``a_ij`` arrivals of a type cover
            distinct nodes (POLAR's discipline) and the overflow re-uses
            them evenly — empirically the strongest policy.  ``"random"``
            is the uniform choice Lemma 3 analyses (its Poisson
            balls-into-bins argument needs independence); it trades a few
            matches for the clean 0.47 bound.
        seed: RNG seed for the random choice.

    Returns:
        The committed matching plus per-object decisions.

    Raises:
        ConfigurationError: for an unknown ``node_choice``.
    """
    matcher = PolarOpMatcher(guide, node_choice=node_choice, seed=seed)
    matcher.begin()
    matcher.consume_typed(_typed_events(instance, guide, stream))
    return matcher.finish()
