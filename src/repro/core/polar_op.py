"""Algorithm 3 — POLAR-OP: POLAR with node re-use ("associate").

POLAR ignores every object beyond the predicted count of its type.
POLAR-OP instead lets a guide node be *associated* with any number of
real objects: an arrival picks a node of its type uniformly at random,
follows the node's guide edge, and matches the oldest unmatched object
associated with the paired node if one exists; otherwise it parks itself
on its own node (workers are dispatched toward the paired area, tasks
wait).  Objects are only ignored when their type has **zero** predicted
nodes.

Per guide edge ``e`` the number of matches is ``min(We, Re)`` — the
balls-into-bins quantity behind Lemma 3's ``≈ 0.47`` competitive ratio.
Processing stays O(1) per arrival.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Sequence, Tuple

from repro.core.guide import OfflineGuide
from repro.core.outcome import AssignmentOutcome, Decision
from repro.core.polar import _typed_events
from repro.errors import ConfigurationError
from repro.model.events import WORKER, Arrival
from repro.model.instance import Instance
from repro.model.matching import Matching
from repro.seeding import derive_random

__all__ = ["run_polar_op"]

_NodeKey = Tuple[int, int]

_WAIT = Decision(Decision.WAIT)
_IGNORED = Decision(Decision.IGNORED)


class _AssociationSide:
    """Association bookkeeping for one side of the guide.

    Each node keeps a FIFO of associated-but-unmatched object ids; nodes
    are reusable so there is no free pool, just the queues.
    """

    __slots__ = ("_queues",)

    def __init__(self) -> None:
        self._queues: Dict[_NodeKey, Deque[int]] = {}

    def park(self, node: _NodeKey, object_id: int) -> None:
        """Record ``object_id`` as waiting on ``node``."""
        self._queues.setdefault(node, deque()).append(object_id)

    def pop_waiting(self, node: _NodeKey) -> Optional[int]:
        """Pop the oldest unmatched object on ``node``, or None."""
        queue = self._queues.get(node)
        if queue:
            return queue.popleft()
        return None


def run_polar_op(
    instance: Instance,
    guide: OfflineGuide,
    stream: Optional[Sequence[Arrival]] = None,
    node_choice: str = "round_robin",
    seed: int = 0,
) -> AssignmentOutcome:
    """Run POLAR-OP over an instance's arrival stream.

    Args:
        instance: the problem instance.
        guide: the offline guide ``Ĝf``.
        stream: arrival-order override (defaults to the canonical order).
        node_choice: Algorithm 3 leaves the choice of "a node of o's
            type" free.  ``"round_robin"`` (default) cycles through the
            type's nodes, so the first ``a_ij`` arrivals of a type cover
            distinct nodes (POLAR's discipline) and the overflow re-uses
            them evenly — empirically the strongest policy.  ``"random"``
            is the uniform choice Lemma 3 analyses (its Poisson
            balls-into-bins argument needs independence); it trades a few
            matches for the clean 0.47 bound.
        seed: RNG seed for the random choice.

    Returns:
        The committed matching plus per-object decisions.

    Raises:
        ConfigurationError: for an unknown ``node_choice``.
    """
    if node_choice not in ("random", "round_robin"):
        raise ConfigurationError(f"unknown node_choice {node_choice!r}")
    rng = derive_random(seed, "polar-op")
    randrange = rng.randrange
    random_choice = node_choice == "random"
    cursor: Dict[Tuple[str, int], int] = {}

    worker_parked = _AssociationSide()
    task_parked = _AssociationSide()
    outcome = AssignmentOutcome(algorithm="POLAR-OP", matching=Matching())
    outcome.extras["guide_size"] = float(guide.matched_pairs)

    worker_capacity = guide.worker_capacity_list()
    task_capacity = guide.task_capacity_list()
    worker_partners = guide.worker_partner_table()
    task_partners = guide.task_partner_table()
    n_areas = guide.grid.n_areas

    assign = outcome.matching.assign
    worker_decisions = outcome.worker_decisions
    task_decisions = outcome.task_decisions
    pop_waiting_task = task_parked.pop_waiting
    pop_waiting_worker = worker_parked.pop_waiting
    park_worker = worker_parked.park
    park_task = task_parked.park

    for event, type_index in _typed_events(instance, guide, stream):
        object_id = event.entity.id
        if event.kind == WORKER:
            capacity = worker_capacity[type_index]
            if capacity == 0:
                outcome.ignored_workers += 1
                worker_decisions[object_id] = _IGNORED
                continue
            if random_choice:
                offset = randrange(capacity)
            else:
                key = ("w", type_index)
                offset = cursor.get(key, 0)
                cursor[key] = (offset + 1) % capacity
            partners = worker_partners.get(type_index)
            partner = partners[offset] if partners is not None else None
            if partner is None:
                worker_decisions[object_id] = Decision(Decision.STAY)
                continue
            waiting_task = pop_waiting_task(partner)
            if waiting_task is not None:
                assign(object_id, waiting_task)
                worker_decisions[object_id] = Decision(
                    Decision.ASSIGNED, partner_id=waiting_task
                )
                task_decisions[waiting_task] = Decision(
                    Decision.ASSIGNED, partner_id=object_id
                )
            else:
                park_worker((type_index, offset), object_id)
                worker_decisions[object_id] = Decision(
                    Decision.DISPATCHED, target_area=partner[0] % n_areas
                )
        else:
            capacity = task_capacity[type_index]
            if capacity == 0:
                outcome.ignored_tasks += 1
                task_decisions[object_id] = _IGNORED
                continue
            if random_choice:
                offset = randrange(capacity)
            else:
                key = ("r", type_index)
                offset = cursor.get(key, 0)
                cursor[key] = (offset + 1) % capacity
            partners = task_partners.get(type_index)
            partner = partners[offset] if partners is not None else None
            if partner is None:
                task_decisions[object_id] = _WAIT
                continue
            waiting_worker = pop_waiting_worker(partner)
            if waiting_worker is not None:
                assign(waiting_worker, object_id)
                task_decisions[object_id] = Decision(
                    Decision.ASSIGNED, partner_id=waiting_worker
                )
                # Preserve the dispatch destination for the movement audit.
                previous = worker_decisions.get(waiting_worker)
                target = previous.target_area if previous is not None else None
                worker_decisions[waiting_worker] = Decision(
                    Decision.ASSIGNED, target_area=target, partner_id=object_id
                )
            else:
                park_task((type_index, offset), object_id)
                task_decisions[object_id] = _WAIT
    return outcome
