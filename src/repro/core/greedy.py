"""The SimpleGreedy baseline (Section 2.2).

For every new object the platform scans the opposite waiting set for
partners satisfying the deadline constraint and picks the one at the
shortest distance; workers always wait *in place* (the inflexible model
POLAR improves upon).

Two implementations share the same semantics:

* ``indexed=False`` — the literal linear scan, matching the paper's
  SimpleGreedy running-time behaviour ("it has to retrieve all the
  objects when starting to process a new object", Section 6.2);
* ``indexed=True`` — a cell-index ring search, used at large scale so the
  experiment harness can still afford the baseline.  Matching sizes are
  identical; only running time differs (a test asserts this).

The algorithm lives in :class:`repro.core.engine.GreedyMatcher` (a
per-arrival incremental matcher — SimpleGreedy is naturally online);
this module keeps :func:`run_simple_greedy` as the batch adapter.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import GreedyMatcher
from repro.core.outcome import AssignmentOutcome
from repro.model.events import Arrival
from repro.model.instance import Instance

__all__ = ["run_simple_greedy"]


def run_simple_greedy(
    instance: Instance,
    stream: Optional[Sequence[Arrival]] = None,
    indexed: bool = False,
) -> AssignmentOutcome:
    """Run SimpleGreedy over an instance's arrival stream.

    Args:
        instance: the problem instance.
        stream: arrival-order override.
        indexed: use the cell-index nearest search instead of the literal
            linear scan (identical matching, faster at scale).

    Returns:
        The committed matching plus per-object decisions (workers that
        never match are ``stay``; tasks are ``wait``).
    """
    # Only the indexed ring search reads the radius cutoff; the matcher
    # maintains a running maximum regardless, so the hint just replays
    # the batch implementation's exact global-max cutoff.
    max_task_duration = (
        max((t.duration for t in instance.tasks), default=0.0) if indexed else 0.0
    )
    matcher = GreedyMatcher(
        instance.travel,
        grid=instance.grid,
        indexed=indexed,
        max_task_duration=max_task_duration,
    )
    matcher.begin()
    observe = matcher.observe
    for event in instance.arrival_stream() if stream is None else stream:
        observe(event)
    return matcher.finish()
