"""The SimpleGreedy baseline (Section 2.2).

For every new object the platform scans the opposite waiting set for
partners satisfying the deadline constraint and picks the one at the
shortest distance; workers always wait *in place* (the inflexible model
POLAR improves upon).

Two implementations share the same semantics:

* ``indexed=False`` — the literal linear scan, matching the paper's
  SimpleGreedy running-time behaviour ("it has to retrieve all the
  objects when starting to process a new object", Section 6.2);
* ``indexed=True`` — a cell-index ring search, used at large scale so the
  experiment harness can still afford the baseline.  Matching sizes are
  identical; only running time differs (a test asserts this).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.cellindex import CellIndex
from repro.core.outcome import AssignmentOutcome, Decision
from repro.model.entities import Task, Worker
from repro.model.events import Arrival
from repro.model.instance import Instance
from repro.model.matching import Matching

__all__ = ["run_simple_greedy"]


def run_simple_greedy(
    instance: Instance,
    stream: Optional[Sequence[Arrival]] = None,
    indexed: bool = False,
) -> AssignmentOutcome:
    """Run SimpleGreedy over an instance's arrival stream.

    Args:
        instance: the problem instance.
        stream: arrival-order override.
        indexed: use the cell-index nearest search instead of the literal
            linear scan (identical matching, faster at scale).

    Returns:
        The committed matching plus per-object decisions (workers that
        never match are ``stay``; tasks are ``wait``).
    """
    outcome = AssignmentOutcome(algorithm="SimpleGreedy", matching=Matching())
    events = instance.arrival_stream() if stream is None else stream
    if indexed:
        _run_indexed(instance, events, outcome)
    else:
        _run_naive(instance, events, outcome)
    return outcome


def _assign(outcome: AssignmentOutcome, worker_id: int, task_id: int) -> None:
    outcome.matching.assign(worker_id, task_id)
    outcome.worker_decisions[worker_id] = Decision(Decision.ASSIGNED, partner_id=task_id)
    outcome.task_decisions[task_id] = Decision(Decision.ASSIGNED, partner_id=worker_id)


def _run_naive(instance: Instance, events, outcome: AssignmentOutcome) -> None:
    travel = instance.travel
    waiting_workers: Dict[int, Worker] = {}
    waiting_tasks: Dict[int, Task] = {}
    for event in events:
        now = event.time
        if event.is_worker:
            worker: Worker = event.entity
            best_id = None
            best_distance = None
            expired = []
            for task_id, task in waiting_tasks.items():
                if task.deadline < now:
                    expired.append(task_id)
                    continue
                distance = worker.location.distance_to(task.location)
                if now + travel.travel_time_for_distance(distance) > task.deadline:
                    continue
                if (
                    best_distance is None
                    or distance < best_distance
                    or (distance == best_distance and task_id < best_id)
                ):
                    best_id = task_id
                    best_distance = distance
            for task_id in expired:
                del waiting_tasks[task_id]
            if best_id is not None:
                del waiting_tasks[best_id]
                _assign(outcome, worker.id, best_id)
            else:
                waiting_workers[worker.id] = worker
                outcome.worker_decisions[worker.id] = Decision(Decision.STAY)
        else:
            task: Task = event.entity
            best_id = None
            best_distance = None
            expired = []
            for worker_id, worker in waiting_workers.items():
                if worker.deadline <= now:
                    expired.append(worker_id)
                    continue
                distance = worker.location.distance_to(task.location)
                if now + travel.travel_time_for_distance(distance) > task.deadline:
                    continue
                if (
                    best_distance is None
                    or distance < best_distance
                    or (distance == best_distance and worker_id < best_id)
                ):
                    best_id = worker_id
                    best_distance = distance
            for worker_id in expired:
                del waiting_workers[worker_id]
            if best_id is not None:
                del waiting_workers[best_id]
                _assign(outcome, best_id, task.id)
            else:
                waiting_tasks[task.id] = task
                outcome.task_decisions[task.id] = Decision(Decision.WAIT)


def _run_indexed(instance: Instance, events, outcome: AssignmentOutcome) -> None:
    travel = instance.travel
    worker_index = CellIndex(instance.grid)
    task_index = CellIndex(instance.grid)
    workers: Dict[int, Worker] = {}
    tasks: Dict[int, Task] = {}
    max_task_duration = max((t.duration for t in instance.tasks), default=0.0)

    for event in events:
        now = event.time
        if event.is_worker:
            worker: Worker = event.entity

            def task_feasible(task_id: int, distance: float) -> bool:
                task = tasks[task_id]
                if task.deadline < now:
                    task_index.remove(task_id)  # lazy expiry
                    return False
                return now + travel.travel_time_for_distance(distance) <= task.deadline

            best = task_index.nearest_feasible(
                worker.location,
                task_feasible,
                max_distance=travel.reachable_distance(max_task_duration),
            )
            if best is not None:
                task_index.remove(best)
                _assign(outcome, worker.id, best)
            else:
                workers[worker.id] = worker
                worker_index.add(worker.id, worker.location)
                outcome.worker_decisions[worker.id] = Decision(Decision.STAY)
        else:
            task: Task = event.entity
            budget = task.deadline - now

            def worker_feasible(worker_id: int, distance: float) -> bool:
                candidate = workers[worker_id]
                if candidate.deadline <= now:
                    worker_index.remove(worker_id)  # lazy expiry
                    return False
                return now + travel.travel_time_for_distance(distance) <= task.deadline

            best = worker_index.nearest_feasible(
                task.location,
                worker_feasible,
                max_distance=travel.reachable_distance(budget),
            )
            if best is not None:
                worker_index.remove(best)
                _assign(outcome, best, task.id)
            else:
                tasks[task.id] = task
                task_index.add(task.id, task.location)
                outcome.task_decisions[task.id] = Decision(Decision.WAIT)
