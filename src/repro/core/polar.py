"""Algorithm 2 — POLAR (Prediction-oriented OnLine task Assignment in
Real-time spatial data).

Every arriving object *occupies* an unoccupied guide node of its own
(slot, area) type — at most one object per node; objects finding no free
node are ignored (the under-prediction case).  The object then follows
the guide edge of its node: if the paired node is already occupied the
two objects are matched; otherwise a worker is dispatched to the paired
node's area and a task waits in place.

Processing one arrival touches a constant number of dictionary/list
operations, giving the paper's O(1) bound (Section 5.1).  Node selection
among free nodes of a type is uniformly random by default — the
assumption under which Lemma 1 derives the ``(1 − 1/e)² ≈ 0.40``
competitive ratio — with a deterministic first-free option.

The event loop is the harness's hottest path (100k+ arrivals per sweep
point), so it runs over the instance's cached vectorized typing pass
(:meth:`repro.model.instance.Instance.typed_arrivals`), reads the
guide's cached plain-tuple partner tables, and keeps all occupancy state
in locally-bound dicts.  The RNG call sequence is identical to the
naive formulation, so seeded results are unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.guide import OfflineGuide
from repro.core.outcome import AssignmentOutcome, Decision
from repro.errors import ConfigurationError
from repro.model.events import WORKER, Arrival
from repro.model.instance import Instance
from repro.model.matching import Matching
from repro.seeding import derive_random

__all__ = ["run_polar"]

# Shared immutable decisions for the pathways that carry no payload.
_STAY = Decision(Decision.STAY)
_WAIT = Decision(Decision.WAIT)
_IGNORED = Decision(Decision.IGNORED)


def _typed_events(
    instance: Instance,
    guide: OfflineGuide,
    stream: Optional[Sequence[Arrival]],
):
    """Yield ``(event, type_index)`` pairs for the run.

    The canonical stream reuses the instance's cached vectorized typing
    pass when the guide shares the instance's discretisation (the normal
    case); overridden streams and mismatched discretisations fall back to
    per-event ``slot_of``/``area_of``.
    """
    if (
        stream is None
        and guide.grid == instance.grid
        and guide.timeline == instance.timeline
    ):
        events, types = instance.typed_arrivals()
        return zip(events, types)
    events = instance.arrival_stream() if stream is None else stream
    timeline = guide.timeline
    grid = guide.grid
    n_areas = grid.n_areas
    return (
        (
            event,
            timeline.slot_of(event.entity.start) * n_areas
            + grid.area_of(event.entity.location),
        )
        for event in events
    )


def run_polar(
    instance: Instance,
    guide: OfflineGuide,
    stream: Optional[Sequence[Arrival]] = None,
    node_choice: str = "random",
    seed: int = 0,
) -> AssignmentOutcome:
    """Run POLAR over an instance's arrival stream.

    Args:
        instance: the problem instance (entities + discretisation).
        guide: the offline guide ``Ĝf`` from Algorithm 1.
        stream: arrival order override (defaults to the instance's
            canonical stream; the competitive-ratio experiments pass
            resampled orders).
        node_choice: ``"random"`` (Lemma 1's assumption) or ``"first"``
            (deterministic first-free node).
        seed: RNG seed for the random node choice.

    Returns:
        The committed matching plus per-object decisions.

    Raises:
        ConfigurationError: for an unknown ``node_choice``.
    """
    if node_choice not in ("random", "first"):
        raise ConfigurationError(f"unknown node_choice {node_choice!r}")
    rng = derive_random(seed, "polar")
    shuffle = rng.shuffle
    random_choice = node_choice == "random"
    outcome = AssignmentOutcome(algorithm="POLAR", matching=Matching())
    outcome.extras["guide_size"] = float(guide.matched_pairs)

    worker_capacity = guide.worker_capacity_list()
    task_capacity = guide.task_capacity_list()
    worker_partners = guide.worker_partner_table()
    task_partners = guide.task_partner_table()
    n_areas = guide.grid.n_areas

    # Occupancy state per side: free-node pools are created lazily per
    # type (shuffled once under random choice — O(1) amortised per
    # arrival), occupants are type -> {offset: object id}.
    worker_free: Dict[int, List[int]] = {}
    task_free: Dict[int, List[int]] = {}
    worker_occupant: Dict[int, Dict[int, int]] = {}
    task_occupant: Dict[int, Dict[int, int]] = {}

    assign = outcome.matching.assign
    worker_decisions = outcome.worker_decisions
    task_decisions = outcome.task_decisions

    for event, type_index in _typed_events(instance, guide, stream):
        object_id = event.entity.id
        if event.kind == WORKER:
            pool = worker_free.get(type_index)
            if pool is None:
                pool = list(range(worker_capacity[type_index]))
                if random_choice:
                    shuffle(pool)
                else:
                    pool.reverse()  # pop() then yields offsets 0, 1, 2, …
                worker_free[type_index] = pool
            if not pool:
                outcome.ignored_workers += 1
                worker_decisions[object_id] = _IGNORED
                continue
            offset = pool.pop()
            occupants = worker_occupant.get(type_index)
            if occupants is None:
                occupants = worker_occupant[type_index] = {}
            occupants[offset] = object_id
            partners = worker_partners.get(type_index)
            partner = partners[offset] if partners is not None else None
            if partner is None:
                worker_decisions[object_id] = _STAY
                continue
            task_type, task_offset = partner
            paired = task_occupant.get(task_type)
            occupant = paired.get(task_offset) if paired is not None else None
            if occupant is not None:
                assign(object_id, occupant)
                worker_decisions[object_id] = Decision(
                    Decision.ASSIGNED, partner_id=occupant
                )
                task_decisions[occupant] = Decision(
                    Decision.ASSIGNED, partner_id=object_id
                )
            else:
                worker_decisions[object_id] = Decision(
                    Decision.DISPATCHED, target_area=task_type % n_areas
                )
        else:
            pool = task_free.get(type_index)
            if pool is None:
                pool = list(range(task_capacity[type_index]))
                if random_choice:
                    shuffle(pool)
                else:
                    pool.reverse()
                task_free[type_index] = pool
            if not pool:
                outcome.ignored_tasks += 1
                task_decisions[object_id] = _IGNORED
                continue
            offset = pool.pop()
            occupants = task_occupant.get(type_index)
            if occupants is None:
                occupants = task_occupant[type_index] = {}
            occupants[offset] = object_id
            partners = task_partners.get(type_index)
            partner = partners[offset] if partners is not None else None
            if partner is None:
                task_decisions[object_id] = _WAIT
                continue
            worker_type, worker_offset = partner
            paired = worker_occupant.get(worker_type)
            occupant = paired.get(worker_offset) if paired is not None else None
            # Each node is occupied at most once and matched only through
            # its unique guide partner, so an occupied partner is
            # necessarily unmatched; Matching.assign would raise if that
            # invariant broke.
            if occupant is not None:
                assign(occupant, object_id)
                task_decisions[object_id] = Decision(
                    Decision.ASSIGNED, partner_id=occupant
                )
                # Preserve the worker's dispatch destination: the movement
                # audit needs to know the worker was pre-positioned, not
                # stationary.
                previous = worker_decisions.get(occupant)
                target = previous.target_area if previous is not None else None
                worker_decisions[occupant] = Decision(
                    Decision.ASSIGNED, target_area=target, partner_id=object_id
                )
            else:
                task_decisions[object_id] = _WAIT
    return outcome
