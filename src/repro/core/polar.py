"""Algorithm 2 — POLAR (Prediction-oriented OnLine task Assignment in
Real-time spatial data).

Every arriving object *occupies* an unoccupied guide node of its own
(slot, area) type — at most one object per node; objects finding no free
node are ignored (the under-prediction case).  The object then follows
the guide edge of its node: if the paired node is already occupied the
two objects are matched; otherwise a worker is dispatched to the paired
node's area and a task waits in place.

Processing one arrival touches a constant number of dictionary/list
operations, giving the paper's O(1) bound (Section 5.1).  Node selection
among free nodes of a type is uniformly random by default — the
assumption under which Lemma 1 derives the ``(1 − 1/e)² ≈ 0.40``
competitive ratio — with a deterministic first-free option.

The algorithm itself lives in
:class:`repro.core.engine.PolarMatcher` — a stateful incremental matcher
with the ``begin → observe → finish`` protocol — and this module keeps
:func:`run_polar` as the batch adapter: it feeds the matcher's bulk
``consume_typed`` loop from the instance's cached vectorized typing pass
(:meth:`repro.model.instance.Instance.typed_arrivals`), preserving the
inlined hot path and the RNG call sequence, so seeded results are
bit-identical to the pre-refactor implementation (parity tests assert
it).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import PolarMatcher, typed_events as _typed_events
from repro.core.guide import OfflineGuide
from repro.core.outcome import AssignmentOutcome
from repro.model.events import Arrival
from repro.model.instance import Instance

__all__ = ["run_polar"]


def run_polar(
    instance: Instance,
    guide: OfflineGuide,
    stream: Optional[Sequence[Arrival]] = None,
    node_choice: str = "random",
    seed: int = 0,
) -> AssignmentOutcome:
    """Run POLAR over an instance's arrival stream.

    Args:
        instance: the problem instance (entities + discretisation).
        guide: the offline guide ``Ĝf`` from Algorithm 1.
        stream: arrival order override (defaults to the instance's
            canonical stream; the competitive-ratio experiments pass
            resampled orders).
        node_choice: ``"random"`` (Lemma 1's assumption) or ``"first"``
            (deterministic first-free node).
        seed: RNG seed for the random node choice.

    Returns:
        The committed matching plus per-object decisions.

    Raises:
        ConfigurationError: for an unknown ``node_choice``.
    """
    matcher = PolarMatcher(guide, node_choice=node_choice, seed=seed)
    matcher.begin()
    matcher.consume_typed(_typed_events(instance, guide, stream))
    return matcher.finish()
