"""Algorithm 2 — POLAR (Prediction-oriented OnLine task Assignment in
Real-time spatial data).

Every arriving object *occupies* an unoccupied guide node of its own
(slot, area) type — at most one object per node; objects finding no free
node are ignored (the under-prediction case).  The object then follows
the guide edge of its node: if the paired node is already occupied the
two objects are matched; otherwise a worker is dispatched to the paired
node's area and a task waits in place.

Processing one arrival touches a constant number of dictionary/list
operations, giving the paper's O(1) bound (Section 5.1).  Node selection
among free nodes of a type is uniformly random by default — the
assumption under which Lemma 1 derives the ``(1 − 1/e)² ≈ 0.40``
competitive ratio — with a deterministic first-free option.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.guide import OfflineGuide
from repro.core.outcome import AssignmentOutcome, Decision
from repro.errors import ConfigurationError
from repro.model.entities import Task, Worker
from repro.model.events import Arrival
from repro.model.instance import Instance
from repro.model.matching import Matching
from repro.seeding import derive_random

__all__ = ["run_polar"]


class _OccupancySide:
    """Occupancy bookkeeping for one side (workers or tasks) of ``Ĝf``.

    Free-node pools are created lazily per type; with random node choice
    the pool is shuffled once, then popped from the end — O(1) per
    arrival.
    """

    __slots__ = ("capacity_of", "node_choice", "rng", "_free", "_occupant")

    def __init__(self, capacity_of, node_choice: str, rng) -> None:
        self.capacity_of = capacity_of
        self.node_choice = node_choice
        self.rng = rng
        self._free: Dict[int, List[int]] = {}
        self._occupant: Dict[int, Dict[int, int]] = {}

    def occupy(self, type_index: int, object_id: int) -> Optional[int]:
        """Occupy a free node of ``type_index``; return its offset or None."""
        pool = self._free.get(type_index)
        if pool is None:
            capacity = self.capacity_of(type_index)
            pool = list(range(capacity))
            if self.node_choice == "random":
                self.rng.shuffle(pool)
            else:
                pool.reverse()  # pop() then yields offsets 0, 1, 2, …
            self._free[type_index] = pool
        if not pool:
            return None
        offset = pool.pop()
        self._occupant.setdefault(type_index, {})[offset] = object_id
        return offset

    def occupant_of(self, type_index: int, offset: int) -> Optional[int]:
        """The object occupying node ``(type, offset)``, or None."""
        return self._occupant.get(type_index, {}).get(offset)


def run_polar(
    instance: Instance,
    guide: OfflineGuide,
    stream: Optional[Sequence[Arrival]] = None,
    node_choice: str = "random",
    seed: int = 0,
) -> AssignmentOutcome:
    """Run POLAR over an instance's arrival stream.

    Args:
        instance: the problem instance (entities + discretisation).
        guide: the offline guide ``Ĝf`` from Algorithm 1.
        stream: arrival order override (defaults to the instance's
            canonical stream; the competitive-ratio experiments pass
            resampled orders).
        node_choice: ``"random"`` (Lemma 1's assumption) or ``"first"``
            (deterministic first-free node).
        seed: RNG seed for the random node choice.

    Returns:
        The committed matching plus per-object decisions.

    Raises:
        ConfigurationError: for an unknown ``node_choice``.
    """
    if node_choice not in ("random", "first"):
        raise ConfigurationError(f"unknown node_choice {node_choice!r}")
    rng = derive_random(seed, "polar")
    workers_side = _OccupancySide(guide.worker_nodes, node_choice, rng)
    tasks_side = _OccupancySide(guide.task_nodes, node_choice, rng)
    outcome = AssignmentOutcome(algorithm="POLAR", matching=Matching())
    outcome.extras["guide_size"] = float(guide.matched_pairs)

    events = instance.arrival_stream() if stream is None else stream
    for event in events:
        if event.is_worker:
            _process_worker(event.entity, guide, workers_side, tasks_side, outcome)
        else:
            _process_task(event.entity, guide, workers_side, tasks_side, outcome)
    return outcome


def _worker_type(guide: OfflineGuide, worker: Worker) -> int:
    slot = guide.timeline.slot_of(worker.start)
    area = guide.grid.area_of(worker.location)
    return guide.type_index(slot, area)


def _task_type(guide: OfflineGuide, task: Task) -> int:
    slot = guide.timeline.slot_of(task.start)
    area = guide.grid.area_of(task.location)
    return guide.type_index(slot, area)


def _process_worker(
    worker: Worker,
    guide: OfflineGuide,
    workers_side: _OccupancySide,
    tasks_side: _OccupancySide,
    outcome: AssignmentOutcome,
) -> None:
    type_index = _worker_type(guide, worker)
    offset = workers_side.occupy(type_index, worker.id)
    if offset is None:
        outcome.ignored_workers += 1
        outcome.worker_decisions[worker.id] = Decision(Decision.IGNORED)
        return
    partner = guide.worker_partner(type_index, offset)
    if partner is None:
        outcome.worker_decisions[worker.id] = Decision(Decision.STAY)
        return
    task_type, task_offset = partner
    occupant = tasks_side.occupant_of(task_type, task_offset)
    if occupant is not None:
        outcome.matching.assign(worker.id, occupant)
        outcome.worker_decisions[worker.id] = Decision(
            Decision.ASSIGNED, partner_id=occupant
        )
        outcome.task_decisions[occupant] = Decision(
            Decision.ASSIGNED, partner_id=worker.id
        )
    else:
        outcome.worker_decisions[worker.id] = Decision(
            Decision.DISPATCHED, target_area=guide.area_of_type(task_type)
        )


def _process_task(
    task: Task,
    guide: OfflineGuide,
    workers_side: _OccupancySide,
    tasks_side: _OccupancySide,
    outcome: AssignmentOutcome,
) -> None:
    type_index = _task_type(guide, task)
    offset = tasks_side.occupy(type_index, task.id)
    if offset is None:
        outcome.ignored_tasks += 1
        outcome.task_decisions[task.id] = Decision(Decision.IGNORED)
        return
    partner = guide.task_partner(type_index, offset)
    if partner is None:
        outcome.task_decisions[task.id] = Decision(Decision.WAIT)
        return
    worker_type, worker_offset = partner
    occupant = workers_side.occupant_of(worker_type, worker_offset)
    # Each node is occupied at most once and matched only through its
    # unique guide partner, so an occupied partner is necessarily
    # unmatched; Matching.assign would raise if that invariant broke.
    if occupant is not None:
        outcome.matching.assign(occupant, task.id)
        outcome.task_decisions[task.id] = Decision(
            Decision.ASSIGNED, partner_id=occupant
        )
        # Preserve the worker's dispatch destination: the movement audit
        # needs to know the worker was pre-positioned, not stationary.
        previous = outcome.worker_decisions.get(occupant)
        target = previous.target_area if previous is not None else None
        outcome.worker_decisions[occupant] = Decision(
            Decision.ASSIGNED, target_area=target, partner_id=task.id
        )
    else:
        outcome.task_decisions[task.id] = Decision(Decision.WAIT)
