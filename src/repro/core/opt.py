"""OPT — the offline optimal assignment with full future knowledge.

OPT sees every worker and task up front (Example 1's green arrows): it
may move a worker toward a future task from the moment the worker
appears, so pair feasibility is the *pre-dispatch* Definition 4
predicate.  The optimum is then a maximum bipartite matching.

Two modes:

* ``"exact"`` — one node per real object, feasibility edges enumerated
  through a cell index, Hopcroft–Karp.  The reference result; cost grows
  with ``|W|·|R|`` density, which is why the paper omits OPT's time and
  memory at scale (Section 6.2, scalability).
* ``"compressed"`` — snap objects to their (slot, area) types and solve
  the transportation relaxation (same machinery as the guide).  The
  paper's own analysis argues the discretisation error "can be ignored"
  (Section 5.1); tests quantify it on small instances.

``"auto"`` picks exact below a size threshold, compressed above.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.cellindex import CellIndex
from repro.core.guide import enumerate_lanes
from repro.core.outcome import AssignmentOutcome, Decision
from repro.errors import ConfigurationError
from repro.graph.bipartite import BipartiteGraph, hopcroft_karp
from repro.graph.transportation import TransportationProblem
from repro.model.instance import Instance
from repro.model.matching import Matching
from repro.spatial.timeslots import Timeline

__all__ = ["run_opt"]

_AUTO_EXACT_LIMIT = 4_000  # max(|W|, |R|) beyond which "auto" compresses


def run_opt(instance: Instance, method: str = "auto") -> AssignmentOutcome:
    """Compute OPT for an instance.

    Args:
        instance: the problem instance.
        method: ``"exact"``, ``"compressed"``, or ``"auto"``.

    Returns:
        For ``"exact"``, the optimal matching itself; for
        ``"compressed"``, an outcome whose ``size`` is the optimal value
        (``extras["matching_size"]``) without per-object pairs.

    Raises:
        ConfigurationError: for an unknown method.
    """
    if method == "auto":
        method = (
            "exact"
            if max(instance.n_workers, instance.n_tasks) <= _AUTO_EXACT_LIMIT
            else "compressed"
        )
    if method == "exact":
        return _run_exact(instance)
    if method == "compressed":
        return _run_compressed(instance)
    raise ConfigurationError(f"unknown OPT method {method!r}")


def _run_exact(instance: Instance) -> AssignmentOutcome:
    travel = instance.travel
    tasks = instance.tasks
    index = CellIndex(instance.grid)
    for task in tasks:
        index.add(task.id, task.location)
    task_pos = {task.id: i for i, task in enumerate(tasks)}

    max_task_duration = max((t.duration for t in tasks), default=0.0)
    graph = BipartiteGraph(instance.n_workers, instance.n_tasks)
    worker_pos = {}
    for w_index, worker in enumerate(instance.workers):
        worker_pos[worker.id] = w_index
        # d <= Dr + (Sr - Sw) and Sr < Sw + Dw bound the radius by
        # v * (Dr_max + Dw); exact feasibility is rechecked per pair.
        radius = travel.reachable_distance(max_task_duration + worker.duration)
        for task_id, distance in index.within(worker.location, radius):
            task = instance.task(task_id)
            if not task.start < worker.deadline:
                continue
            travel_minutes = travel.travel_time_for_distance(distance)
            if task.duration - (worker.start - task.start) - travel_minutes >= 0.0:
                graph.add_edge(w_index, task_pos[task_id])

    result = hopcroft_karp(graph)
    outcome = AssignmentOutcome(algorithm="OPT", matching=Matching())
    for w_index, t_index in result.pairs():
        worker_id = instance.workers[w_index].id
        task_id = tasks[t_index].id
        outcome.matching.assign(worker_id, task_id)
        outcome.worker_decisions[worker_id] = Decision(
            Decision.ASSIGNED, partner_id=task_id
        )
        outcome.task_decisions[task_id] = Decision(
            Decision.ASSIGNED, partner_id=worker_id
        )
    outcome.extras["mode"] = 0.0  # 0 = exact, 1 = compressed
    outcome.extras["edges"] = float(graph.n_edges)
    return outcome


def _run_compressed(instance: Instance) -> AssignmentOutcome:
    # Snap at a *refined* resolution: compression is exact only in the
    # limit of vanishing cells/slots, and with the taxi configuration's
    # two-hour slots the raw discretisation visibly underestimates OPT
    # (a greedy online run can then appear to beat it).  Refining slots
    # to <= 15 minutes keeps the representative-time error small at
    # negligible extra cost; the grid is left as-is (unit cells are
    # already fine relative to travel radii).
    refine = max(1, int(round(instance.timeline.slot_minutes / 15.0)))
    timeline = Timeline(
        n_slots=instance.timeline.n_slots * refine,
        slot_minutes=instance.timeline.slot_minutes / refine,
        t0=instance.timeline.t0,
    )
    worker_counts = np.zeros((timeline.n_slots, instance.grid.n_areas), dtype=np.int64)
    for worker in instance.workers:
        worker_counts[
            timeline.slot_of(worker.start), instance.grid.area_of(worker.location)
        ] += 1
    task_counts = np.zeros_like(worker_counts)
    for task in instance.tasks:
        task_counts[
            timeline.slot_of(task.start), instance.grid.area_of(task.location)
        ] += 1
    worker_duration = max((w.duration for w in instance.workers), default=1.0)
    task_duration = max((t.duration for t in instance.tasks), default=1.0)
    lanes = enumerate_lanes(
        worker_counts,
        task_counts,
        instance.grid,
        timeline,
        instance.travel,
        worker_duration,
        task_duration,
    )
    try:
        from repro.core.guide import _solve_with_scipy

        lane_flow = _solve_with_scipy(worker_counts.reshape(-1), task_counts.reshape(-1), lanes)
        total = sum(lane_flow.values())
    except ImportError:  # pragma: no cover - scipy installed in CI
        supplies = worker_counts.reshape(-1).tolist()
        demands = task_counts.reshape(-1).tolist()
        problem = TransportationProblem(supplies, demands)
        for u, v, _distance in lanes:
            problem.add_lane(u, v)
        total = problem.solve(method="dinic").total

    outcome = AssignmentOutcome(algorithm="OPT", matching=Matching())
    outcome.extras["matching_size"] = float(total)
    outcome.extras["mode"] = 1.0
    outcome.extras["lanes"] = float(len(lanes))
    return outcome
