"""The incremental matcher engine: one observe/decide protocol for every
online algorithm.

FTOA's online algorithms consume "a single totally-ordered stream of
arrivals" (Definition 4), so the engine models each of them as a stateful
:class:`Matcher` with a stepwise lifecycle::

    matcher.begin()                    # start a run (matchers are reusable)
    decision = matcher.observe(event)  # one Decision per event, O(event)
    outcome = matcher.finish()         # the final AssignmentOutcome

:meth:`Matcher.observe` accepts the full
:data:`~repro.model.events.StreamEvent` union.  Arrivals are the paper's
event; the churn events generalise the model to real platforms:

* ``Departure`` — the object leaves early.  All matchers free its state
  *eagerly*: POLAR returns the object's guide node to the free pool,
  POLAR-OP vacates its association slot, and the pool-based matchers
  (SimpleGreedy, GR, TGOA) purge it from their waiting pools and cell
  indexes instead of waiting for lazy deadline expiry.  Departures of
  matched objects are no-ops (the pair stands); departures of objects
  never seen are rejected with :class:`~repro.errors.SimulationError`.
* ``Move`` — the object relocates with its deadline preserved.  Pool
  matchers reindex it under the new location and immediately re-attempt
  a match at the move's instant; POLAR / POLAR-OP free the old node and
  re-admit the object under its new (slot, area) type.  Churn for an
  already-expired object is a no-op (the object is gone, whether or not
  lazy expiry has swept its pool entry yet).

Churn-free streams never enter these paths, so every existing stream
stays bit-identical (matchings, decisions, counters, RNG draws) — the
parity tests enforce it.

Five matchers implement the protocol — :class:`PolarMatcher` (Algorithm
2), :class:`PolarOpMatcher` (Algorithm 3), :class:`GreedyMatcher`
(SimpleGreedy), :class:`BatchMatcher` (GR) and :class:`TgoaMatcher` — and
each legacy ``run_*`` entry point in :mod:`repro.core` is now a thin
adapter over its matcher, with parity tests asserting bit-identical
matchings and decisions.

Performance notes (preserving PR 1's hot paths):

* POLAR and POLAR-OP additionally expose :meth:`TypedMatcher.consume_typed`,
  a bulk entry point that binds all loop state into locals once and
  consumes ``(arrival, flat type)`` pairs — exactly the former inlined
  ``run_polar`` / ``run_polar_op`` event loops.  ``observe`` funnels a
  single pair through the same loop, so the stepwise and bulk paths can
  never diverge.  The adapters and
  :class:`repro.serving.session.MatchingSession` feed ``consume_typed``
  from the instance's cached vectorized typing pass
  (:meth:`repro.model.instance.Instance.typed_arrivals`); stepwise
  serving falls back to scalar ``slot_of``/``area_of`` per arrival, which
  computes identical types (the vectorized pass mirrors the scalar
  arithmetic by construction).
* :class:`GreedyMatcher` and :class:`TgoaMatcher` replace the batch
  implementations' look-ahead ``max(task durations)`` ring-search cutoff
  with a *running* maximum over arrived tasks.  The cutoff only bounds
  the candidate search radius — every waiting task's budget is at most
  its own duration, which the running maximum dominates — so matchings
  are unchanged (parity tests assert it) while the matcher needs no
  future knowledge.
* :class:`TgoaMatcher` genuinely needs one piece of stream metadata up
  front: the halfway index where TGOA switches from greedy to
  maximum-matching service.  The adapter derives it from ``len(stream)``;
  streaming deployments pass an estimate explicitly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cellindex import CellIndex
from repro.core.guide import OfflineGuide
from repro.core.outcome import DEPARTED, IGNORED, STAY, WAIT, AssignmentOutcome, Decision
from repro.errors import ConfigurationError, SimulationError
from repro.graph.bipartite import BipartiteGraph, hopcroft_karp
from repro.model.entities import Task, Worker
from repro.model.events import (
    ARRIVAL,
    DEPARTURE,
    MOVE,
    WORKER,
    Arrival,
    Departure,
    Move,
    StreamEvent,
)
from repro.model.instance import Instance
from repro.model.matching import Matching
from repro.seeding import derive_random

__all__ = [
    "Matcher",
    "MatcherProfile",
    "TypedMatcher",
    "PolarMatcher",
    "PolarOpMatcher",
    "GreedyMatcher",
    "BatchMatcher",
    "TgoaMatcher",
    "STREAM_ALGORITHMS",
    "create_matcher",
    "typed_events",
]


# ---------------------------------------------------------------------- #
# Typed-event iteration (shared by the POLAR adapters and the session)
# ---------------------------------------------------------------------- #


def typed_events(
    instance: Instance,
    guide: OfflineGuide,
    stream: Optional[Sequence[Arrival]],
) -> Iterable[Tuple[Arrival, int]]:
    """Yield ``(arrival, flat type)`` pairs for a guide-driven run.

    The canonical stream reuses the instance's cached vectorized typing
    pass when the guide shares the instance's discretisation (the normal
    case); overridden streams and mismatched discretisations fall back to
    per-event ``slot_of``/``area_of`` — the same arithmetic, applied one
    arrival at a time.
    """
    if (
        stream is None
        and guide.grid == instance.grid
        and guide.timeline == instance.timeline
    ):
        events, types = instance.typed_arrivals()
        return zip(events, types)
    events = instance.arrival_stream() if stream is None else stream
    timeline = guide.timeline
    grid = guide.grid
    n_areas = grid.n_areas
    return (
        (
            event,
            timeline.slot_of(event.entity.start) * n_areas
            + grid.area_of(event.entity.location),
        )
        for event in events
    )


# ---------------------------------------------------------------------- #
# The protocol
# ---------------------------------------------------------------------- #


class _ObjectRef:
    """A minimal stand-in entity carrying only an id.

    POLAR / POLAR-OP never store entity records (their per-arrival state
    is a node offset), so a churn re-entry only knows the object's id —
    which is all ``consume_typed`` reads.
    """

    __slots__ = ("id",)

    def __init__(self, object_id: int) -> None:
        self.id = object_id


class _Relocation:
    """A pseudo-arrival feeding a moved object back through the arrival
    logic: same id/start/duration, new location, served at the move's
    own instant (``time`` is the move time, not the entity's start)."""

    __slots__ = ("time", "seq", "kind", "entity")

    def __init__(self, time: float, seq: int, kind: str, entity) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.entity = entity

    @property
    def is_worker(self) -> bool:
        return self.kind == WORKER

    @property
    def is_task(self) -> bool:
        return self.kind != WORKER


class MatcherProfile:
    """Cheap per-run profiling counters every matcher carries.

    The serving stack surfaces these per shard (``/snapshot`` shard
    rows), giving the live visibility the ROADMAP's autotuning arc
    needs: how often the ring machinery vs. the dense scan runs, how
    far rings expand, and how large the GR bipartite builds get.
    Incrementing is plain integer arithmetic on hot paths that already
    do orders of magnitude more work per call; counters reset on
    :meth:`Matcher.begin`, like every other live counter.
    """

    __slots__ = ("ring_expansions", "index_queries", "pool_scans",
                 "bipartite_builds", "bipartite_nodes", "bipartite_edges")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.ring_expansions = 0
        self.index_queries = 0
        self.pool_scans = 0
        self.bipartite_builds = 0
        self.bipartite_nodes = 0
        self.bipartite_edges = 0

    def as_dict(self) -> Optional[dict]:
        """Counters as a JSON-ready dict, or None while all zero."""
        payload = {
            "ring_expansions": self.ring_expansions,
            "index_queries": self.index_queries,
            "pool_scans": self.pool_scans,
            "bipartite_builds": self.bipartite_builds,
            "bipartite_nodes": self.bipartite_nodes,
            "bipartite_edges": self.bipartite_edges,
        }
        if not any(payload.values()):
            return None
        return payload


class Matcher:
    """A stateful incremental assignment algorithm.

    Lifecycle: :meth:`begin` starts (or restarts) a run, :meth:`observe`
    consumes one arrival and returns the platform's immediate
    :class:`~repro.core.outcome.Decision` for it, :meth:`finish` closes
    the stream (flushing any end-of-stream work, e.g. GR's final windows)
    and returns the :class:`~repro.core.outcome.AssignmentOutcome`.

    Matchers are reusable: configuration lives on the instance, per-run
    state is rebuilt by :meth:`begin` (including RNG re-derivation, so a
    seeded matcher replays the identical random stream each run).

    Live counters (:attr:`matched`, :attr:`workers_seen`, …) are readable
    mid-stream; the session layer samples them for snapshots.
    """

    algorithm: str = "matcher"

    def __init__(self) -> None:
        self._outcome: Optional[AssignmentOutcome] = None
        self.profile = MatcherProfile()

    # -- lifecycle ----------------------------------------------------- #

    def begin(self) -> None:
        """Start a fresh run, discarding any previous per-run state."""
        self._outcome = AssignmentOutcome(
            algorithm=self.algorithm, matching=Matching()
        )
        self.profile.reset()
        self._reset(self._outcome)

    def observe(self, event: StreamEvent) -> Decision:
        """Process one stream event; returns the immediate decision.

        Arrivals flow through the algorithm's arrival logic; churn
        events (``Departure`` / ``Move``) flow through the shared churn
        protocol (see the module docstring for per-matcher reactions).
        Decisions may be superseded later in the stream (a parked worker
        that eventually matches reports ``stay`` now and ``assigned`` in
        the final outcome).

        Raises:
            SimulationError: for a churn event referencing an object the
                matcher never saw arrive (depart/move-before-arrive).
            ConfigurationError: for an unknown event type.
        """
        event_kind = getattr(event, "event_kind", None)
        if event_kind is ARRIVAL:
            return self._observe_arrival(event)
        if event_kind is DEPARTURE:
            return self._handle_departure(event)
        if event_kind is MOVE:
            return self._handle_move(event)
        raise ConfigurationError(
            f"{self.algorithm}: cannot observe event {event!r}"
        )

    def finish(self) -> AssignmentOutcome:
        """Close the stream and return the run's outcome.

        After ``finish`` the matcher must be :meth:`begin`-ed again
        before observing further arrivals.
        """
        outcome = self._require_run()
        self._finalize(outcome)
        self._outcome = None
        return outcome

    # -- churn protocol ------------------------------------------------ #

    def _handle_departure(self, event: Departure) -> Decision:
        """Shared departure protocol: reject-unknown, no-op-settled,
        eagerly purge waiting objects (per-matcher ``_purge_object``)."""
        outcome = self._require_run()
        self._before_churn(event, outcome)
        decisions = (
            outcome.worker_decisions if event.is_worker else outcome.task_decisions
        )
        current = decisions.get(event.object_id)
        if current is None:
            raise SimulationError(
                f"{self.algorithm}: departure of {event.kind} "
                f"{event.object_id} before its arrival"
            )
        if not self._is_waiting(event.kind, event.object_id, event.time):
            # Matched, ignored, expired, or already departed: nothing to
            # free — the recorded decision stands.
            return current
        self._mark_departed(event.kind, event.object_id, outcome)
        return DEPARTED

    def _handle_move(self, event: Move) -> Decision:
        """Shared move protocol: reject-unknown, no-op-settled, then the
        per-matcher ``_relocate`` (reindex + immediate re-match)."""
        outcome = self._require_run()
        self._before_churn(event, outcome)
        decisions = (
            outcome.worker_decisions if event.is_worker else outcome.task_decisions
        )
        current = decisions.get(event.object_id)
        if current is None:
            raise SimulationError(
                f"{self.algorithm}: move of {event.kind} "
                f"{event.object_id} before its arrival"
            )
        if not self._is_waiting(event.kind, event.object_id, event.time):
            return current
        return self._relocate(event, outcome)

    @staticmethod
    def _expired_at(kind: str, entity, now: float) -> bool:
        """The pool matchers' shared expiry convention at instant ``now``
        (workers need strictly positive remaining time, ``<=``; tasks
        survive through their deadline instant, ``<``)."""
        if kind == WORKER:
            return entity.deadline <= now
        return entity.deadline < now

    def _take_for_move(self, event: Move, pool, outcome: AssignmentOutcome):
        """The pool matchers' shared move preamble.

        The object (guaranteed live and waiting — the deadline-aware
        ``_is_waiting`` gate filtered expired ones into no-ops) is
        purged from all matcher state, the move counter ticks, and the
        relocated entity (deadline preserved, new location) is returned
        for the matcher-specific re-entry.  Callers validate the
        destination *before* this — no state may change if the location
        is rejected.
        """
        entity = pool[event.object_id]
        self._purge_object(event.kind, event.object_id)
        outcome.moves += 1
        return replace(entity, location=event.location)

    def _mark_departed(
        self, kind: str, object_id: int, outcome: AssignmentOutcome
    ) -> None:
        """Purge a waiting object and record its ``departed`` decision."""
        self._purge_object(kind, object_id)
        if kind == WORKER:
            outcome.departed_workers += 1
            outcome.worker_decisions[object_id] = DEPARTED
        else:
            outcome.departed_tasks += 1
            outcome.task_decisions[object_id] = DEPARTED

    # -- subclass hooks ------------------------------------------------ #

    def _observe_arrival(self, arrival: Arrival) -> Decision:
        """The algorithm's arrival logic (one decision per arrival)."""
        raise NotImplementedError

    def _before_churn(self, event: StreamEvent, outcome: AssignmentOutcome) -> None:
        """Pre-churn hook (GR advances its batch windows here)."""

    def _is_waiting(self, kind: str, object_id: int, now: float) -> bool:
        """Whether the object is live, unmatched state the matcher holds
        at instant ``now``.

        Pool matchers treat an expired entry as *not* waiting even when
        lazy expiry has not swept it yet — indexed and dense variants
        must answer identically regardless of their internal cleanup
        cadence.  POLAR / POLAR-OP never consult deadlines and ignore
        ``now``.
        """
        raise NotImplementedError

    def _purge_object(self, kind: str, object_id: int) -> None:
        """Eagerly drop one *waiting* object from all matcher state."""
        raise NotImplementedError

    def _relocate(self, event: Move, outcome: AssignmentOutcome) -> Decision:
        """Reindex one *waiting* object under ``event.location``."""
        raise NotImplementedError

    def _reset(self, outcome: AssignmentOutcome) -> None:
        """Rebuild per-run state (called by :meth:`begin`)."""
        raise NotImplementedError

    def _finalize(self, outcome: AssignmentOutcome) -> None:
        """End-of-stream work (default: none)."""

    def _require_run(self) -> AssignmentOutcome:
        if self._outcome is None:
            raise ConfigurationError(
                f"{self.algorithm}: call begin() before observe()/finish()"
            )
        return self._outcome

    # -- live metrics -------------------------------------------------- #

    @property
    def matched(self) -> int:
        """Committed pairs so far in the active run."""
        return self._require_run().matching.size

    @property
    def workers_seen(self) -> int:
        """Distinct workers observed so far (every arrival is decided)."""
        return len(self._require_run().worker_decisions)

    @property
    def tasks_seen(self) -> int:
        """Distinct tasks observed so far."""
        return len(self._require_run().task_decisions)

    @property
    def ignored_workers(self) -> int:
        """Workers ignored so far (no guide node of their type)."""
        return self._require_run().ignored_workers

    @property
    def ignored_tasks(self) -> int:
        """Tasks ignored so far."""
        return self._require_run().ignored_tasks

    @property
    def departed_workers(self) -> int:
        """Workers that left unmatched via churn departures so far."""
        return self._require_run().departed_workers

    @property
    def departed_tasks(self) -> int:
        """Tasks withdrawn unmatched via churn departures so far."""
        return self._require_run().departed_tasks

    @property
    def moves(self) -> int:
        """Effective churn relocations (moves of waiting objects) so far."""
        return self._require_run().moves


# ---------------------------------------------------------------------- #
# POLAR / POLAR-OP (guide-driven, typed arrivals)
# ---------------------------------------------------------------------- #


class TypedMatcher(Matcher):
    """Base for the guide-driven matchers that consume typed arrivals.

    Subclasses implement :meth:`consume_typed`, the single tight loop
    over ``(arrival, flat type)`` pairs; :meth:`observe` computes one
    arrival's type with the scalar ``slot_of``/``area_of`` path and
    funnels it through the same loop, so stepwise serving and bulk
    replays share one implementation.  Churn re-entries (a moved object
    re-admitted under its new area) funnel through the same loop too,
    keeping the object's original arrival *slot* and retyping only the
    area.
    """

    def __init__(self, guide: OfflineGuide) -> None:
        super().__init__()
        self.guide = guide
        self.grid = guide.grid
        self.timeline = guide.timeline
        self._n_areas = guide.grid.n_areas
        self._worker_capacity = guide.worker_capacity_list()
        self._task_capacity = guide.task_capacity_list()
        self._worker_partners = guide.worker_partner_table()
        self._task_partners = guide.task_partner_table()

    def type_of(self, arrival: Arrival) -> int:
        """The flat (slot, area) type of one arrival under the guide."""
        entity = arrival.entity
        return (
            self.timeline.slot_of(entity.start) * self._n_areas
            + self.grid.area_of(entity.location)
        )

    def consume_typed(self, pairs: Iterable[Tuple[Arrival, int]]) -> None:
        """Consume ``(arrival, flat type)`` pairs through the event loop."""
        raise NotImplementedError

    def _observe_arrival(self, arrival: Arrival) -> Decision:
        self._require_run()
        self.consume_typed(((arrival, self.type_of(arrival)),))
        outcome = self._outcome
        if arrival.kind == WORKER:
            return outcome.worker_decisions[arrival.entity.id]
        return outcome.task_decisions[arrival.entity.id]

    def _readmit(self, event: Move, node_type: int, new_area: int, outcome) -> Decision:
        """Feed a moved object back through the typed event loop.

        The new flat type keeps the node's original *slot* and swaps in
        ``new_area`` (validated by the caller *before* any state was
        touched); re-entry may match immediately, be re-parked, or —
        when the new type has no free node — be ignored.  A re-ignored
        object counts in ``ignored_*`` like an ignored arrival: either
        way the platform turned it away for lack of a node of the type
        it showed up at.
        """
        slot = node_type // self._n_areas
        new_type = slot * self._n_areas + new_area
        outcome.moves += 1
        shim = _Relocation(event.time, event.seq, event.kind, _ObjectRef(event.object_id))
        self.consume_typed(((shim, new_type),))
        decisions = (
            outcome.worker_decisions if event.is_worker else outcome.task_decisions
        )
        return decisions[event.object_id]

    def _reset(self, outcome: AssignmentOutcome) -> None:
        outcome.extras["guide_size"] = float(self.guide.matched_pairs)


class PolarMatcher(TypedMatcher):
    """Algorithm 2 — POLAR as an incremental matcher.

    Every arriving object *occupies* an unoccupied guide node of its own
    (slot, area) type; objects finding no free node are ignored.  The
    object follows its node's guide edge: an occupied partner node means
    a match, otherwise a worker is dispatched toward the partner's area
    and a task waits in place.  O(1) state per arrival (Section 5.1).

    Args:
        guide: the offline guide ``Ĝf`` from Algorithm 1.
        node_choice: ``"random"`` (Lemma 1's assumption) or ``"first"``.
        seed: RNG seed for the random node choice.

    Raises:
        ConfigurationError: for an unknown ``node_choice``.
    """

    algorithm = "POLAR"

    def __init__(
        self, guide: OfflineGuide, node_choice: str = "random", seed: int = 0
    ) -> None:
        if node_choice not in ("random", "first"):
            raise ConfigurationError(f"unknown node_choice {node_choice!r}")
        super().__init__(guide)
        self.node_choice = node_choice
        self.seed = seed

    def _reset(self, outcome: AssignmentOutcome) -> None:
        super()._reset(outcome)
        self._rng = derive_random(self.seed, "polar")
        # Occupancy state per side: free-node pools are created lazily per
        # type (shuffled once under random choice — O(1) amortised per
        # arrival), occupants are type -> {offset: object id}.
        self._worker_free: Dict[int, List[int]] = {}
        self._task_free: Dict[int, List[int]] = {}
        self._worker_occupant: Dict[int, Dict[int, int]] = {}
        self._task_occupant: Dict[int, Dict[int, int]] = {}
        # Waiting-object index for churn: id -> (type, offset) of the
        # node an unmatched occupant holds.  Entries are dropped the
        # moment the object matches, so membership == "waiting".
        self._worker_node: Dict[int, Tuple[int, int]] = {}
        self._task_node: Dict[int, Tuple[int, int]] = {}

    def consume_typed(self, pairs: Iterable[Tuple[Arrival, int]]) -> None:
        outcome = self._require_run()
        shuffle = self._rng.shuffle
        random_choice = self.node_choice == "random"
        worker_capacity = self._worker_capacity
        task_capacity = self._task_capacity
        worker_partners = self._worker_partners
        task_partners = self._task_partners
        n_areas = self._n_areas
        worker_free = self._worker_free
        task_free = self._task_free
        worker_occupant = self._worker_occupant
        task_occupant = self._task_occupant
        worker_node = self._worker_node
        task_node = self._task_node
        assign = outcome.matching.assign
        worker_decisions = outcome.worker_decisions
        task_decisions = outcome.task_decisions

        for event, type_index in pairs:
            object_id = event.entity.id
            if event.kind == WORKER:
                pool = worker_free.get(type_index)
                if pool is None:
                    pool = list(range(worker_capacity[type_index]))
                    if random_choice:
                        shuffle(pool)
                    else:
                        pool.reverse()  # pop() then yields offsets 0, 1, 2, …
                    worker_free[type_index] = pool
                if not pool:
                    outcome.ignored_workers += 1
                    worker_decisions[object_id] = IGNORED
                    continue
                offset = pool.pop()
                occupants = worker_occupant.get(type_index)
                if occupants is None:
                    occupants = worker_occupant[type_index] = {}
                occupants[offset] = object_id
                partners = worker_partners.get(type_index)
                partner = partners[offset] if partners is not None else None
                if partner is None:
                    worker_node[object_id] = (type_index, offset)
                    worker_decisions[object_id] = STAY
                    continue
                task_type, task_offset = partner
                paired = task_occupant.get(task_type)
                occupant = paired.get(task_offset) if paired is not None else None
                if occupant is not None:
                    del task_node[occupant]  # the task stops waiting
                    assign(object_id, occupant)
                    worker_decisions[object_id] = Decision(
                        Decision.ASSIGNED, partner_id=occupant
                    )
                    task_decisions[occupant] = Decision(
                        Decision.ASSIGNED, partner_id=object_id
                    )
                else:
                    worker_node[object_id] = (type_index, offset)
                    worker_decisions[object_id] = Decision(
                        Decision.DISPATCHED, target_area=task_type % n_areas
                    )
            else:
                pool = task_free.get(type_index)
                if pool is None:
                    pool = list(range(task_capacity[type_index]))
                    if random_choice:
                        shuffle(pool)
                    else:
                        pool.reverse()
                    task_free[type_index] = pool
                if not pool:
                    outcome.ignored_tasks += 1
                    task_decisions[object_id] = IGNORED
                    continue
                offset = pool.pop()
                occupants = task_occupant.get(type_index)
                if occupants is None:
                    occupants = task_occupant[type_index] = {}
                occupants[offset] = object_id
                partners = task_partners.get(type_index)
                partner = partners[offset] if partners is not None else None
                if partner is None:
                    task_node[object_id] = (type_index, offset)
                    task_decisions[object_id] = WAIT
                    continue
                worker_type, worker_offset = partner
                paired = worker_occupant.get(worker_type)
                occupant = paired.get(worker_offset) if paired is not None else None
                # Each node is occupied at most once and matched only
                # through its unique guide partner, so an occupied partner
                # is necessarily unmatched; Matching.assign would raise if
                # that invariant broke.
                if occupant is not None:
                    del worker_node[occupant]  # the worker stops waiting
                    assign(occupant, object_id)
                    task_decisions[object_id] = Decision(
                        Decision.ASSIGNED, partner_id=occupant
                    )
                    # Preserve the worker's dispatch destination: the
                    # movement audit needs to know the worker was
                    # pre-positioned, not stationary.
                    previous = worker_decisions.get(occupant)
                    target = previous.target_area if previous is not None else None
                    worker_decisions[occupant] = Decision(
                        Decision.ASSIGNED, target_area=target, partner_id=object_id
                    )
                else:
                    task_node[object_id] = (type_index, offset)
                    task_decisions[object_id] = WAIT

    # -- churn hooks --------------------------------------------------- #

    def _is_waiting(self, kind: str, object_id: int, now: float) -> bool:
        node_map = self._worker_node if kind == WORKER else self._task_node
        return object_id in node_map

    def _purge_object(self, kind: str, object_id: int) -> None:
        """Vacate the object's node: the occupancy slot is freed and the
        offset returns to the free pool for the next arrival of the
        type, restoring the node count Algorithm 2 budgeted."""
        if kind == WORKER:
            type_index, offset = self._worker_node.pop(object_id)
            del self._worker_occupant[type_index][offset]
            self._worker_free[type_index].append(offset)
        else:
            type_index, offset = self._task_node.pop(object_id)
            del self._task_occupant[type_index][offset]
            self._task_free[type_index].append(offset)

    def _relocate(self, event: Move, outcome: AssignmentOutcome) -> Decision:
        # POLAR is guide-driven and never consults deadlines, so every
        # move of a waiting object is a reindex: vacate the old node and
        # re-admit under the (original slot, new area) type.  The new
        # area is resolved first — an out-of-grid location must raise
        # before any state is touched, not strand a half-purged object.
        new_area = self.grid.area_of(event.location)
        node_map = self._worker_node if event.is_worker else self._task_node
        node_type, _offset = node_map[event.object_id]
        self._purge_object(event.kind, event.object_id)
        return self._readmit(event, node_type, new_area, outcome)


_NodeKey = Tuple[int, int]


class _AssociationSide:
    """Association bookkeeping for one side of the guide (POLAR-OP).

    Each node keeps a FIFO of associated-but-unmatched object ids; nodes
    are reusable so there is no free pool, just the queues.  A reverse
    ``id -> node`` map (maintained exactly: set on park, dropped on pop)
    lets churn events find and vacate an object's association slot.
    """

    __slots__ = ("_queues", "_node_of")

    def __init__(self) -> None:
        self._queues: Dict[_NodeKey, Deque[int]] = {}
        self._node_of: Dict[int, _NodeKey] = {}

    def park(self, node: _NodeKey, object_id: int) -> None:
        """Record ``object_id`` as waiting on ``node``."""
        self._queues.setdefault(node, deque()).append(object_id)
        self._node_of[object_id] = node

    def pop_waiting(self, node: _NodeKey) -> Optional[int]:
        """Pop the oldest unmatched object on ``node``, or None."""
        queue = self._queues.get(node)
        if queue:
            object_id = queue.popleft()
            del self._node_of[object_id]
            return object_id
        return None

    def contains(self, object_id: int) -> bool:
        """Whether ``object_id`` is currently parked (waiting)."""
        return object_id in self._node_of

    def remove(self, object_id: int) -> _NodeKey:
        """Vacate a parked object's association slot; returns its node.

        Raises:
            KeyError: if the object is not parked.
        """
        node = self._node_of.pop(object_id)
        self._queues[node].remove(object_id)
        return node


class PolarOpMatcher(TypedMatcher):
    """Algorithm 3 — POLAR-OP (node re-use, "associate") incrementally.

    An arrival picks a node of its type, follows the node's guide edge,
    and matches the oldest unmatched object associated with the paired
    node if one exists; otherwise it parks itself on its own node.
    Objects are only ignored when their type has zero predicted nodes.

    Args:
        guide: the offline guide ``Ĝf``.
        node_choice: ``"round_robin"`` (default, POLAR's discipline for
            the first ``a_ij`` arrivals, even re-use after) or
            ``"random"`` (Lemma 3's uniform choice).
        seed: RNG seed for the random choice.

    Raises:
        ConfigurationError: for an unknown ``node_choice``.
    """

    algorithm = "POLAR-OP"

    def __init__(
        self, guide: OfflineGuide, node_choice: str = "round_robin", seed: int = 0
    ) -> None:
        if node_choice not in ("random", "round_robin"):
            raise ConfigurationError(f"unknown node_choice {node_choice!r}")
        super().__init__(guide)
        self.node_choice = node_choice
        self.seed = seed

    def _reset(self, outcome: AssignmentOutcome) -> None:
        super()._reset(outcome)
        self._rng = derive_random(self.seed, "polar-op")
        self._cursor: Dict[Tuple[str, int], int] = {}
        self._worker_parked = _AssociationSide()
        self._task_parked = _AssociationSide()

    def consume_typed(self, pairs: Iterable[Tuple[Arrival, int]]) -> None:
        outcome = self._require_run()
        randrange = self._rng.randrange
        random_choice = self.node_choice == "random"
        cursor = self._cursor
        worker_capacity = self._worker_capacity
        task_capacity = self._task_capacity
        worker_partners = self._worker_partners
        task_partners = self._task_partners
        n_areas = self._n_areas
        assign = outcome.matching.assign
        worker_decisions = outcome.worker_decisions
        task_decisions = outcome.task_decisions
        pop_waiting_task = self._task_parked.pop_waiting
        pop_waiting_worker = self._worker_parked.pop_waiting
        park_worker = self._worker_parked.park
        park_task = self._task_parked.park

        for event, type_index in pairs:
            object_id = event.entity.id
            if event.kind == WORKER:
                capacity = worker_capacity[type_index]
                if capacity == 0:
                    outcome.ignored_workers += 1
                    worker_decisions[object_id] = IGNORED
                    continue
                if random_choice:
                    offset = randrange(capacity)
                else:
                    key = ("w", type_index)
                    offset = cursor.get(key, 0)
                    cursor[key] = (offset + 1) % capacity
                partners = worker_partners.get(type_index)
                partner = partners[offset] if partners is not None else None
                if partner is None:
                    # Guide edges form a matching, so a partnerless node
                    # is nobody's partner: parking here can never be
                    # popped by the matching path, but it keeps the
                    # object visible to churn (a departure counts, a
                    # move can re-admit it at a partnered type).
                    park_worker((type_index, offset), object_id)
                    worker_decisions[object_id] = STAY
                    continue
                waiting_task = pop_waiting_task(partner)
                if waiting_task is not None:
                    assign(object_id, waiting_task)
                    worker_decisions[object_id] = Decision(
                        Decision.ASSIGNED, partner_id=waiting_task
                    )
                    task_decisions[waiting_task] = Decision(
                        Decision.ASSIGNED, partner_id=object_id
                    )
                else:
                    park_worker((type_index, offset), object_id)
                    worker_decisions[object_id] = Decision(
                        Decision.DISPATCHED, target_area=partner[0] % n_areas
                    )
            else:
                capacity = task_capacity[type_index]
                if capacity == 0:
                    outcome.ignored_tasks += 1
                    task_decisions[object_id] = IGNORED
                    continue
                if random_choice:
                    offset = randrange(capacity)
                else:
                    key = ("r", type_index)
                    offset = cursor.get(key, 0)
                    cursor[key] = (offset + 1) % capacity
                partners = task_partners.get(type_index)
                partner = partners[offset] if partners is not None else None
                if partner is None:
                    park_task((type_index, offset), object_id)  # churn visibility
                    task_decisions[object_id] = WAIT
                    continue
                waiting_worker = pop_waiting_worker(partner)
                if waiting_worker is not None:
                    assign(waiting_worker, object_id)
                    task_decisions[object_id] = Decision(
                        Decision.ASSIGNED, partner_id=waiting_worker
                    )
                    # Preserve the dispatch destination for the movement
                    # audit.
                    previous = worker_decisions.get(waiting_worker)
                    target = previous.target_area if previous is not None else None
                    worker_decisions[waiting_worker] = Decision(
                        Decision.ASSIGNED, target_area=target, partner_id=object_id
                    )
                else:
                    park_task((type_index, offset), object_id)
                    task_decisions[object_id] = WAIT

    # -- churn hooks --------------------------------------------------- #

    def _is_waiting(self, kind: str, object_id: int, now: float) -> bool:
        side = self._worker_parked if kind == WORKER else self._task_parked
        return side.contains(object_id)

    def _purge_object(self, kind: str, object_id: int) -> None:
        side = self._worker_parked if kind == WORKER else self._task_parked
        side.remove(object_id)

    def _relocate(self, event: Move, outcome: AssignmentOutcome) -> Decision:
        # Like POLAR: deadline-free reindex — vacate the association
        # slot and re-associate under the (original slot, new area)
        # type.  Validate the new location before vacating anything.
        new_area = self.grid.area_of(event.location)
        side = self._worker_parked if event.is_worker else self._task_parked
        node = side.remove(event.object_id)
        return self._readmit(event, node[0], new_area, outcome)


# ---------------------------------------------------------------------- #
# SimpleGreedy
# ---------------------------------------------------------------------- #


def _nearest_feasible(entity, candidates, travel, now, task_side):
    """Nearest wait-in-place-feasible partner id, or None (dense scan)."""
    best_id = None
    best_distance = None
    for other_id, other in candidates.items():
        if task_side:
            worker, task = entity, other
        else:
            worker, task = other, entity
        if task.deadline < now or worker.deadline <= now:
            continue
        distance = worker.location.distance_to(task.location)
        if now + travel.travel_time_for_distance(distance) > task.deadline:
            continue
        if (
            best_distance is None
            or distance < best_distance
            or (distance == best_distance and other_id < best_id)
        ):
            best_id = other_id
            best_distance = distance
    return best_id


class GreedyMatcher(Matcher):
    """The SimpleGreedy baseline (Section 2.2) as an incremental matcher.

    For every new object the platform scans the opposite waiting set for
    deadline-feasible partners and picks the one at the shortest
    distance; workers always wait in place.

    Args:
        travel: the constant-velocity travel model.
        grid: spatial grid (required iff ``indexed``).
        indexed: use a cell-index ring search instead of the literal
            linear scan (identical matchings, faster at scale).
        max_task_duration: optional lower bound for the indexed search's
            radius cutoff; the matcher also maintains a running maximum
            over arrived tasks, so the bound only matters for replaying
            the batch implementation's exact cutoff.

    Raises:
        ConfigurationError: if ``indexed`` without a ``grid``.
    """

    algorithm = "SimpleGreedy"

    def __init__(
        self,
        travel,
        grid=None,
        indexed: bool = False,
        max_task_duration: float = 0.0,
    ) -> None:
        if indexed and grid is None:
            raise ConfigurationError("indexed SimpleGreedy needs a grid")
        super().__init__()
        self.travel = travel
        self.grid = grid
        self.indexed = indexed
        self._initial_max_task_duration = float(max_task_duration)

    def _reset(self, outcome: AssignmentOutcome) -> None:
        self._waiting_workers: Dict[int, Worker] = {}
        self._waiting_tasks: Dict[int, Task] = {}
        self._max_task_duration = self._initial_max_task_duration
        if self.indexed:
            self._worker_index = CellIndex(self.grid)
            self._task_index = CellIndex(self.grid)
            self._worker_index.profile = self.profile
            self._task_index.profile = self.profile

    def _assign(self, outcome, worker_id: int, task_id: int) -> Decision:
        outcome.matching.assign(worker_id, task_id)
        outcome.worker_decisions[worker_id] = Decision(
            Decision.ASSIGNED, partner_id=task_id
        )
        outcome.task_decisions[task_id] = Decision(
            Decision.ASSIGNED, partner_id=worker_id
        )
        return outcome.worker_decisions[worker_id]

    def _observe_arrival(self, arrival: Arrival) -> Decision:
        outcome = self._require_run()
        if arrival.is_task:
            duration = arrival.entity.duration
            if duration > self._max_task_duration:
                self._max_task_duration = duration
        if self.indexed:
            return self._observe_indexed(arrival, outcome)
        return self._observe_naive(arrival, outcome)

    # -- churn hooks --------------------------------------------------- #

    def _is_waiting(self, kind: str, object_id: int, now: float) -> bool:
        # Deadline-aware: naive mode drops expired entries during pool
        # scans while indexed mode lazily removes only visited index
        # entries, so pool membership alone would make churn decisions
        # depend on the `indexed` flag.
        pool = self._waiting_workers if kind == WORKER else self._waiting_tasks
        entity = pool.get(object_id)
        return entity is not None and not self._expired_at(kind, entity, now)

    def _purge_object(self, kind: str, object_id: int) -> None:
        if kind == WORKER:
            del self._waiting_workers[object_id]
            if self.indexed:
                self._worker_index.remove(object_id)  # missing ids ignored
        else:
            del self._waiting_tasks[object_id]
            if self.indexed:
                self._task_index.remove(object_id)

    def _relocate(self, event: Move, outcome: AssignmentOutcome) -> Decision:
        now = event.time
        if self.indexed:
            # An out-of-grid destination must raise before any state is
            # touched (the cell index cannot hold it); the naive variant
            # is grid-free and accepts any location.
            self.grid.area_of(event.location)
        pool = self._waiting_workers if event.is_worker else self._waiting_tasks
        moved = self._take_for_move(event, pool, outcome)
        shim = _Relocation(now, event.seq, event.kind, moved)
        # The relocated object re-enters the arrival logic at the move's
        # instant: it may match immediately or re-park at its new spot.
        if self.indexed:
            return self._observe_indexed(shim, outcome)
        return self._observe_naive(shim, outcome)

    def _observe_naive(self, arrival: Arrival, outcome) -> Decision:
        self.profile.pool_scans += 1
        travel = self.travel
        now = arrival.time
        waiting_workers = self._waiting_workers
        waiting_tasks = self._waiting_tasks
        if arrival.is_worker:
            worker: Worker = arrival.entity
            best_id = None
            best_distance = None
            expired = []
            for task_id, task in waiting_tasks.items():
                if task.deadline < now:
                    expired.append(task_id)
                    continue
                distance = worker.location.distance_to(task.location)
                if now + travel.travel_time_for_distance(distance) > task.deadline:
                    continue
                if (
                    best_distance is None
                    or distance < best_distance
                    or (distance == best_distance and task_id < best_id)
                ):
                    best_id = task_id
                    best_distance = distance
            for task_id in expired:
                del waiting_tasks[task_id]
            if best_id is not None:
                del waiting_tasks[best_id]
                return self._assign(outcome, worker.id, best_id)
            waiting_workers[worker.id] = worker
            outcome.worker_decisions[worker.id] = STAY
            return STAY
        task: Task = arrival.entity
        best_id = None
        best_distance = None
        expired = []
        for worker_id, worker in waiting_workers.items():
            if worker.deadline <= now:
                expired.append(worker_id)
                continue
            distance = worker.location.distance_to(task.location)
            if now + travel.travel_time_for_distance(distance) > task.deadline:
                continue
            if (
                best_distance is None
                or distance < best_distance
                or (distance == best_distance and worker_id < best_id)
            ):
                best_id = worker_id
                best_distance = distance
        for worker_id in expired:
            del waiting_workers[worker_id]
        if best_id is not None:
            del waiting_workers[best_id]
            self._assign(outcome, best_id, task.id)
            return outcome.task_decisions[task.id]
        waiting_tasks[task.id] = task
        outcome.task_decisions[task.id] = WAIT
        return WAIT

    def _observe_indexed(self, arrival: Arrival, outcome) -> Decision:
        travel = self.travel
        now = arrival.time
        workers = self._waiting_workers
        tasks = self._waiting_tasks
        worker_index = self._worker_index
        task_index = self._task_index
        if arrival.is_worker:
            worker: Worker = arrival.entity

            def task_feasible(task_id: int, distance: float) -> bool:
                task = tasks[task_id]
                if task.deadline < now:
                    task_index.remove(task_id)  # lazy expiry
                    return False
                return now + travel.travel_time_for_distance(distance) <= task.deadline

            best = task_index.nearest_feasible(
                worker.location,
                task_feasible,
                max_distance=travel.reachable_distance(self._max_task_duration),
            )
            if best is not None:
                task_index.remove(best)
                # Drop the matched task from the waiting pool too, so the
                # churn protocol's "is waiting" view never sees it.
                tasks.pop(best, None)
                return self._assign(outcome, worker.id, best)
            workers[worker.id] = worker
            worker_index.add(worker.id, worker.location)
            outcome.worker_decisions[worker.id] = STAY
            return STAY
        task: Task = arrival.entity
        budget = task.deadline - now

        def worker_feasible(worker_id: int, distance: float) -> bool:
            candidate = workers[worker_id]
            if candidate.deadline <= now:
                worker_index.remove(worker_id)  # lazy expiry
                return False
            return now + travel.travel_time_for_distance(distance) <= task.deadline

        best = worker_index.nearest_feasible(
            task.location,
            worker_feasible,
            max_distance=travel.reachable_distance(budget),
        )
        if best is not None:
            worker_index.remove(best)
            workers.pop(best, None)  # see the worker branch
            self._assign(outcome, best, task.id)
            return outcome.task_decisions[task.id]
        tasks[task.id] = task
        task_index.add(task.id, task.location)
        outcome.task_decisions[task.id] = WAIT
        return WAIT


# ---------------------------------------------------------------------- #
# GR (batched windows)
# ---------------------------------------------------------------------- #


class BatchMatcher(Matcher):
    """The GR baseline (To et al., TSAS 2015) as an incremental matcher.

    Arrivals accumulate in per-side pools; at every window boundary the
    matcher solves a maximum bipartite matching between the pooled
    workers and still-serviceable tasks and commits the pairs.
    :meth:`finish` keeps flushing windows until every surviving object
    has expired or no matches remain possible.

    Args:
        travel: the constant-velocity travel model.
        grid: spatial grid for the persistent cell indexes.
        window_minutes: the batching window length.

    Raises:
        ConfigurationError: for a non-positive window.
    """

    algorithm = "GR"

    def __init__(self, travel, grid, window_minutes: float) -> None:
        if window_minutes <= 0:
            raise ConfigurationError(
                f"window must be positive, got {window_minutes}"
            )
        super().__init__()
        self.travel = travel
        self.grid = grid
        self.window_minutes = float(window_minutes)

    def _reset(self, outcome: AssignmentOutcome) -> None:
        self._pool_workers: Dict[int, Worker] = {}
        self._pool_tasks: Dict[int, Task] = {}
        self._worker_index = CellIndex(self.grid)
        self._task_index = CellIndex(self.grid)
        self._worker_index.profile = self.profile
        self._task_index.profile = self.profile
        self._batches = 0
        self._boundary: Optional[float] = None

    def _observe_arrival(self, arrival: Arrival) -> Decision:
        outcome = self._require_run()
        window = self.window_minutes
        if self._boundary is None:
            self._boundary = arrival.time + window
        while arrival.time >= self._boundary:
            self._flush(self._boundary, outcome)
            self._boundary += window
        entity = arrival.entity
        if arrival.is_worker:
            self._pool_workers[entity.id] = entity
            self._worker_index.add(entity.id, entity.location)
            outcome.worker_decisions[entity.id] = STAY
            return STAY
        self._pool_tasks[entity.id] = entity
        self._task_index.add(entity.id, entity.location)
        outcome.task_decisions[entity.id] = WAIT
        return WAIT

    # -- churn hooks --------------------------------------------------- #

    def _before_churn(self, event, outcome: AssignmentOutcome) -> None:
        # Churn events advance the platform clock like arrivals do: any
        # window boundary the event time crosses is flushed first, so a
        # departing object still participates in batches the platform
        # would have run before it left.
        if self._boundary is not None:
            window = self.window_minutes
            while event.time >= self._boundary:
                self._flush(self._boundary, outcome)
                self._boundary += window

    def _is_waiting(self, kind: str, object_id: int, now: float) -> bool:
        # Deadline-aware like the other pool matchers: entries expired
        # since the last boundary _expire() sweep are already gone.
        pool = self._pool_workers if kind == WORKER else self._pool_tasks
        entity = pool.get(object_id)
        return entity is not None and not self._expired_at(kind, entity, now)

    def _purge_object(self, kind: str, object_id: int) -> None:
        if kind == WORKER:
            del self._pool_workers[object_id]
            self._worker_index.remove(object_id)
        else:
            del self._pool_tasks[object_id]
            self._task_index.remove(object_id)

    def _relocate(self, event: Move, outcome: AssignmentOutcome) -> Decision:
        now = event.time
        # Validate before mutating: a GridError here must leave the pool
        # and index consistent.
        self.grid.area_of(event.location)
        pool = self._pool_workers if event.is_worker else self._pool_tasks
        moved = self._take_for_move(event, pool, outcome)
        # GR matches only at window boundaries, so a move is a pure
        # reindex: the relocated object re-pools and waits for the next
        # flush.
        if event.is_worker:
            self._pool_workers[event.object_id] = moved
            self._worker_index.add(event.object_id, moved.location)
            return STAY
        self._pool_tasks[event.object_id] = moved
        self._task_index.add(event.object_id, moved.location)
        return WAIT

    def _finalize(self, outcome: AssignmentOutcome) -> None:
        # Keep flushing until every surviving object has expired or no
        # matches remain possible.
        if self._boundary is not None:
            while self._pool_workers and self._pool_tasks:
                self._flush(self._boundary, outcome)
                self._boundary += self.window_minutes
            for worker_id in self._pool_workers:
                outcome.worker_decisions[worker_id] = STAY
            for task_id in self._pool_tasks:
                outcome.task_decisions[task_id] = WAIT
        outcome.extras["batches"] = float(self._batches)
        outcome.extras["window_minutes"] = float(self.window_minutes)

    def _expire(self, now: float, outcome) -> None:
        pool_workers = self._pool_workers
        pool_tasks = self._pool_tasks
        for worker_id in [
            w for w, worker in pool_workers.items() if worker.deadline <= now
        ]:
            outcome.worker_decisions[worker_id] = STAY
            del pool_workers[worker_id]
            self._worker_index.remove(worker_id)
        for task_id in [t for t, task in pool_tasks.items() if task.deadline < now]:
            outcome.task_decisions[task_id] = WAIT
            del pool_tasks[task_id]
            self._task_index.remove(task_id)

    def _candidate_edges(self, now: float) -> List[Tuple[int, int]]:
        """(worker_id, task_id) pairs feasible at ``now``, found by
        querying the larger pool's index from the smaller pool."""
        travel = self.travel
        pool_workers = self._pool_workers
        pool_tasks = self._pool_tasks
        edges: List[Tuple[int, int]] = []
        if len(pool_tasks) <= len(pool_workers):
            for task_id, task in pool_tasks.items():
                radius = travel.reachable_distance(task.deadline - now)
                for worker_id, _distance in self._worker_index.within(
                    task.location, radius
                ):
                    edges.append((worker_id, task_id))
        else:
            max_budget = max(task.deadline - now for task in pool_tasks.values())
            max_radius = travel.reachable_distance(max_budget)
            for worker_id, worker in pool_workers.items():
                for task_id, distance in self._task_index.within(
                    worker.location, max_radius
                ):
                    task = pool_tasks[task_id]
                    if now + travel.travel_time_for_distance(distance) <= task.deadline:
                        edges.append((worker_id, task_id))
        return edges

    def _flush(self, now: float, outcome) -> None:
        self._expire(now, outcome)
        pool_workers = self._pool_workers
        pool_tasks = self._pool_tasks
        if not pool_workers or not pool_tasks:
            return
        edges = self._candidate_edges(now)
        if not edges:
            return
        self._batches += 1
        worker_ids = sorted({w for w, _t in edges})
        task_ids = sorted({t for _w, t in edges})
        w_pos = {worker_id: i for i, worker_id in enumerate(worker_ids)}
        t_pos = {task_id: i for i, task_id in enumerate(task_ids)}
        graph = BipartiteGraph(len(worker_ids), len(task_ids))
        profile = self.profile
        profile.bipartite_builds += 1
        profile.bipartite_nodes += len(worker_ids) + len(task_ids)
        profile.bipartite_edges += len(edges)
        for worker_id, task_id in edges:
            graph.add_edge(w_pos[worker_id], t_pos[task_id])
        result = hopcroft_karp(graph)
        for w_index, t_index in result.pairs():
            worker_id = worker_ids[w_index]
            task_id = task_ids[t_index]
            outcome.matching.assign(worker_id, task_id)
            outcome.worker_decisions[worker_id] = Decision(
                Decision.ASSIGNED, partner_id=task_id
            )
            outcome.task_decisions[task_id] = Decision(
                Decision.ASSIGNED, partner_id=worker_id
            )
            del pool_workers[worker_id]
            self._worker_index.remove(worker_id)
            del pool_tasks[task_id]
            self._task_index.remove(task_id)


# ---------------------------------------------------------------------- #
# TGOA
# ---------------------------------------------------------------------- #

# Below this many waiting candidates a direct dict scan beats the ring
# machinery; the scan visits the waiting dict in insertion order, which
# is exactly the dense reference order, so parity is unaffected.
_DENSE_POOL_CUTOFF = 32


def _augment_from(newcomer_id, adjacency, matched_partner):
    """One augmenting-path search rooted at the newcomer (Kuhn step).

    ``adjacency`` maps left ids to candidate right ids; ``matched_partner``
    is the current right → left tentative matching.  Returns the right id
    the newcomer ends up matched to, or None.
    """
    visited = set()

    def try_match(left_id) -> Optional[int]:
        for right_id in adjacency.get(left_id, ()):
            if right_id in visited:
                continue
            visited.add(right_id)
            current = matched_partner.get(right_id)
            if current is None or try_match(current) is not None:
                matched_partner[right_id] = left_id
                return right_id
        return None

    return try_match(newcomer_id)


class TgoaMatcher(Matcher):
    """The TGOA-style baseline (Tong et al., ICDE 2016) incrementally.

    Phase 1 (the first ``halfway`` arrivals): nearest-feasible greedy.
    Phase 2: serve each newcomer according to a maximum matching over
    everything currently waiting, committing only the newcomer's edge.

    TGOA is the one algorithm whose definition references the stream
    length — the phase boundary sits at the halfway point — so the
    matcher takes ``halfway`` up front; the ``run_tgoa`` adapter derives
    it from the materialized stream and streaming deployments pass an
    estimate (e.g. from a volume forecast).

    Args:
        travel: the constant-velocity travel model.
        grid: spatial grid (required iff ``indexed``).
        halfway: arrival index at which phase 2 starts.
        indexed: enumerate candidates through persistent per-side cell
            indexes (identical matchings, faster at scale).
        max_task_duration: optional lower bound for the ring-search
            radius cutoff (a running maximum over arrived tasks is
            maintained regardless).

    Raises:
        ConfigurationError: for a negative ``halfway`` or ``indexed``
            without a ``grid``.
    """

    algorithm = "TGOA"

    def __init__(
        self,
        travel,
        grid=None,
        halfway: int = 0,
        indexed: bool = True,
        max_task_duration: float = 0.0,
    ) -> None:
        if indexed and grid is None:
            raise ConfigurationError("indexed TGOA needs a grid")
        if halfway < 0:
            raise ConfigurationError(f"halfway must be >= 0, got {halfway}")
        super().__init__()
        self.travel = travel
        self.grid = grid
        self.halfway = int(halfway)
        self.indexed = indexed
        self._initial_max_task_duration = float(max_task_duration)

    def _reset(self, outcome: AssignmentOutcome) -> None:
        self._waiting_workers: Dict[int, Worker] = {}
        self._waiting_tasks: Dict[int, Task] = {}
        self._worker_index = CellIndex(self.grid) if self.indexed else None
        self._task_index = CellIndex(self.grid) if self.indexed else None
        if self.indexed:
            self._worker_index.profile = self.profile
            self._task_index.profile = self.profile
        # Insertion ranks replay the dense scan's dict order when sorting
        # ring-query candidates — the augmenting-path search then visits
        # edges identically, keeping indexed matchings bit-identical.
        # Monotone counters (not len()) so a churn re-park always gets a
        # fresh, collision-free rank.
        self._worker_rank: Dict[int, int] = {}
        self._task_rank: Dict[int, int] = {}
        self._worker_rank_next = 0
        self._task_rank_next = 0
        self._max_task_duration = self._initial_max_task_duration
        self._arrival_index = 0

    def _observe_arrival(self, arrival: Arrival) -> Decision:
        outcome = self._require_run()
        if arrival.is_task:
            duration = arrival.entity.duration
            if duration > self._max_task_duration:
                self._max_task_duration = duration
        now = arrival.time
        self._purge(now)
        index = self._arrival_index
        self._arrival_index = index + 1
        if index < self.halfway:
            # Phase 1: plain nearest-feasible greedy.
            if self.indexed:
                partner = self._nearest_indexed(arrival, now)
            elif arrival.is_worker:
                partner = _nearest_feasible(
                    arrival.entity, self._waiting_tasks, self.travel, now,
                    task_side=True,
                )
            else:
                partner = _nearest_feasible(
                    arrival.entity, self._waiting_workers, self.travel, now,
                    task_side=False,
                )
        else:
            # Phase 2: match the newcomer per a maximum matching of the
            # revealed graph.
            partner = self._optimal_partner(arrival, now)
        if partner is not None:
            if arrival.is_worker:
                self._commit(arrival.entity.id, partner, outcome)
                return outcome.worker_decisions[arrival.entity.id]
            self._commit(partner, arrival.entity.id, outcome)
            return outcome.task_decisions[arrival.entity.id]
        self._park(arrival)
        if arrival.is_worker:
            outcome.worker_decisions[arrival.entity.id] = STAY
            return STAY
        outcome.task_decisions[arrival.entity.id] = WAIT
        return WAIT

    # -- churn hooks --------------------------------------------------- #

    def _is_waiting(self, kind: str, object_id: int, now: float) -> bool:
        # Deadline-aware — see GreedyMatcher._is_waiting.
        pool = self._waiting_workers if kind == WORKER else self._waiting_tasks
        entity = pool.get(object_id)
        return entity is not None and not self._expired_at(kind, entity, now)

    def _purge_object(self, kind: str, object_id: int) -> None:
        if kind == WORKER:
            del self._waiting_workers[object_id]
            if self.indexed:
                self._worker_index.remove(object_id)
        else:
            del self._waiting_tasks[object_id]
            if self.indexed:
                self._task_index.remove(object_id)

    def _relocate(self, event: Move, outcome: AssignmentOutcome) -> Decision:
        now = event.time
        if self.indexed:
            # See GreedyMatcher._relocate: validate before mutating.
            self.grid.area_of(event.location)
        pool = self._waiting_workers if event.is_worker else self._waiting_tasks
        moved = self._take_for_move(event, pool, outcome)
        shim = _Relocation(now, event.seq, event.kind, moved)
        self._purge(now)
        # Serve the relocated object under the phase active right now —
        # a move is not an arrival, so the phase counter does not tick.
        if self._arrival_index < self.halfway:
            if self.indexed:
                partner = self._nearest_indexed(shim, now)
            elif event.is_worker:
                partner = _nearest_feasible(
                    moved, self._waiting_tasks, self.travel, now, task_side=True
                )
            else:
                partner = _nearest_feasible(
                    moved, self._waiting_workers, self.travel, now, task_side=False
                )
        else:
            partner = self._optimal_partner(shim, now)
        if partner is not None:
            if event.is_worker:
                self._commit(event.object_id, partner, outcome)
                return outcome.worker_decisions[event.object_id]
            self._commit(partner, event.object_id, outcome)
            return outcome.task_decisions[event.object_id]
        self._park(shim)
        return STAY if event.is_worker else WAIT

    # -- pool maintenance ---------------------------------------------- #

    def _park(self, arrival) -> None:
        entity = arrival.entity
        if arrival.is_worker:
            self._waiting_workers[entity.id] = entity
            self._worker_rank[entity.id] = self._worker_rank_next
            self._worker_rank_next += 1
            if self.indexed:
                self._worker_index.add(entity.id, entity.location)
        else:
            self._waiting_tasks[entity.id] = entity
            self._task_rank[entity.id] = self._task_rank_next
            self._task_rank_next += 1
            if self.indexed:
                self._task_index.add(entity.id, entity.location)

    def _commit(self, worker_id: int, task_id: int, outcome) -> None:
        outcome.matching.assign(worker_id, task_id)
        outcome.worker_decisions[worker_id] = Decision(
            Decision.ASSIGNED, partner_id=task_id
        )
        outcome.task_decisions[task_id] = Decision(
            Decision.ASSIGNED, partner_id=worker_id
        )
        self._waiting_workers.pop(worker_id, None)
        self._waiting_tasks.pop(task_id, None)
        if self.indexed:
            self._worker_index.remove(worker_id)  # missing ids are ignored
            self._task_index.remove(task_id)

    def _purge(self, now: float) -> None:
        waiting_workers = self._waiting_workers
        waiting_tasks = self._waiting_tasks
        for worker_id in [
            w for w, worker in waiting_workers.items() if worker.deadline <= now
        ]:
            del waiting_workers[worker_id]
            if self.indexed:
                self._worker_index.remove(worker_id)
        for task_id in [
            t for t, task in waiting_tasks.items() if task.deadline < now
        ]:
            del waiting_tasks[task_id]
            if self.indexed:
                self._task_index.remove(task_id)

    # -- candidate enumeration ----------------------------------------- #

    def _nearest_indexed(self, arrival: Arrival, now: float) -> Optional[int]:
        """Phase 1 via the ring search (same tie-breaks as the scan)."""
        travel = self.travel
        entity = arrival.entity
        if arrival.is_worker:
            waiting_tasks = self._waiting_tasks
            if len(waiting_tasks) <= _DENSE_POOL_CUTOFF:
                self.profile.pool_scans += 1
                return _nearest_feasible(
                    entity, waiting_tasks, travel, now, task_side=True
                )

            def feasible(task_id: int, distance: float) -> bool:
                deadline = waiting_tasks[task_id].deadline
                return now + travel.travel_time_for_distance(distance) <= deadline

            return self._task_index.nearest_feasible(
                entity.location,
                feasible,
                max_distance=travel.reachable_distance(self._max_task_duration),
            )

        waiting_workers = self._waiting_workers
        if len(waiting_workers) <= _DENSE_POOL_CUTOFF:
            self.profile.pool_scans += 1
            return _nearest_feasible(
                entity, waiting_workers, travel, now, task_side=False
            )

        def feasible(worker_id: int, distance: float) -> bool:
            return now + travel.travel_time_for_distance(distance) <= entity.deadline

        return self._worker_index.nearest_feasible(
            entity.location,
            feasible,
            max_distance=travel.reachable_distance(entity.deadline - now),
        )

    def _candidate_edges(self, left, now: float, left_is_worker: bool) -> List[int]:
        """Feasible right ids for one left object, in insertion order."""
        travel = self.travel
        if left_is_worker:
            waiting_tasks = self._waiting_tasks
            if len(waiting_tasks) <= _DENSE_POOL_CUTOFF:
                # Dict scan in insertion order — already the dense order.
                self.profile.pool_scans += 1
                return [
                    task_id
                    for task_id, task in waiting_tasks.items()
                    if now
                    + travel.travel_time_for_distance(
                        left.location.distance_to(task.location)
                    )
                    <= task.deadline
                ]
            pairs = self._task_index.within(
                left.location, travel.reachable_distance(self._max_task_duration)
            )
            rank = self._task_rank
            edges = [
                task_id
                for task_id, distance in pairs
                if now + travel.travel_time_for_distance(distance)
                <= waiting_tasks[task_id].deadline
            ]
        else:
            waiting_workers = self._waiting_workers
            if len(waiting_workers) <= _DENSE_POOL_CUTOFF:
                self.profile.pool_scans += 1
                return [
                    worker_id
                    for worker_id, worker in waiting_workers.items()
                    if now
                    + travel.travel_time_for_distance(
                        worker.location.distance_to(left.location)
                    )
                    <= left.deadline
                ]
            pairs = self._worker_index.within(
                left.location, travel.reachable_distance(left.deadline - now)
            )
            rank = self._worker_rank
            edges = [
                worker_id
                for worker_id, distance in pairs
                if now + travel.travel_time_for_distance(distance) <= left.deadline
            ]
        edges.sort(key=rank.__getitem__)
        return edges

    def _optimal_partner(self, arrival: Arrival, now: float) -> Optional[int]:
        """The newcomer's partner in a maximum matching of the waiting
        graph, found by building a tentative Hungarian matching with the
        newcomer inserted last (so it only claims a partner when an
        augmenting path exists)."""
        travel = self.travel
        newcomer = arrival.entity
        if self.indexed:
            left_pool = (
                self._waiting_workers if arrival.is_worker else self._waiting_tasks
            )
            left_ids = list(left_pool)
            adjacency: Dict[int, List[int]] = {}
            for left_id in left_ids:
                adjacency[left_id] = self._candidate_edges(
                    left_pool[left_id], now, arrival.is_worker
                )
            adjacency[newcomer.id] = self._candidate_edges(
                newcomer, now, arrival.is_worker
            )
        else:
            if arrival.is_worker:
                dense_pool = dict(self._waiting_workers)
                dense_pool[newcomer.id] = newcomer
                right_pool = self._waiting_tasks
            else:
                dense_pool = dict(self._waiting_tasks)
                dense_pool[newcomer.id] = newcomer
                right_pool = self._waiting_workers
            left_ids = [i for i in dense_pool if i != newcomer.id]
            adjacency = {}
            for left_id, left in dense_pool.items():
                edges = []
                for right_id, right in right_pool.items():
                    worker, task = (
                        (left, right) if arrival.is_worker else (right, left)
                    )
                    if task.deadline < now or worker.deadline <= now:
                        continue
                    distance = worker.location.distance_to(task.location)
                    if now + travel.travel_time_for_distance(distance) <= task.deadline:
                        edges.append(right_id)
                adjacency[left_id] = edges

        matched_partner: Dict[int, int] = {}
        for left_id in left_ids:
            _augment_from(left_id, adjacency, matched_partner)
        return _augment_from(newcomer.id, adjacency, matched_partner)


# ---------------------------------------------------------------------- #
# Factory
# ---------------------------------------------------------------------- #

STREAM_ALGORITHMS = ("SimpleGreedy", "GR", "POLAR", "POLAR-OP", "TGOA")


def _max_task_duration(instance: Instance) -> float:
    return max((t.duration for t in instance.tasks), default=0.0)


def create_matcher(
    algorithm: str,
    instance: Instance,
    guide: Optional[OfflineGuide] = None,
    seed: int = 0,
    *,
    greedy_indexed: bool = False,
    window_minutes: Optional[float] = None,
    tgoa_indexed: bool = True,
    node_choice: Optional[str] = None,
) -> Matcher:
    """Build the matcher the corresponding ``run_*`` would use.

    Args:
        algorithm: one of :data:`STREAM_ALGORITHMS`.
        instance: the instance supplying travel/grid/timeline context
            (and, for TGOA, the stream length).
        guide: the offline guide (required iff POLAR / POLAR-OP).
        seed: node-choice seed for POLAR / POLAR-OP.
        greedy_indexed: use the cell-index SimpleGreedy variant.
        window_minutes: GR window (default: a tenth of a slot).
        tgoa_indexed: use TGOA's persistent-index candidate enumeration.
        node_choice: POLAR / POLAR-OP node-choice policy override.

    Raises:
        ConfigurationError: for an unknown algorithm or a missing guide.
    """
    if algorithm == "SimpleGreedy":
        return GreedyMatcher(
            instance.travel,
            grid=instance.grid,
            indexed=greedy_indexed,
            max_task_duration=_max_task_duration(instance),
        )
    if algorithm == "GR":
        if window_minutes is None:
            window_minutes = instance.timeline.slot_minutes / 10.0
        return BatchMatcher(instance.travel, instance.grid, window_minutes)
    if algorithm == "POLAR":
        if guide is None:
            raise ConfigurationError("POLAR requires an offline guide")
        return PolarMatcher(guide, node_choice=node_choice or "random", seed=seed)
    if algorithm == "POLAR-OP":
        if guide is None:
            raise ConfigurationError("POLAR-OP requires an offline guide")
        return PolarOpMatcher(
            guide, node_choice=node_choice or "round_robin", seed=seed
        )
    if algorithm == "TGOA":
        return TgoaMatcher(
            instance.travel,
            grid=instance.grid,
            halfway=len(instance.arrival_stream()) // 2,
            indexed=tgoa_indexed,
            max_task_duration=_max_task_duration(instance),
        )
    known = ", ".join(STREAM_ALGORITHMS)
    raise ConfigurationError(
        f"unknown stream algorithm {algorithm!r}; known: {known}"
    )
