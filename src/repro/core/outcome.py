"""The shared result record of every online/offline assignment algorithm.

All algorithms — POLAR, POLAR-OP, the baselines and OPT — return an
:class:`AssignmentOutcome`: the matching itself plus the per-object
decisions (assigned / dispatched / stay / wait / ignored) that the
movement audit and the examples inspect, and bookkeeping counters used by
the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.model.matching import Matching

__all__ = ["Decision", "AssignmentOutcome", "STAY", "WAIT", "IGNORED", "DEPARTED"]


@dataclass(frozen=True, slots=True)
class Decision:
    """What the platform did with one arriving object.

    Attributes:
        action: one of ``"assigned"`` (matched immediately or eventually),
            ``"dispatched"`` (worker sent toward another area per the
            guide), ``"stay"`` (worker waits at its own location),
            ``"wait"`` (task waits for a future worker), ``"ignored"``
            (no guide node of this type — Algorithm 2 line 3 failure),
            ``"departed"`` (left unmatched via a churn
            :class:`~repro.model.events.Departure` while still live and
            waiting — churn on an already-expired object is a no-op).
        target_area: the destination area for ``"dispatched"`` workers
            (Algorithm 2 line 11: "dispatch o to go to the area of r"),
            else None.
        partner_id: the matched counterpart for objects that end up
            assigned, else None.
    """

    action: str
    target_area: Optional[int] = None
    partner_id: Optional[int] = None

    ASSIGNED = "assigned"
    DISPATCHED = "dispatched"
    STAY = "stay"
    WAIT = "wait"
    IGNORED = "ignored"
    DEPARTED = "departed"


# Shared immutable decisions for the pathways that carry no payload.
# ``Decision`` is frozen, so the hot loops reuse these three singletons
# instead of allocating a fresh object per arrival; ``assigned`` and
# ``dispatched`` decisions carry partner/area payloads and are still
# constructed individually.
STAY = Decision(Decision.STAY)
WAIT = Decision(Decision.WAIT)
IGNORED = Decision(Decision.IGNORED)
DEPARTED = Decision(Decision.DEPARTED)


@dataclass
class AssignmentOutcome:
    """An algorithm run's full result.

    Attributes:
        algorithm: display name (``"POLAR-OP"``, ``"SimpleGreedy"``, …).
        matching: the committed worker–task pairs.
        worker_decisions: worker id → final :class:`Decision`.
        task_decisions: task id → final :class:`Decision`.
        ignored_workers / ignored_tasks: admissions turned away for lack
            of a free guide node of their type — arrivals, plus churn
            ``Move`` re-admissions that found their new type full.
        departed_workers / departed_tasks: live waiting objects that
            left unmatched via churn
            :class:`~repro.model.events.Departure` events.
        moves: effective churn relocations (moves of waiting objects).
        extras: free-form counters (guide size, batch count, …).
    """

    algorithm: str
    matching: Matching
    worker_decisions: Dict[int, Decision] = field(default_factory=dict)
    task_decisions: Dict[int, Decision] = field(default_factory=dict)
    ignored_workers: int = 0
    ignored_tasks: int = 0
    departed_workers: int = 0
    departed_tasks: int = 0
    moves: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """``MaxSum(M)`` of the run.

        Normally the matching's cardinality; algorithms that compute only
        the *value* of the optimum (the type-compressed OPT at scale)
        report it through ``extras["matching_size"]`` instead, which then
        takes precedence.
        """
        if "matching_size" in self.extras:
            return int(self.extras["matching_size"])
        return self.matching.size

    def dispatched_worker_ids(self):
        """Ids of workers the platform moved in advance (sorted)."""
        return sorted(
            worker_id
            for worker_id, decision in self.worker_decisions.items()
            if decision.action == Decision.DISPATCHED
        )

    def summary(self) -> str:
        """One human-readable line for logs and examples."""
        churn = ""
        if self.departed_workers or self.departed_tasks or self.moves:
            churn = (
                f" departed={self.departed_workers}/{self.departed_tasks}"
                f" moves={self.moves}"
            )
        return (
            f"{self.algorithm}: matched={self.size} "
            f"(ignored workers={self.ignored_workers}, tasks={self.ignored_tasks})"
            f"{churn}"
        )
