"""The GR baseline — batched window assignment (To et al., TSAS 2015).

GR "gathers all objects within a time window and performs an assignment
for the objects in each window" (Section 6.1).  At every window boundary
the platform solves a maximum bipartite matching between the workers
currently on the platform and the tasks still serviceable, under the
wait-in-place semantics evaluated at the window boundary; matched pairs
are committed (invariable constraint), everyone else carries over to the
next window until they expire.

The default window is one tenth of a slot — short enough that tasks with
slot-scale deadlines survive to their first boundary, long enough to
amortise the matching.  The window length is a parameter; ablations
sweep it.

The algorithm lives in :class:`repro.core.engine.BatchMatcher` — window
boundaries are crossed as arrivals are observed, and :meth:`finish`
drains the surviving pools — and this module keeps :func:`run_batch` as
the batch adapter.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import BatchMatcher
from repro.core.outcome import AssignmentOutcome
from repro.model.events import Arrival
from repro.model.instance import Instance

__all__ = ["run_batch"]


def run_batch(
    instance: Instance,
    stream: Optional[Sequence[Arrival]] = None,
    window_minutes: Optional[float] = None,
) -> AssignmentOutcome:
    """Run the GR batched baseline.

    Args:
        instance: the problem instance.
        stream: arrival-order override.
        window_minutes: batching window; defaults to a tenth of a slot.

    Returns:
        The committed matching; unmatched workers end as ``stay``
        decisions, unmatched tasks as ``wait``.

    Raises:
        ConfigurationError: for a non-positive window.
    """
    if window_minutes is None:
        window_minutes = instance.timeline.slot_minutes / 10.0
    matcher = BatchMatcher(instance.travel, instance.grid, window_minutes)
    matcher.begin()
    observe = matcher.observe
    for event in instance.arrival_stream() if stream is None else stream:
        observe(event)
    return matcher.finish()
