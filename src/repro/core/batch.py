"""The GR baseline — batched window assignment (To et al., TSAS 2015).

GR "gathers all objects within a time window and performs an assignment
for the objects in each window" (Section 6.1).  At every window boundary
the platform solves a maximum bipartite matching between the workers
currently on the platform and the tasks still serviceable, under the
wait-in-place semantics evaluated at the window boundary; matched pairs
are committed (invariable constraint), everyone else carries over to the
next window until they expire.

The default window is one tenth of a slot — short enough that tasks with
slot-scale deadlines survive to their first boundary, long enough to
amortise the matching.  The window length is a parameter; ablations
sweep it.

Implementation notes: both pools keep persistent cell indexes (updated
on arrival / match / expiry rather than rebuilt per window) and each
flush enumerates candidate pairs from the smaller pool side, querying
the other side's index within the deadline-derived radius.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cellindex import CellIndex
from repro.core.outcome import AssignmentOutcome, Decision
from repro.errors import ConfigurationError
from repro.graph.bipartite import BipartiteGraph, hopcroft_karp
from repro.model.entities import Task, Worker
from repro.model.events import Arrival
from repro.model.instance import Instance
from repro.model.matching import Matching

__all__ = ["run_batch"]


def run_batch(
    instance: Instance,
    stream: Optional[Sequence[Arrival]] = None,
    window_minutes: Optional[float] = None,
) -> AssignmentOutcome:
    """Run the GR batched baseline.

    Args:
        instance: the problem instance.
        stream: arrival-order override.
        window_minutes: batching window; defaults to a tenth of a slot.

    Returns:
        The committed matching; unmatched workers end as ``stay``
        decisions, unmatched tasks as ``wait``.

    Raises:
        ConfigurationError: for a non-positive window.
    """
    if window_minutes is None:
        window_minutes = instance.timeline.slot_minutes / 10.0
    if window_minutes <= 0:
        raise ConfigurationError(f"window must be positive, got {window_minutes}")

    outcome = AssignmentOutcome(algorithm="GR", matching=Matching())
    travel = instance.travel
    events = list(instance.arrival_stream() if stream is None else stream)

    pool_workers: Dict[int, Worker] = {}
    pool_tasks: Dict[int, Task] = {}
    worker_index = CellIndex(instance.grid)
    task_index = CellIndex(instance.grid)
    batches = 0

    def expire(now: float) -> None:
        for worker_id in [w for w, worker in pool_workers.items() if worker.deadline <= now]:
            outcome.worker_decisions[worker_id] = Decision(Decision.STAY)
            del pool_workers[worker_id]
            worker_index.remove(worker_id)
        for task_id in [t for t, task in pool_tasks.items() if task.deadline < now]:
            outcome.task_decisions[task_id] = Decision(Decision.WAIT)
            del pool_tasks[task_id]
            task_index.remove(task_id)

    def candidate_edges(now: float) -> List[Tuple[int, int]]:
        """(worker_id, task_id) pairs feasible at ``now``, found by
        querying the larger pool's index from the smaller pool."""
        edges: List[Tuple[int, int]] = []
        if len(pool_tasks) <= len(pool_workers):
            for task_id, task in pool_tasks.items():
                radius = travel.reachable_distance(task.deadline - now)
                for worker_id, _distance in worker_index.within(task.location, radius):
                    edges.append((worker_id, task_id))
        else:
            max_budget = max(task.deadline - now for task in pool_tasks.values())
            max_radius = travel.reachable_distance(max_budget)
            for worker_id, worker in pool_workers.items():
                for task_id, distance in task_index.within(worker.location, max_radius):
                    task = pool_tasks[task_id]
                    if now + travel.travel_time_for_distance(distance) <= task.deadline:
                        edges.append((worker_id, task_id))
        return edges

    def flush(now: float) -> None:
        nonlocal batches
        expire(now)
        if not pool_workers or not pool_tasks:
            return
        edges = candidate_edges(now)
        if not edges:
            return
        batches += 1
        worker_ids = sorted({w for w, _t in edges})
        task_ids = sorted({t for _w, t in edges})
        w_pos = {worker_id: i for i, worker_id in enumerate(worker_ids)}
        t_pos = {task_id: i for i, task_id in enumerate(task_ids)}
        graph = BipartiteGraph(len(worker_ids), len(task_ids))
        for worker_id, task_id in edges:
            graph.add_edge(w_pos[worker_id], t_pos[task_id])
        result = hopcroft_karp(graph)
        for w_index, t_index in result.pairs():
            worker_id = worker_ids[w_index]
            task_id = task_ids[t_index]
            outcome.matching.assign(worker_id, task_id)
            outcome.worker_decisions[worker_id] = Decision(
                Decision.ASSIGNED, partner_id=task_id
            )
            outcome.task_decisions[task_id] = Decision(
                Decision.ASSIGNED, partner_id=worker_id
            )
            del pool_workers[worker_id]
            worker_index.remove(worker_id)
            del pool_tasks[task_id]
            task_index.remove(task_id)

    if events:
        boundary = events[0].time + window_minutes
        for event in events:
            while event.time >= boundary:
                flush(boundary)
                boundary += window_minutes
            if event.is_worker:
                pool_workers[event.entity.id] = event.entity
                worker_index.add(event.entity.id, event.entity.location)
            else:
                pool_tasks[event.entity.id] = event.entity
                task_index.add(event.entity.id, event.entity.location)
        # Keep flushing until every surviving object has expired or no
        # matches remain possible.
        while pool_workers and pool_tasks:
            flush(boundary)
            boundary += window_minutes
        for worker_id in pool_workers:
            outcome.worker_decisions[worker_id] = Decision(Decision.STAY)
        for task_id in pool_tasks:
            outcome.task_decisions[task_id] = Decision(Decision.WAIT)

    outcome.extras["batches"] = float(batches)
    outcome.extras["window_minutes"] = float(window_minutes)
    return outcome
