"""Competitive-ratio constants and concentration bounds (Section 5).

* Theorem 1: POLAR achieves ``(1 − 1/e)² ≈ 0.40`` — each endpoint of a
  guide edge is occupied with probability at least ``1 − 1/e``.
* Lemma 3 / Theorem 2: POLAR-OP achieves ``≈ 0.47`` — with node re-use
  the per-edge match count is ``min(We, Re)`` for independent
  ``Poisson(1)`` loads, and

  .. math::

     E[M_e] = Σ_i i · [ 2·P(R=i)·P(W ≥ i) − P(R=i)·P(W=i) ]

* The Azuma–Hoeffding tail ``2·exp(−ε²(m+n)/2)`` that turns the
  expectations into high-probability statements.

The paper evaluates the Lemma 3 series to three terms and quotes 0.47;
:func:`polar_op_ratio` evaluates it to arbitrary precision, and
:func:`expected_min_poisson` computes ``E[min(W, R)]`` directly — the two
agree (a property test), which certifies the series manipulation.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import ConfigurationError

__all__ = [
    "polar_ratio",
    "polar_op_ratio",
    "expected_min_poisson",
    "azuma_deviation_bound",
    "poisson_pmf",
]


def polar_ratio() -> float:
    """Theorem 1's constant ``(1 − 1/e)² ≈ 0.3996``."""
    return (1.0 - math.exp(-1.0)) ** 2


def poisson_pmf(k: int, mu: float = 1.0) -> float:
    """``P(X = k)`` for ``X ~ Poisson(mu)``.

    Raises:
        ConfigurationError: for negative ``k`` or non-positive ``mu``.
    """
    if k < 0:
        raise ConfigurationError(f"k must be non-negative, got {k}")
    if mu <= 0:
        raise ConfigurationError(f"mu must be positive, got {mu}")
    return math.exp(-mu + k * math.log(mu) - math.lgamma(k + 1))


def polar_op_ratio(terms: int = 64, mu: float = 1.0) -> float:
    """Lemma 3's series for ``E[M_e] / |E*|`` with ``Poisson(mu)`` loads.

    With the paper's ``mu = 1`` and ``terms >= 3`` this returns ≈ 0.47
    (0.4748 at full precision — the paper truncates at three terms).

    Args:
        terms: series truncation point (the tail decays factorially).
        mu: the balls-into-bins intensity (1 when predictions are exact).
    """
    if terms < 1:
        raise ConfigurationError(f"terms must be >= 1, got {terms}")
    pmf: List[float] = [poisson_pmf(k, mu) for k in range(terms + 1)]
    # Upper-tail probabilities P(X >= i).
    tail: List[float] = [0.0] * (terms + 2)
    for k in range(terms, -1, -1):
        tail[k] = tail[k + 1] + pmf[k]
    total = 0.0
    for i in range(1, terms + 1):
        total += i * (2.0 * pmf[i] * tail[i] - pmf[i] * pmf[i])
    return total


def expected_min_poisson(terms: int = 64, mu_w: float = 1.0, mu_r: float = 1.0) -> float:
    """``E[min(W, R)]`` for independent Poissons, via
    ``Σ_{i≥1} P(W ≥ i)·P(R ≥ i)``.

    With ``mu_w = mu_r = 1`` this equals :func:`polar_op_ratio` — the
    identity behind Lemma 3 (``min`` rewritten through the joint pmf).
    """
    if terms < 1:
        raise ConfigurationError(f"terms must be >= 1, got {terms}")

    def tails(mu: float) -> List[float]:
        pmf = [poisson_pmf(k, mu) for k in range(terms + 1)]
        tail = [0.0] * (terms + 2)
        for k in range(terms, -1, -1):
            tail[k] = tail[k + 1] + pmf[k]
        return tail

    tail_w = tails(mu_w)
    tail_r = tails(mu_r)
    return sum(tail_w[i] * tail_r[i] for i in range(1, terms + 1))


def azuma_deviation_bound(epsilon: float, m: int, n: int) -> float:
    """Lemma 1's tail: ``P(|ALG − E[ALG]| ≥ ε(m+n)) ≤ 2·e^{−ε²(m+n)/2}``.

    ``ALG`` is 1-Lipschitz in each of the ``m + n`` arrivals, so the Doob
    martingale argument gives this Azuma–Hoeffding bound.

    Raises:
        ConfigurationError: for negative ``epsilon`` or non-positive
            population sizes.
    """
    if epsilon < 0:
        raise ConfigurationError(f"epsilon must be non-negative, got {epsilon}")
    if m + n <= 0:
        raise ConfigurationError("need at least one arrival")
    return min(1.0, 2.0 * math.exp(-(epsilon**2) * (m + n) / 2.0))
