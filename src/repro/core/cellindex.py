"""A per-area bucket index over waiting objects.

SimpleGreedy needs "the nearest feasible partner" per arrival and GR/OPT
need "all partners within a travel radius".  A dense scan is the paper's
SimpleGreedy cost model (and is kept as the reference implementation),
but at experiment scale the harness uses this index: objects are
bucketed by grid area and queried by expanding Chebyshev rings of cells,
with the ring lower bound making nearest-neighbour search exact.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.spatial.geometry import Point
from repro.spatial.grid import Grid

__all__ = ["CellIndex"]


class CellIndex:
    """Buckets of object ids keyed by grid area.

    The index stores ids only; the caller owns id → entity resolution and
    feasibility checks (the index never guesses about deadlines).
    """

    __slots__ = ("grid", "_buckets", "_locations", "_count")

    def __init__(self, grid: Grid) -> None:
        self.grid = grid
        self._buckets: Dict[int, Set[int]] = {}
        self._locations: Dict[int, Point] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, object_id: int, location: Point) -> None:
        """Insert an object (replacing any previous entry for the id)."""
        if object_id in self._locations:
            self.remove(object_id)
        area = self.grid.area_of(location)
        self._buckets.setdefault(area, set()).add(object_id)
        self._locations[object_id] = location
        self._count += 1

    def remove(self, object_id: int) -> None:
        """Delete an object; missing ids are ignored (lazy expiry)."""
        location = self._locations.pop(object_id, None)
        if location is None:
            return
        area = self.grid.area_of(location)
        bucket = self._buckets.get(area)
        if bucket is not None:
            bucket.discard(object_id)
            if not bucket:
                del self._buckets[area]
        self._count -= 1

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._locations

    def ids(self) -> Iterator[int]:
        """Iterate all stored ids (no particular order)."""
        return iter(self._locations)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _rings(self, origin: Point) -> Iterator[Tuple[float, List[int]]]:
        """Yield ``(lower_bound_distance, ids)`` per Chebyshev ring.

        The lower bound is the minimum possible distance from ``origin``
        to any point of a cell in the ring, so a search may stop once the
        bound exceeds its current best (exactness of nearest search).
        """
        col, row = self.grid.cell_of(origin)
        cell = min(self.grid.cell_width, self.grid.cell_height)
        max_ring = max(self.grid.nx, self.grid.ny)
        for ring in range(max_ring + 1):
            lower_bound = max(0.0, (ring - 1)) * cell if ring > 0 else 0.0
            ids: List[int] = []
            if ring == 0:
                bucket = self._buckets.get(row * self.grid.nx + col)
                if bucket:
                    ids.extend(bucket)
            else:
                for c in range(col - ring, col + ring + 1):
                    if not 0 <= c < self.grid.nx:
                        continue
                    for r in (row - ring, row + ring):
                        if 0 <= r < self.grid.ny:
                            bucket = self._buckets.get(r * self.grid.nx + c)
                            if bucket:
                                ids.extend(bucket)
                for r in range(row - ring + 1, row + ring):
                    if not 0 <= r < self.grid.ny:
                        continue
                    for c in (col - ring, col + ring):
                        if 0 <= c < self.grid.nx:
                            bucket = self._buckets.get(r * self.grid.nx + c)
                            if bucket:
                                ids.extend(bucket)
            yield lower_bound, ids

    def nearest_feasible(
        self,
        origin: Point,
        feasible: Callable[[int, float], bool],
        max_distance: float,
    ) -> Optional[int]:
        """The closest stored id within ``max_distance`` accepted by
        ``feasible(object_id, distance)``.

        Rings are expanded until their lower bound passes the current
        best distance (or ``max_distance``), which makes the result exact
        for Euclidean distance despite the Chebyshev ring shape.
        """
        best_id: Optional[int] = None
        best_distance = max_distance
        for lower_bound, ids in self._rings(origin):
            if lower_bound > best_distance:
                break
            for object_id in ids:
                distance = origin.distance_to(self._locations[object_id])
                if distance <= best_distance and feasible(object_id, distance):
                    if best_id is None or distance < best_distance or (
                        distance == best_distance and object_id < best_id
                    ):
                        best_id = object_id
                        best_distance = distance
        return best_id

    def within(self, origin: Point, radius: float) -> List[Tuple[int, float]]:
        """All ``(id, distance)`` pairs within ``radius`` of ``origin``."""
        found: List[Tuple[int, float]] = []
        for lower_bound, ids in self._rings(origin):
            if lower_bound > radius:
                break
            for object_id in ids:
                distance = origin.distance_to(self._locations[object_id])
                if distance <= radius:
                    found.append((object_id, distance))
        return found
