"""A per-area bucket index over waiting objects.

SimpleGreedy needs "the nearest feasible partner" per arrival and GR/OPT
need "all partners within a travel radius".  A dense scan is the paper's
SimpleGreedy cost model (and is kept as the reference implementation),
but at experiment scale the harness uses this index: objects are
bucketed by grid area and queried by expanding Chebyshev rings of cells,
with the ring lower bound making nearest-neighbour search exact.

Two engine-level optimisations keep queries cheap at scale:

* the index tracks the bounding box of *occupied* cells, so ring
  expansion terminates once rings leave that box — a sparse 200×200 grid
  no longer walks O(max(nx, ny)) empty rings per query;
* candidate distances within a ring are evaluated in one batched numpy
  pass once the ring is large enough, instead of per-id
  ``Point.distance_to`` calls.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.spatial.geometry import Point
from repro.spatial.grid import Grid

__all__ = ["CellIndex"]

# Rings with at least this many candidates take the batched numpy path;
# below it, the scalar loop wins (array setup costs more than it saves).
_BATCH_MIN = 16


class CellIndex:
    """Buckets of object ids keyed by grid area.

    The index stores ids only; the caller owns id → entity resolution and
    feasibility checks (the index never guesses about deadlines).
    """

    __slots__ = (
        "grid", "_buckets", "_locations", "_count", "_bbox", "_bbox_dirty",
        "profile",
    )

    def __init__(self, grid: Grid) -> None:
        self.grid = grid
        self._buckets: Dict[int, Set[int]] = {}
        self._locations: Dict[int, Point] = {}
        self._count = 0
        # Optional profiling sink (any object with ``index_queries`` /
        # ``ring_expansions`` int attributes, e.g. a MatcherProfile);
        # queries tick it when set, at the cost of one None check.
        self.profile = None
        # (min_col, min_row, max_col, max_row) of occupied cells, or None
        # while empty; grown eagerly on add, recomputed lazily after a
        # boundary cell empties out.
        self._bbox: Optional[Tuple[int, int, int, int]] = None
        self._bbox_dirty = False

    def __len__(self) -> int:
        return self._count

    def add(self, object_id: int, location: Point) -> None:
        """Insert an object (replacing any previous entry for the id)."""
        if object_id in self._locations:
            self.remove(object_id)
        area = self.grid.area_of(location)
        self._buckets.setdefault(area, set()).add(object_id)
        self._locations[object_id] = location
        self._count += 1
        if not self._bbox_dirty:
            col = area % self.grid.nx
            row = area // self.grid.nx
            if self._bbox is None:
                self._bbox = (col, row, col, row)
            else:
                min_col, min_row, max_col, max_row = self._bbox
                if col < min_col or col > max_col or row < min_row or row > max_row:
                    self._bbox = (
                        min(col, min_col),
                        min(row, min_row),
                        max(col, max_col),
                        max(row, max_row),
                    )

    def remove(self, object_id: int) -> None:
        """Delete an object; missing ids are ignored (lazy expiry)."""
        location = self._locations.pop(object_id, None)
        if location is None:
            return
        area = self.grid.area_of(location)
        bucket = self._buckets.get(area)
        if bucket is not None:
            bucket.discard(object_id)
            if not bucket:
                del self._buckets[area]
                if not self._bbox_dirty and self._bbox is not None:
                    col = area % self.grid.nx
                    row = area // self.grid.nx
                    min_col, min_row, max_col, max_row = self._bbox
                    if (
                        col == min_col
                        or col == max_col
                        or row == min_row
                        or row == max_row
                    ):
                        self._bbox_dirty = True
        self._count -= 1

    def _occupied_bbox(self) -> Optional[Tuple[int, int, int, int]]:
        """Bounding box of occupied cells, recomputed when stale."""
        if self._bbox_dirty:
            if self._buckets:
                nx = self.grid.nx
                cols = [area % nx for area in self._buckets]
                rows = [area // nx for area in self._buckets]
                self._bbox = (min(cols), min(rows), max(cols), max(rows))
            else:
                self._bbox = None
            self._bbox_dirty = False
        if not self._buckets:
            return None
        return self._bbox

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._locations

    def ids(self) -> Iterator[int]:
        """Iterate all stored ids (no particular order)."""
        return iter(self._locations)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _rings(self, origin: Point) -> Iterator[Tuple[float, List[int]]]:
        """Yield ``(lower_bound_distance, ids)`` per Chebyshev ring.

        The lower bound is the minimum possible distance from ``origin``
        to any point of a cell in the ring, so a search may stop once the
        bound exceeds its current best (exactness of nearest search).
        Ring expansion stops at the occupied bounding box, and cell
        enumeration within a ring is clamped to it — only rings that can
        contain stored objects are ever walked.
        """
        bbox = self._occupied_bbox()
        if bbox is None:
            return
        min_col, min_row, max_col, max_row = bbox
        col, row = self.grid.cell_of(origin)
        cell = min(self.grid.cell_width, self.grid.cell_height)
        max_ring = max(
            col - min_col, max_col - col, row - min_row, max_row - row, 0
        )
        buckets = self._buckets
        nx = self.grid.nx
        for ring in range(max_ring + 1):
            lower_bound = (ring - 1) * cell if ring > 1 else 0.0
            ids: List[int] = []
            if ring == 0:
                bucket = buckets.get(row * nx + col)
                if bucket:
                    ids.extend(bucket)
            else:
                for c in range(max(col - ring, min_col), min(col + ring, max_col) + 1):
                    for r in (row - ring, row + ring):
                        if min_row <= r <= max_row:
                            bucket = buckets.get(r * nx + c)
                            if bucket:
                                ids.extend(bucket)
                for r in range(
                    max(row - ring + 1, min_row), min(row + ring - 1, max_row) + 1
                ):
                    for c in (col - ring, col + ring):
                        if min_col <= c <= max_col:
                            bucket = buckets.get(r * nx + c)
                            if bucket:
                                ids.extend(bucket)
            yield lower_bound, ids

    def _ring_distances(
        self, origin: Point, ids: List[int]
    ) -> Iterator[Tuple[int, float]]:
        """``(id, distance)`` pairs for one ring's candidates.

        Large rings gather coordinates into arrays and evaluate all
        distances in one numpy pass; small rings use the scalar loop.
        ``np.hypot`` may differ from ``math.hypot`` by one ulp, which can
        only flip a feasibility decision when a threshold falls inside
        that last-bit gap — impossible to engineer with the continuous
        coordinates the harness generates (co-located candidates always
        share a ring, so exact ties still break identically by id).
        """
        locations = self._locations
        if len(ids) < _BATCH_MIN:
            for object_id in ids:
                yield object_id, origin.distance_to(locations[object_id])
            return
        n = len(ids)
        dx = np.empty(n, dtype=np.float64)
        dy = np.empty(n, dtype=np.float64)
        ox, oy = origin.x, origin.y
        for k, object_id in enumerate(ids):
            x, y = locations[object_id]
            dx[k] = x - ox
            dy[k] = y - oy
        yield from zip(ids, np.hypot(dx, dy).tolist())

    def nearest_feasible(
        self,
        origin: Point,
        feasible: Callable[[int, float], bool],
        max_distance: float,
    ) -> Optional[int]:
        """The closest stored id within ``max_distance`` accepted by
        ``feasible(object_id, distance)``.

        Rings are expanded until their lower bound passes the current
        best distance (or ``max_distance``), which makes the result exact
        for Euclidean distance despite the Chebyshev ring shape.
        """
        best_id: Optional[int] = None
        best_distance = max_distance
        rings = 0
        for lower_bound, ids in self._rings(origin):
            if lower_bound > best_distance:
                break
            rings += 1
            for object_id, distance in self._ring_distances(origin, ids):
                if distance <= best_distance and feasible(object_id, distance):
                    if best_id is None or distance < best_distance or (
                        distance == best_distance and object_id < best_id
                    ):
                        best_id = object_id
                        best_distance = distance
        profile = self.profile
        if profile is not None:
            profile.index_queries += 1
            profile.ring_expansions += rings
        return best_id

    def within(self, origin: Point, radius: float) -> List[Tuple[int, float]]:
        """All ``(id, distance)`` pairs within ``radius`` of ``origin``."""
        found: List[Tuple[int, float]] = []
        rings = 0
        for lower_bound, ids in self._rings(origin):
            if lower_bound > radius:
                break
            rings += 1
            for object_id, distance in self._ring_distances(origin, ids):
                if distance <= radius:
                    found.append((object_id, distance))
        profile = self.profile
        if profile is not None:
            profile.index_queries += 1
            profile.ring_expansions += rings
        return found
