"""Algorithm 1 — offline guide generation.

The guide turns predicted counts ``a_ij`` (workers) and ``b_ij`` (tasks)
per (slot, area) *type* into a maximum bipartite matching of predicted
objects.  Each predicted object of type ``(i, j)`` is represented at the
centre of area ``j`` with arrival time at the midpoint of slot ``i``; an
edge connects a predicted worker and predicted task iff the pair meets
Definition 4's deadline constraints.

Two equivalent constructions are provided:

* :func:`build_guide` (default) — the type-compressed transportation form
  (DESIGN.md §5): supplies ``a``, demands ``b``, lanes between feasible
  type pairs, one max-flow.  The per-lane flows are then *decomposed*
  into per-node pairings so POLAR's occupy semantics has concrete nodes.
* :func:`expanded_guide_size` — the literal Algorithm 1 with one unit
  node per predicted object and Ford–Fulkerson; used by tests to certify
  the compression and available for small instances.

Backends: our own Dinic / Edmonds–Karp / min-cost (from scratch in
:mod:`repro.graph`), plus an optional scipy accelerated path for large
guides (``method="scipy"`` or ``"auto"``); equivalence is covered by
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, GraphError
from repro.graph.maxflow import edmonds_karp
from repro.graph.network import FlowNetwork
from repro.graph.transportation import TransportationProblem, TransportationSolution
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel

__all__ = ["OfflineGuide", "build_guide", "enumerate_lanes", "expanded_guide_size"]

_AUTO_SCIPY_THRESHOLD = 20_000  # lanes beyond which "auto" prefers scipy


@dataclass(frozen=True)
class _NodeRef:
    """A concrete guide node: the ``k``-th node of a type on one side."""

    type_index: int
    offset: int


class OfflineGuide:
    """The solved guide ``Ĝf``: node counts, per-node partners, lanes.

    Node identity follows the paper: type ``(i, j)`` on the worker side
    owns ``a_ij`` nodes, on the task side ``b_ij`` nodes.  Flow
    decomposition pairs individual nodes across each lane in offset
    order, so partner lookup is O(1) — the key to POLAR's O(1) per
    arrival.

    Attributes:
        grid / timeline / travel: the discretisation the guide was built
            for (used by consumers to type real arrivals).
        worker_capacity / task_capacity: per-type node counts (the
            rounded predictions), shape ``(n_types,)``.
        matched_pairs: ``|E*|`` — the guide's matching size.
        lane_flow: ``(worker_type, task_type) → pairs`` for positive lanes.
    """

    def __init__(
        self,
        grid: Grid,
        timeline: Timeline,
        travel: TravelModel,
        worker_capacity: np.ndarray,
        task_capacity: np.ndarray,
        lane_flow: Dict[Tuple[int, int], int],
        total_cost: Optional[float] = None,
    ) -> None:
        self.grid = grid
        self.timeline = timeline
        self.travel = travel
        self.worker_capacity = worker_capacity
        self.task_capacity = task_capacity
        self.lane_flow = dict(lane_flow)
        self.total_cost = total_cost
        self.matched_pairs = int(sum(lane_flow.values()))
        self._worker_partner: Dict[int, List[Optional[_NodeRef]]] = {}
        self._task_partner: Dict[int, List[Optional[_NodeRef]]] = {}
        self._decompose()
        self._worker_partner_table: Optional[Dict[int, List[Optional[Tuple[int, int]]]]] = None
        self._task_partner_table: Optional[Dict[int, List[Optional[Tuple[int, int]]]]] = None
        self._worker_capacity_list: Optional[List[int]] = None
        self._task_capacity_list: Optional[List[int]] = None

    # ------------------------------------------------------------------ #
    # Types
    # ------------------------------------------------------------------ #

    @property
    def n_types(self) -> int:
        """Number of (slot, area) types ``α × β``."""
        return self.timeline.n_slots * self.grid.n_areas

    def type_index(self, slot: int, area: int) -> int:
        """Flatten (slot, area) → type index."""
        return slot * self.grid.n_areas + area

    def type_coords(self, type_index: int) -> Tuple[int, int]:
        """Inverse of :meth:`type_index`."""
        return divmod(type_index, self.grid.n_areas)

    def area_of_type(self, type_index: int) -> int:
        """The area component of a type (dispatch destination)."""
        return type_index % self.grid.n_areas

    # ------------------------------------------------------------------ #
    # Flow decomposition into node pairings
    # ------------------------------------------------------------------ #

    def _decompose(self) -> None:
        next_worker_offset: Dict[int, int] = {}
        next_task_offset: Dict[int, int] = {}
        for (wtype, ttype) in sorted(self.lane_flow):
            units = self.lane_flow[(wtype, ttype)]
            if units < 0:
                raise GraphError(f"negative lane flow on ({wtype}, {ttype})")
            w_list = self._worker_partner.setdefault(
                wtype, [None] * int(self.worker_capacity[wtype])
            )
            t_list = self._task_partner.setdefault(
                ttype, [None] * int(self.task_capacity[ttype])
            )
            w_at = next_worker_offset.get(wtype, 0)
            t_at = next_task_offset.get(ttype, 0)
            if w_at + units > len(w_list) or t_at + units > len(t_list):
                raise GraphError(
                    f"lane ({wtype}, {ttype}) ships {units} units but only "
                    f"{len(w_list) - w_at} worker / {len(t_list) - t_at} task "
                    f"nodes remain — flow exceeds capacity"
                )
            for u in range(units):
                w_list[w_at + u] = _NodeRef(ttype, t_at + u)
                t_list[t_at + u] = _NodeRef(wtype, w_at + u)
            next_worker_offset[wtype] = w_at + units
            next_task_offset[ttype] = t_at + units

    # ------------------------------------------------------------------ #
    # Node queries (used by POLAR / POLAR-OP)
    # ------------------------------------------------------------------ #

    def worker_nodes(self, type_index: int) -> int:
        """Number of worker nodes of a type (``a_ij``)."""
        return int(self.worker_capacity[type_index])

    def task_nodes(self, type_index: int) -> int:
        """Number of task nodes of a type (``b_ij``)."""
        return int(self.task_capacity[type_index])

    def worker_partner(self, type_index: int, offset: int) -> Optional[Tuple[int, int]]:
        """Guide partner of worker node ``(type, offset)`` as
        ``(task_type, task_offset)``, or None if unmatched in ``Ĝf``."""
        partners = self._worker_partner.get(type_index)
        if partners is None:
            return None
        ref = partners[offset]
        return (ref.type_index, ref.offset) if ref is not None else None

    def task_partner(self, type_index: int, offset: int) -> Optional[Tuple[int, int]]:
        """Guide partner of task node ``(type, offset)`` as
        ``(worker_type, worker_offset)``, or None."""
        partners = self._task_partner.get(type_index)
        if partners is None:
            return None
        ref = partners[offset]
        return (ref.type_index, ref.offset) if ref is not None else None

    # ------------------------------------------------------------------ #
    # Hot-path tables (cached; used by the POLAR event loops)
    # ------------------------------------------------------------------ #

    def worker_capacity_list(self) -> List[int]:
        """``worker_capacity`` as a plain int list (cached) — indexing a
        Python list in the event loop beats per-event numpy scalar casts."""
        if self._worker_capacity_list is None:
            self._worker_capacity_list = self.worker_capacity.tolist()
        return self._worker_capacity_list

    def task_capacity_list(self) -> List[int]:
        """``task_capacity`` as a plain int list (cached)."""
        if self._task_capacity_list is None:
            self._task_capacity_list = self.task_capacity.tolist()
        return self._task_capacity_list

    def worker_partner_table(self) -> Dict[int, List[Optional[Tuple[int, int]]]]:
        """Per-type worker-node partners as plain tuples (cached).

        ``table[type][offset]`` is ``(task_type, task_offset)`` or None —
        the same answers as :meth:`worker_partner` without the per-call
        dict lookup and tuple construction.
        """
        if self._worker_partner_table is None:
            self._worker_partner_table = {
                type_index: [
                    (ref.type_index, ref.offset) if ref is not None else None
                    for ref in refs
                ]
                for type_index, refs in self._worker_partner.items()
            }
        return self._worker_partner_table

    def task_partner_table(self) -> Dict[int, List[Optional[Tuple[int, int]]]]:
        """Per-type task-node partners as plain tuples (cached)."""
        if self._task_partner_table is None:
            self._task_partner_table = {
                type_index: [
                    (ref.type_index, ref.offset) if ref is not None else None
                    for ref in refs
                ]
                for type_index, refs in self._task_partner.items()
            }
        return self._task_partner_table

    def matched_worker_nodes(self, type_index: int) -> int:
        """How many of a type's worker nodes carry guide flow."""
        partners = self._worker_partner.get(type_index)
        if partners is None:
            return 0
        return sum(1 for ref in partners if ref is not None)

    def matched_task_nodes(self, type_index: int) -> int:
        """How many of a type's task nodes carry guide flow."""
        partners = self._task_partner.get(type_index)
        if partners is None:
            return 0
        return sum(1 for ref in partners if ref is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OfflineGuide(|E*|={self.matched_pairs}, "
            f"workers={int(self.worker_capacity.sum())}, "
            f"tasks={int(self.task_capacity.sum())})"
        )


# ---------------------------------------------------------------------- #
# Lane enumeration
# ---------------------------------------------------------------------- #


class LaneSet:
    """Feasible (worker-type, task-type) lanes as parallel arrays.

    Attributes:
        worker_types / task_types: int64 arrays of type indices.
        distances: float64 centre distances per lane.
    """

    __slots__ = ("worker_types", "task_types", "distances")

    def __init__(
        self, worker_types: np.ndarray, task_types: np.ndarray, distances: np.ndarray
    ) -> None:
        self.worker_types = worker_types
        self.task_types = task_types
        self.distances = distances

    def __len__(self) -> int:
        return int(self.worker_types.shape[0])

    def __iter__(self):
        """Iterate ``(worker_type, task_type, distance)`` triples."""
        return zip(
            self.worker_types.tolist(), self.task_types.tolist(), self.distances.tolist()
        )


def enumerate_lanes(
    worker_counts: np.ndarray,
    task_counts: np.ndarray,
    grid: Grid,
    timeline: Timeline,
    travel: TravelModel,
    worker_duration: float,
    task_duration: float,
) -> LaneSet:
    """All feasible (worker-type, task-type) lanes with centre distances.

    Feasibility follows Algorithm 1 line 8 with type representatives:
    ``Sw = mid(slot_w)``, ``Sr = mid(slot_r)``, locations at area centres.
    Only types with positive counts on both sides generate lanes; the
    per-slot-pair distance filter is vectorised over areas and the result
    is held in numpy arrays (paper-scale guides produce millions of
    lanes).
    """
    n_slots = timeline.n_slots
    n_areas = grid.n_areas
    worker_counts = np.asarray(worker_counts).reshape(n_slots, n_areas)
    task_counts = np.asarray(task_counts).reshape(n_slots, n_areas)

    centers = np.asarray(
        [[grid.center_of(a).x, grid.center_of(a).y] for a in range(n_areas)]
    )
    worker_areas_by_slot = [np.nonzero(worker_counts[s] > 0)[0] for s in range(n_slots)]
    task_areas_by_slot = [np.nonzero(task_counts[s] > 0)[0] for s in range(n_slots)]

    chunks_w: List[np.ndarray] = []
    chunks_t: List[np.ndarray] = []
    chunks_d: List[np.ndarray] = []
    for slot_w in range(n_slots):
        w_areas = worker_areas_by_slot[slot_w]
        if w_areas.size == 0:
            continue
        sw = timeline.slot_mid(slot_w)
        w_centers = centers[w_areas]
        base_w = slot_w * n_areas
        for slot_r in range(n_slots):
            t_areas = task_areas_by_slot[slot_r]
            if t_areas.size == 0:
                continue
            sr = timeline.slot_mid(slot_r)
            if not sr < sw + worker_duration:
                continue
            budget = task_duration - (sw - sr)
            if budget < 0:
                continue
            radius = travel.reachable_distance(budget)
            t_centers = centers[t_areas]
            diff = w_centers[:, None, :] - t_centers[None, :, :]
            dist = np.sqrt((diff**2).sum(axis=2))
            w_idx, t_idx = np.nonzero(dist <= radius + 1e-9)
            if w_idx.size == 0:
                continue
            base_r = slot_r * n_areas
            chunks_w.append(base_w + w_areas[w_idx])
            chunks_t.append(base_r + t_areas[t_idx])
            chunks_d.append(dist[w_idx, t_idx])
    if chunks_w:
        return LaneSet(
            np.concatenate(chunks_w).astype(np.int64),
            np.concatenate(chunks_t).astype(np.int64),
            np.concatenate(chunks_d),
        )
    return LaneSet(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), np.empty(0)
    )


# ---------------------------------------------------------------------- #
# Guide construction
# ---------------------------------------------------------------------- #


def _solve_with_scipy(
    supplies: np.ndarray,
    demands: np.ndarray,
    lanes: "LaneSet",
) -> Dict[Tuple[int, int], int]:
    """Max-flow via scipy.sparse.csgraph (C implementation of Dinic).

    Used for large guides; produces the same lane flows as our own
    solvers up to alternative-optima (tests compare the flow *value* and
    validity, not the identical decomposition).
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import maximum_flow

    supplies = np.asarray(supplies, dtype=np.int64)
    demands = np.asarray(demands, dtype=np.int64)
    n_left = supplies.shape[0]
    n_right = demands.shape[0]
    source = 0
    sink = n_left + n_right + 1
    n_nodes = sink + 1

    left_used = np.nonzero(supplies > 0)[0]
    right_used = np.nonzero(demands > 0)[0]
    lane_caps = np.minimum(
        supplies[lanes.worker_types], demands[lanes.task_types]
    )
    keep = lane_caps > 0
    lane_w = lanes.worker_types[keep]
    lane_t = lanes.task_types[keep]
    lane_caps = lane_caps[keep]

    rows = np.concatenate(
        [np.zeros(left_used.size, dtype=np.int64), 1 + n_left + right_used, 1 + lane_w]
    )
    cols = np.concatenate(
        [1 + left_used, np.full(right_used.size, sink, dtype=np.int64), 1 + n_left + lane_t]
    )
    caps = np.concatenate([supplies[left_used], demands[right_used], lane_caps])
    # scipy's maximum_flow requires a signed integer capacity dtype.
    graph = csr_matrix((caps.astype(np.int32), (rows, cols)), shape=(n_nodes, n_nodes))
    # csr_matrix summed duplicate lanes, which only widens capacities of
    # identical (u, v) pairs — harmless for a max-flow whose lanes are
    # already capacity-clamped per side.
    result = maximum_flow(graph, source, sink)
    coo = result.flow.tocoo()
    units = coo.data
    tails = coo.row
    heads = coo.col
    mask = (units > 0) & (tails >= 1) & (tails <= n_left) & (heads > n_left) & (heads < sink)
    lane_flow: Dict[Tuple[int, int], int] = {}
    for tail, head, amount in zip(tails[mask], heads[mask], units[mask]):
        key = (int(tail) - 1, int(head) - 1 - n_left)
        lane_flow[key] = lane_flow.get(key, 0) + int(amount)
    return lane_flow


def build_guide(
    worker_counts: np.ndarray,
    task_counts: np.ndarray,
    grid: Grid,
    timeline: Timeline,
    travel: TravelModel,
    worker_duration: float,
    task_duration: float,
    method: str = "auto",
) -> OfflineGuide:
    """Algorithm 1: predicted counts → the offline guide ``Ĝf``.

    Args:
        worker_counts / task_counts: integer ``a_ij`` / ``b_ij``, shape
            ``(n_slots, n_areas)`` (or flat).
        grid / timeline / travel: the problem discretisation.
        worker_duration / task_duration: global ``Dw`` / ``Dr`` in
            minutes, applied to every predicted node.
        method: ``"auto"`` (scipy for big guides when available, else
            Dinic), ``"dinic"``, ``"edmonds_karp"``, ``"mincost"``
            (Section 4 note 2: maximum matching of minimum total travel),
            or ``"scipy"``.

    Raises:
        ConfigurationError: for negative counts, bad durations or an
            unknown method.
    """
    if worker_duration <= 0 or task_duration <= 0:
        raise ConfigurationError("durations must be positive")
    n_types = timeline.n_slots * grid.n_areas
    supplies = np.asarray(worker_counts, dtype=np.int64).reshape(-1)
    demands = np.asarray(task_counts, dtype=np.int64).reshape(-1)
    if supplies.shape != (n_types,) or demands.shape != (n_types,):
        raise ConfigurationError(
            f"counts must have {n_types} types, got {supplies.shape} / {demands.shape}"
        )
    if (supplies < 0).any() or (demands < 0).any():
        raise ConfigurationError("counts must be non-negative")

    lanes = enumerate_lanes(
        supplies, demands, grid, timeline, travel, worker_duration, task_duration
    )

    if method == "auto":
        if len(lanes) >= _AUTO_SCIPY_THRESHOLD and _scipy_available():
            method = "scipy"
        else:
            method = "dinic"

    total_cost: Optional[float] = None
    if method == "scipy":
        lane_flow = _solve_with_scipy(supplies, demands, lanes)
    elif method in ("dinic", "edmonds_karp", "mincost"):
        problem = TransportationProblem(supplies.tolist(), demands.tolist())
        for u, v, distance in lanes:
            problem.add_lane(u, v, cost=travel.travel_time_for_distance(distance))
        solution: TransportationSolution = problem.solve(method=method)
        lane_flow = solution.lane_flow
        total_cost = solution.cost
    else:
        raise ConfigurationError(f"unknown guide method {method!r}")

    return OfflineGuide(
        grid=grid,
        timeline=timeline,
        travel=travel,
        worker_capacity=supplies,
        task_capacity=demands,
        lane_flow=lane_flow,
        total_cost=total_cost,
    )


def _scipy_available() -> bool:
    try:
        import scipy.sparse.csgraph  # noqa: F401
    except ImportError:  # pragma: no cover - scipy is installed in CI
        return False
    return True


# ---------------------------------------------------------------------- #
# Literal expanded construction (Algorithm 1 verbatim, for certification)
# ---------------------------------------------------------------------- #


def expanded_guide_size(
    worker_counts: np.ndarray,
    task_counts: np.ndarray,
    grid: Grid,
    timeline: Timeline,
    travel: TravelModel,
    worker_duration: float,
    task_duration: float,
) -> int:
    """Algorithm 1 with one node per predicted object, Ford–Fulkerson.

    Exponentially more nodes than the compressed form (one per predicted
    object), so only suitable for small instances; tests assert its
    matching size equals :func:`build_guide`'s ``matched_pairs``.
    """
    supplies = np.asarray(worker_counts, dtype=np.int64).reshape(-1)
    demands = np.asarray(task_counts, dtype=np.int64).reshape(-1)
    lanes = enumerate_lanes(
        supplies, demands, grid, timeline, travel, worker_duration, task_duration
    )
    lane_set = {(u, v) for u, v, _d in lanes}

    worker_nodes: List[int] = []  # type of each expanded worker node
    for type_index, count in enumerate(supplies):
        worker_nodes.extend([type_index] * int(count))
    task_nodes: List[int] = []
    task_nodes_by_type: Dict[int, List[int]] = {}
    for type_index, count in enumerate(demands):
        for _ in range(int(count)):
            task_nodes_by_type.setdefault(type_index, []).append(len(task_nodes))
            task_nodes.append(type_index)

    m = len(worker_nodes)
    n = len(task_nodes)
    source = 0
    sink = m + n + 1
    network = FlowNetwork(m + n + 2)
    for w in range(m):
        network.add_edge(source, 1 + w, 1)
    for r in range(n):
        network.add_edge(1 + m + r, sink, 1)
    task_types_by_worker_type: Dict[int, List[int]] = {}
    for u, v in lane_set:
        task_types_by_worker_type.setdefault(u, []).append(v)
    for w, wtype in enumerate(worker_nodes):
        for ttype in task_types_by_worker_type.get(wtype, ()):
            for r in task_nodes_by_type.get(ttype, ()):
                network.add_edge(1 + w, 1 + m + r, 1)
    return edmonds_karp(network, source, sink)
