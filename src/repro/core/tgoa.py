"""TGOA-style baseline (Tong et al., ICDE 2016 — the paper's reference [26]).

The paper positions FTOA against TGOA, the state-of-the-art *two-sided*
online assignment under the random-order model (competitive ratio 0.25,
workers wait in place).  TGOA's idea: treat the first half of arrivals
greedily; from the halfway point on, serve each new object according to a
*maximum matching* over everything currently waiting — the optimal choice
given what has been revealed, which random-order analysis shows is close
to optimal overall.

This implementation adapts TGOA to the FTOA setting for use as an extra
baseline (the paper itself does not evaluate it, noting "their algorithms
cannot solve our problem" because FTOA adds worker movement):

* phase 1 (first half of the stream): nearest-feasible greedy, exactly
  like SimpleGreedy;
* phase 2: on each arrival, build the wait-in-place feasibility graph
  over the waiting sets plus the newcomer, compute a maximum matching
  that is forced to include the newcomer if possible (by augmenting from
  it), and commit **only** the newcomer's edge (the invariable constraint
  forbids revoking earlier choices; uncommitted pairs stay open).

Note a structural consequence of irrevocable commitments in the FTOA
setting: objects wait only when nothing feasible is available, so the
tentative matching over the waiting sets is usually empty and phase 2
reduces to "serve the newcomer whenever the revealed graph can cover it"
— slightly more permissive than SimpleGreedy's nearest-only rule, but
without TGOA's random-order hindsight (which needs deferred commitment
the FTOA model forbids).  This is exactly the paper's point that "their
algorithms cannot solve our problem"; the baseline is included for
completeness.

Workers remain stationary throughout — TGOA has no dispatch concept,
which is precisely the gap POLAR fills.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.outcome import AssignmentOutcome, Decision
from repro.model.entities import Task, Worker
from repro.model.events import Arrival
from repro.model.instance import Instance
from repro.model.matching import Matching

__all__ = ["run_tgoa"]


def _nearest_feasible(entity, candidates, travel, now, task_side):
    """Nearest wait-in-place-feasible partner id, or None."""
    best_id = None
    best_distance = None
    for other_id, other in candidates.items():
        if task_side:
            worker, task = entity, other
        else:
            worker, task = other, entity
        if task.deadline < now or worker.deadline <= now:
            continue
        distance = worker.location.distance_to(task.location)
        if now + travel.travel_time_for_distance(distance) > task.deadline:
            continue
        if (
            best_distance is None
            or distance < best_distance
            or (distance == best_distance and other_id < best_id)
        ):
            best_id = other_id
            best_distance = distance
    return best_id


def _augment_from(newcomer_id, adjacency, matched_partner):
    """One augmenting-path search rooted at the newcomer (Kuhn step).

    ``adjacency`` maps left ids to candidate right ids; ``matched_partner``
    is the current right → left tentative matching.  Returns the right id
    the newcomer ends up matched to, or None.
    """
    visited = set()

    def try_match(left_id) -> Optional[int]:
        for right_id in adjacency.get(left_id, ()):
            if right_id in visited:
                continue
            visited.add(right_id)
            current = matched_partner.get(right_id)
            if current is None or try_match(current) is not None:
                matched_partner[right_id] = left_id
                return right_id
        return None

    return try_match(newcomer_id)


def run_tgoa(
    instance: Instance,
    stream: Optional[Sequence[Arrival]] = None,
) -> AssignmentOutcome:
    """Run the TGOA-style baseline over an instance's arrival stream.

    Returns the committed matching; per-object decisions mirror the other
    baselines (``stay`` / ``wait`` for objects that never match).
    """
    outcome = AssignmentOutcome(algorithm="TGOA", matching=Matching())
    travel = instance.travel
    events = list(instance.arrival_stream() if stream is None else stream)
    halfway = len(events) // 2

    waiting_workers: Dict[int, Worker] = {}
    waiting_tasks: Dict[int, Task] = {}

    def commit(worker_id: int, task_id: int) -> None:
        outcome.matching.assign(worker_id, task_id)
        outcome.worker_decisions[worker_id] = Decision(
            Decision.ASSIGNED, partner_id=task_id
        )
        outcome.task_decisions[task_id] = Decision(
            Decision.ASSIGNED, partner_id=worker_id
        )
        waiting_workers.pop(worker_id, None)
        waiting_tasks.pop(task_id, None)

    def purge(now: float) -> None:
        for worker_id in [w for w, worker in waiting_workers.items() if worker.deadline <= now]:
            del waiting_workers[worker_id]
        for task_id in [t for t, task in waiting_tasks.items() if task.deadline < now]:
            del waiting_tasks[task_id]

    def optimal_partner(event: Arrival, now: float) -> Optional[int]:
        """The newcomer's partner in a maximum matching of the waiting
        graph, found by building a tentative Hungarian matching with the
        newcomer inserted last (so it only claims a partner when an
        augmenting path exists)."""
        if event.is_worker:
            left_pool = dict(waiting_workers)
            left_pool[event.entity.id] = event.entity
            right_pool = waiting_tasks
        else:
            left_pool = dict(waiting_tasks)
            left_pool[event.entity.id] = event.entity
            right_pool = waiting_workers

        adjacency: Dict[int, list] = {}
        for left_id, left in left_pool.items():
            edges = []
            for right_id, right in right_pool.items():
                worker, task = (left, right) if event.is_worker else (right, left)
                if task.deadline < now or worker.deadline <= now:
                    continue
                distance = worker.location.distance_to(task.location)
                if now + travel.travel_time_for_distance(distance) <= task.deadline:
                    edges.append(right_id)
            adjacency[left_id] = edges

        matched_partner: Dict[int, int] = {}
        for left_id in left_pool:
            if left_id != event.entity.id:
                _augment_from(left_id, adjacency, matched_partner)
        return _augment_from(event.entity.id, adjacency, matched_partner)

    for index, event in enumerate(events):
        now = event.time
        purge(now)
        if index < halfway:
            # Phase 1: plain nearest-feasible greedy.
            if event.is_worker:
                partner = _nearest_feasible(
                    event.entity, waiting_tasks, travel, now, task_side=True
                )
                if partner is not None:
                    commit(event.entity.id, partner)
                else:
                    waiting_workers[event.entity.id] = event.entity
            else:
                partner = _nearest_feasible(
                    event.entity, waiting_workers, travel, now, task_side=False
                )
                if partner is not None:
                    commit(partner, event.entity.id)
                else:
                    waiting_tasks[event.entity.id] = event.entity
        else:
            # Phase 2: match the newcomer per a maximum matching of the
            # revealed graph.
            partner = optimal_partner(event, now)
            if event.is_worker:
                if partner is not None:
                    commit(event.entity.id, partner)
                else:
                    waiting_workers[event.entity.id] = event.entity
            else:
                if partner is not None:
                    commit(partner, event.entity.id)
                else:
                    waiting_tasks[event.entity.id] = event.entity

    for worker_id in waiting_workers:
        outcome.worker_decisions.setdefault(worker_id, Decision(Decision.STAY))
    for task_id in waiting_tasks:
        outcome.task_decisions.setdefault(task_id, Decision(Decision.WAIT))
    for worker in instance.workers:
        outcome.worker_decisions.setdefault(worker.id, Decision(Decision.STAY))
    for task in instance.tasks:
        outcome.task_decisions.setdefault(task.id, Decision(Decision.WAIT))
    return outcome
