"""TGOA-style baseline (Tong et al., ICDE 2016 — the paper's reference [26]).

The paper positions FTOA against TGOA, the state-of-the-art *two-sided*
online assignment under the random-order model (competitive ratio 0.25,
workers wait in place).  TGOA's idea: treat the first half of arrivals
greedily; from the halfway point on, serve each new object according to a
*maximum matching* over everything currently waiting — the optimal choice
given what has been revealed, which random-order analysis shows is close
to optimal overall.

This implementation adapts TGOA to the FTOA setting for use as an extra
baseline (the paper itself does not evaluate it, noting "their algorithms
cannot solve our problem" because FTOA adds worker movement):

* phase 1 (first half of the stream): nearest-feasible greedy, exactly
  like SimpleGreedy;
* phase 2: on each arrival, build the wait-in-place feasibility graph
  over the waiting sets plus the newcomer, compute a maximum matching
  that is forced to include the newcomer if possible (by augmenting from
  it), and commit **only** the newcomer's edge (the invariable constraint
  forbids revoking earlier choices; uncommitted pairs stay open).

Two candidate-enumeration strategies share these semantics (``indexed=
True`` rings vs the ``indexed=False`` dense reference scan) — see
:class:`repro.core.engine.TgoaMatcher`, where the algorithm now lives as
an incremental matcher.  TGOA is the one baseline whose definition
references the stream length (the halfway phase switch), so the matcher
takes that boundary up front and this adapter derives it from the
materialized stream.

Note a structural consequence of irrevocable commitments in the FTOA
setting: objects wait only when nothing feasible is available, so the
tentative matching over the waiting sets is usually empty and phase 2
reduces to "serve the newcomer whenever the revealed graph can cover it"
— slightly more permissive than SimpleGreedy's nearest-only rule, but
without TGOA's random-order hindsight (which needs deferred commitment
the FTOA model forbids).  This is exactly the paper's point that "their
algorithms cannot solve our problem"; the baseline is included for
completeness.

Workers remain stationary throughout — TGOA has no dispatch concept,
which is precisely the gap POLAR fills.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import TgoaMatcher
from repro.core.outcome import STAY, WAIT, AssignmentOutcome
from repro.model.events import Arrival
from repro.model.instance import Instance

__all__ = ["run_tgoa"]


def run_tgoa(
    instance: Instance,
    stream: Optional[Sequence[Arrival]] = None,
    indexed: bool = True,
) -> AssignmentOutcome:
    """Run the TGOA-style baseline over an instance's arrival stream.

    Args:
        instance: the problem instance.
        stream: arrival-order override.
        indexed: enumerate candidates through persistent per-side cell
            indexes (identical matching, much faster at scale) instead of
            dense scans over the waiting sets.

    Returns the committed matching; per-object decisions mirror the other
    baselines (``stay`` / ``wait`` for objects that never match).
    """
    events = list(instance.arrival_stream() if stream is None else stream)
    matcher = TgoaMatcher(
        instance.travel,
        grid=instance.grid,
        halfway=len(events) // 2,
        indexed=indexed,
        max_task_duration=max((t.duration for t in instance.tasks), default=0.0),
    )
    matcher.begin()
    observe = matcher.observe
    for event in events:
        observe(event)
    outcome = matcher.finish()
    # Entities absent from an overridden stream still get a decision,
    # mirroring the batch implementation's instance-wide backfill.
    for worker in instance.workers:
        outcome.worker_decisions.setdefault(worker.id, STAY)
    for task in instance.tasks:
        outcome.task_decisions.setdefault(task.id, WAIT)
    return outcome
