"""TGOA-style baseline (Tong et al., ICDE 2016 — the paper's reference [26]).

The paper positions FTOA against TGOA, the state-of-the-art *two-sided*
online assignment under the random-order model (competitive ratio 0.25,
workers wait in place).  TGOA's idea: treat the first half of arrivals
greedily; from the halfway point on, serve each new object according to a
*maximum matching* over everything currently waiting — the optimal choice
given what has been revealed, which random-order analysis shows is close
to optimal overall.

This implementation adapts TGOA to the FTOA setting for use as an extra
baseline (the paper itself does not evaluate it, noting "their algorithms
cannot solve our problem" because FTOA adds worker movement):

* phase 1 (first half of the stream): nearest-feasible greedy, exactly
  like SimpleGreedy;
* phase 2: on each arrival, build the wait-in-place feasibility graph
  over the waiting sets plus the newcomer, compute a maximum matching
  that is forced to include the newcomer if possible (by augmenting from
  it), and commit **only** the newcomer's edge (the invariable constraint
  forbids revoking earlier choices; uncommitted pairs stay open).

Two candidate-enumeration strategies share these semantics:

* ``indexed=True`` (default) — each side's waiting set is mirrored in a
  persistent :class:`~repro.core.cellindex.CellIndex`, so phase 1 runs a
  ring nearest-search and phase 2 enumerates only spatially reachable
  pairs instead of rebuilding the full ``O(n²)`` adjacency per arrival.
  Candidate lists are replayed in waiting-set insertion order, so the
  augmenting-path search visits edges exactly as the dense scan would —
  matchings are identical (a parity test asserts it).
* ``indexed=False`` — the literal dense scan, kept as the reference.

Note a structural consequence of irrevocable commitments in the FTOA
setting: objects wait only when nothing feasible is available, so the
tentative matching over the waiting sets is usually empty and phase 2
reduces to "serve the newcomer whenever the revealed graph can cover it"
— slightly more permissive than SimpleGreedy's nearest-only rule, but
without TGOA's random-order hindsight (which needs deferred commitment
the FTOA model forbids).  This is exactly the paper's point that "their
algorithms cannot solve our problem"; the baseline is included for
completeness.

Workers remain stationary throughout — TGOA has no dispatch concept,
which is precisely the gap POLAR fills.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.cellindex import CellIndex
from repro.core.outcome import AssignmentOutcome, Decision
from repro.model.entities import Task, Worker
from repro.model.events import Arrival
from repro.model.instance import Instance
from repro.model.matching import Matching

__all__ = ["run_tgoa"]

# Below this many waiting candidates a direct dict scan beats the ring
# machinery; the scan visits the waiting dict in insertion order, which
# is exactly the dense reference order, so parity is unaffected.
_DENSE_POOL_CUTOFF = 32


def _nearest_feasible(entity, candidates, travel, now, task_side):
    """Nearest wait-in-place-feasible partner id, or None (dense scan)."""
    best_id = None
    best_distance = None
    for other_id, other in candidates.items():
        if task_side:
            worker, task = entity, other
        else:
            worker, task = other, entity
        if task.deadline < now or worker.deadline <= now:
            continue
        distance = worker.location.distance_to(task.location)
        if now + travel.travel_time_for_distance(distance) > task.deadline:
            continue
        if (
            best_distance is None
            or distance < best_distance
            or (distance == best_distance and other_id < best_id)
        ):
            best_id = other_id
            best_distance = distance
    return best_id


def _augment_from(newcomer_id, adjacency, matched_partner):
    """One augmenting-path search rooted at the newcomer (Kuhn step).

    ``adjacency`` maps left ids to candidate right ids; ``matched_partner``
    is the current right → left tentative matching.  Returns the right id
    the newcomer ends up matched to, or None.
    """
    visited = set()

    def try_match(left_id) -> Optional[int]:
        for right_id in adjacency.get(left_id, ()):
            if right_id in visited:
                continue
            visited.add(right_id)
            current = matched_partner.get(right_id)
            if current is None or try_match(current) is not None:
                matched_partner[right_id] = left_id
                return right_id
        return None

    return try_match(newcomer_id)


def run_tgoa(
    instance: Instance,
    stream: Optional[Sequence[Arrival]] = None,
    indexed: bool = True,
) -> AssignmentOutcome:
    """Run the TGOA-style baseline over an instance's arrival stream.

    Args:
        instance: the problem instance.
        stream: arrival-order override.
        indexed: enumerate candidates through persistent per-side cell
            indexes (identical matching, much faster at scale) instead of
            dense scans over the waiting sets.

    Returns the committed matching; per-object decisions mirror the other
    baselines (``stay`` / ``wait`` for objects that never match).
    """
    outcome = AssignmentOutcome(algorithm="TGOA", matching=Matching())
    travel = instance.travel
    events = list(instance.arrival_stream() if stream is None else stream)
    halfway = len(events) // 2

    waiting_workers: Dict[int, Worker] = {}
    waiting_tasks: Dict[int, Task] = {}
    worker_index = CellIndex(instance.grid) if indexed else None
    task_index = CellIndex(instance.grid) if indexed else None
    # Insertion ranks replay the dense scan's dict order when sorting
    # ring-query candidates — the augmenting-path search then visits
    # edges identically, keeping indexed matchings bit-identical.
    worker_rank: Dict[int, int] = {}
    task_rank: Dict[int, int] = {}
    max_task_duration = max((t.duration for t in instance.tasks), default=0.0)

    def park(event: Arrival) -> None:
        entity = event.entity
        if event.is_worker:
            waiting_workers[entity.id] = entity
            worker_rank[entity.id] = len(worker_rank)
            if indexed:
                worker_index.add(entity.id, entity.location)
        else:
            waiting_tasks[entity.id] = entity
            task_rank[entity.id] = len(task_rank)
            if indexed:
                task_index.add(entity.id, entity.location)

    def commit(worker_id: int, task_id: int) -> None:
        outcome.matching.assign(worker_id, task_id)
        outcome.worker_decisions[worker_id] = Decision(
            Decision.ASSIGNED, partner_id=task_id
        )
        outcome.task_decisions[task_id] = Decision(
            Decision.ASSIGNED, partner_id=worker_id
        )
        waiting_workers.pop(worker_id, None)
        waiting_tasks.pop(task_id, None)
        if indexed:
            worker_index.remove(worker_id)  # missing ids are ignored
            task_index.remove(task_id)

    def purge(now: float) -> None:
        for worker_id in [w for w, worker in waiting_workers.items() if worker.deadline <= now]:
            del waiting_workers[worker_id]
            if indexed:
                worker_index.remove(worker_id)
        for task_id in [t for t, task in waiting_tasks.items() if task.deadline < now]:
            del waiting_tasks[task_id]
            if indexed:
                task_index.remove(task_id)

    def nearest_indexed(event: Arrival, now: float) -> Optional[int]:
        """Phase 1 via the ring search (same tie-breaks as the scan)."""
        entity = event.entity
        if event.is_worker:
            if len(waiting_tasks) <= _DENSE_POOL_CUTOFF:
                return _nearest_feasible(
                    entity, waiting_tasks, travel, now, task_side=True
                )

            def feasible(task_id: int, distance: float) -> bool:
                deadline = waiting_tasks[task_id].deadline
                return now + travel.travel_time_for_distance(distance) <= deadline

            return task_index.nearest_feasible(
                entity.location,
                feasible,
                max_distance=travel.reachable_distance(max_task_duration),
            )

        if len(waiting_workers) <= _DENSE_POOL_CUTOFF:
            return _nearest_feasible(
                entity, waiting_workers, travel, now, task_side=False
            )

        def feasible(worker_id: int, distance: float) -> bool:
            return now + travel.travel_time_for_distance(distance) <= entity.deadline

        return worker_index.nearest_feasible(
            entity.location,
            feasible,
            max_distance=travel.reachable_distance(entity.deadline - now),
        )

    def candidate_edges(left, now: float, left_is_worker: bool) -> List[int]:
        """Feasible right ids for one left object, in insertion order."""
        if left_is_worker:
            if len(waiting_tasks) <= _DENSE_POOL_CUTOFF:
                # Dict scan in insertion order — already the dense order.
                return [
                    task_id
                    for task_id, task in waiting_tasks.items()
                    if now
                    + travel.travel_time_for_distance(
                        left.location.distance_to(task.location)
                    )
                    <= task.deadline
                ]
            pairs = task_index.within(
                left.location, travel.reachable_distance(max_task_duration)
            )
            rank = task_rank
            edges = [
                task_id
                for task_id, distance in pairs
                if now + travel.travel_time_for_distance(distance)
                <= waiting_tasks[task_id].deadline
            ]
        else:
            if len(waiting_workers) <= _DENSE_POOL_CUTOFF:
                return [
                    worker_id
                    for worker_id, worker in waiting_workers.items()
                    if now
                    + travel.travel_time_for_distance(
                        worker.location.distance_to(left.location)
                    )
                    <= left.deadline
                ]
            pairs = worker_index.within(
                left.location, travel.reachable_distance(left.deadline - now)
            )
            rank = worker_rank
            edges = [
                worker_id
                for worker_id, distance in pairs
                if now + travel.travel_time_for_distance(distance) <= left.deadline
            ]
        edges.sort(key=rank.__getitem__)
        return edges

    def optimal_partner(event: Arrival, now: float) -> Optional[int]:
        """The newcomer's partner in a maximum matching of the waiting
        graph, found by building a tentative Hungarian matching with the
        newcomer inserted last (so it only claims a partner when an
        augmenting path exists)."""
        newcomer = event.entity
        if indexed:
            left_ids = list(waiting_workers if event.is_worker else waiting_tasks)
            left_pool = waiting_workers if event.is_worker else waiting_tasks
            adjacency: Dict[int, List[int]] = {}
            for left_id in left_ids:
                adjacency[left_id] = candidate_edges(
                    left_pool[left_id], now, event.is_worker
                )
            adjacency[newcomer.id] = candidate_edges(newcomer, now, event.is_worker)
        else:
            if event.is_worker:
                dense_pool = dict(waiting_workers)
                dense_pool[newcomer.id] = newcomer
                right_pool = waiting_tasks
            else:
                dense_pool = dict(waiting_tasks)
                dense_pool[newcomer.id] = newcomer
                right_pool = waiting_workers
            left_ids = [i for i in dense_pool if i != newcomer.id]
            adjacency = {}
            for left_id, left in dense_pool.items():
                edges = []
                for right_id, right in right_pool.items():
                    worker, task = (
                        (left, right) if event.is_worker else (right, left)
                    )
                    if task.deadline < now or worker.deadline <= now:
                        continue
                    distance = worker.location.distance_to(task.location)
                    if now + travel.travel_time_for_distance(distance) <= task.deadline:
                        edges.append(right_id)
                adjacency[left_id] = edges

        matched_partner: Dict[int, int] = {}
        for left_id in left_ids:
            _augment_from(left_id, adjacency, matched_partner)
        return _augment_from(newcomer.id, adjacency, matched_partner)

    for index, event in enumerate(events):
        now = event.time
        purge(now)
        if index < halfway:
            # Phase 1: plain nearest-feasible greedy.
            if indexed:
                partner = nearest_indexed(event, now)
            elif event.is_worker:
                partner = _nearest_feasible(
                    event.entity, waiting_tasks, travel, now, task_side=True
                )
            else:
                partner = _nearest_feasible(
                    event.entity, waiting_workers, travel, now, task_side=False
                )
        else:
            # Phase 2: match the newcomer per a maximum matching of the
            # revealed graph.
            partner = optimal_partner(event, now)
        if partner is not None:
            if event.is_worker:
                commit(event.entity.id, partner)
            else:
                commit(partner, event.entity.id)
        else:
            park(event)

    for worker_id in waiting_workers:
        outcome.worker_decisions.setdefault(worker_id, Decision(Decision.STAY))
    for task_id in waiting_tasks:
        outcome.task_decisions.setdefault(task_id, Decision(Decision.WAIT))
    for worker in instance.workers:
        outcome.worker_decisions.setdefault(worker.id, Decision(Decision.STAY))
    for task in instance.tasks:
        outcome.task_decisions.setdefault(task.id, Decision(Decision.WAIT))
    return outcome
