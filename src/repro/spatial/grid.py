"""Uniform grid partitioning of a rectangular region into *areas*.

The paper divides the 2-D space into ``x × y`` grid areas (Example 3,
Table 4) indexed by a single integer ``j``; the predicted counts ``a_ij``
and ``b_ij`` are per (slot ``i``, area ``j``).  :class:`Grid` owns the
location → area mapping, area centres (used when dispatching a worker "to
the area of r", Algorithm 2 line 11), and neighbourhood enumeration used
to build feasibility edges without scanning all area pairs.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

from repro.errors import GridError
from repro.spatial.geometry import BoundingBox, Point

__all__ = ["Grid"]


class Grid:
    """A uniform ``nx × ny`` partition of a bounding box into areas.

    Areas are indexed row-major: area ``j`` has column ``j % nx`` and row
    ``j // nx``, matching the paper's flat ``Area j`` notation.

    Args:
        bounds: the rectangle being partitioned.
        nx: number of columns (cells along x).
        ny: number of rows (cells along y).

    Raises:
        GridError: if either dimension is not a positive integer.
    """

    __slots__ = ("bounds", "nx", "ny", "cell_width", "cell_height")

    def __init__(self, bounds: BoundingBox, nx: int, ny: int) -> None:
        if nx <= 0 or ny <= 0:
            raise GridError(f"grid dimensions must be positive, got {nx}x{ny}")
        self.bounds = bounds
        self.nx = int(nx)
        self.ny = int(ny)
        self.cell_width = bounds.width / self.nx
        self.cell_height = bounds.height / self.ny

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def square(side_cells: int, cell_size: float = 1.0) -> "Grid":
        """A ``side × side`` grid of square cells anchored at the origin.

        This is the synthetic-experiment layout (``g = x × y`` in Table 4,
        e.g. ``50×50`` cells of ``0.01° × 0.01°``); ``cell_size`` defaults
        to one spatial unit per cell so distances are measured in cells.
        """
        if side_cells <= 0:
            raise GridError(f"side_cells must be positive, got {side_cells}")
        extent = side_cells * cell_size
        return Grid(BoundingBox(0.0, 0.0, extent, extent), side_cells, side_cells)

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #

    @property
    def n_areas(self) -> int:
        """Total number of areas ``β = nx · ny``."""
        return self.nx * self.ny

    def cell_of(self, p: Point) -> Tuple[int, int]:
        """The ``(col, row)`` cell containing ``p``.

        Points on the far edges are assigned to the last cell so the grid
        covers the closed bounding box.

        Raises:
            GridError: if ``p`` lies outside the bounds (the paper drops
                data points beyond the covered rectangle; callers that want
                that behaviour should filter with ``bounds.contains``
                first — the grid itself refuses silently mis-binned data).
        """
        if not self.bounds.contains(p):
            raise GridError(f"point {p} outside grid bounds {self.bounds}")
        col = int((p.x - self.bounds.x_min) / self.cell_width)
        row = int((p.y - self.bounds.y_min) / self.cell_height)
        if col == self.nx:
            col -= 1
        if row == self.ny:
            row -= 1
        return col, row

    def area_of(self, p: Point) -> int:
        """The flat area index ``j`` of the cell containing ``p``."""
        col, row = self.cell_of(p)
        return row * self.nx + col

    def area_index(self, col: int, row: int) -> int:
        """Flat index of the cell at ``(col, row)``."""
        self._check_cell(col, row)
        return row * self.nx + col

    def cell_coords(self, area: int) -> Tuple[int, int]:
        """Inverse of :meth:`area_index`: flat index → ``(col, row)``."""
        self._check_area(area)
        return area % self.nx, area // self.nx

    def _check_area(self, area: int) -> None:
        if not 0 <= area < self.n_areas:
            raise GridError(f"area index {area} out of range [0, {self.n_areas})")

    def _check_cell(self, col: int, row: int) -> None:
        if not (0 <= col < self.nx and 0 <= row < self.ny):
            raise GridError(f"cell ({col}, {row}) out of range for {self.nx}x{self.ny} grid")

    # ------------------------------------------------------------------ #
    # Geometry of areas
    # ------------------------------------------------------------------ #

    def center_of(self, area: int) -> Point:
        """Centre point of area ``j`` — the dispatch target for that area."""
        col, row = self.cell_coords(area)
        return Point(
            self.bounds.x_min + (col + 0.5) * self.cell_width,
            self.bounds.y_min + (row + 0.5) * self.cell_height,
        )

    def cell_box(self, area: int) -> BoundingBox:
        """The bounding box of area ``j``."""
        col, row = self.cell_coords(area)
        return BoundingBox(
            self.bounds.x_min + col * self.cell_width,
            self.bounds.y_min + row * self.cell_height,
            self.bounds.x_min + (col + 1) * self.cell_width,
            self.bounds.y_min + (row + 1) * self.cell_height,
        )

    def center_distance(self, area_a: int, area_b: int) -> float:
        """Euclidean distance between the centres of two areas.

        This is the distance the guide generator uses between (slot, area)
        types: all predicted objects of a type are located at the centre of
        the type's area.
        """
        return self.center_of(area_a).distance_to(self.center_of(area_b))

    # ------------------------------------------------------------------ #
    # Neighbourhood enumeration
    # ------------------------------------------------------------------ #

    def areas_within(self, area: int, radius: float) -> List[int]:
        """Areas whose *centre* is within ``radius`` of ``area``'s centre.

        Used to enumerate feasible (worker-type, task-type) edges without
        the quadratic scan over all area pairs: a worker type can only
        reach task types whose centres lie within the travel radius.

        The origin area is always included (radius ``>= 0`` covers the zero
        self-distance).
        """
        self._check_area(area)
        if radius < 0:
            return []
        col, row = self.cell_coords(area)
        reach_cols = int(math.floor(radius / self.cell_width)) + 1
        reach_rows = int(math.floor(radius / self.cell_height)) + 1
        origin = self.center_of(area)
        found: List[int] = []
        for r in range(max(0, row - reach_rows), min(self.ny, row + reach_rows + 1)):
            for c in range(max(0, col - reach_cols), min(self.nx, col + reach_cols + 1)):
                candidate = r * self.nx + c
                if origin.distance_to(self.center_of(candidate)) <= radius:
                    found.append(candidate)
        return found

    def iter_areas(self) -> Iterator[int]:
        """Iterate over all flat area indices in order."""
        return iter(range(self.n_areas))

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def histogram(self, points: Sequence[Point]) -> List[int]:
        """Count points per area (dropping points outside the bounds).

        Matches the paper's preprocessing: "we ignore the data points
        beyond the scope of the rectangle" (Section 6.1).
        """
        counts = [0] * self.n_areas
        for p in points:
            if self.bounds.contains(p):
                counts[self.area_of(p)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Grid({self.nx}x{self.ny} over {self.bounds})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grid):
            return NotImplemented
        return self.bounds == other.bounds and self.nx == other.nx and self.ny == other.ny

    def __hash__(self) -> int:
        return hash((self.bounds, self.nx, self.ny))
