"""The constant-velocity travel model of Definition 3.

Travel cost ``d(w, r)`` is the time to move from the worker's location to
the task's location: Euclidean distance divided by a global velocity.  The
paper assumes one shared velocity for all workers ("different velocities
can be transformed into the same velocity by adjusting the travel costs"),
so a single :class:`TravelModel` is attached to a problem instance.

The synthetic experiments use 5 grid cells per slot; :meth:`TravelModel.
cells_per_slot` builds that configuration directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.spatial.geometry import Point, euclidean_distance

__all__ = ["TravelModel"]


@dataclass(frozen=True)
class TravelModel:
    """Travel-time model with one global velocity.

    Attributes:
        velocity: distance units per minute.  Must be positive.
    """

    velocity: float

    def __post_init__(self) -> None:
        if self.velocity <= 0:
            raise ConfigurationError(f"velocity must be positive, got {self.velocity}")

    @staticmethod
    def cells_per_slot(cells: float, slot_minutes: float, cell_size: float = 1.0) -> "TravelModel":
        """The paper's synthetic setting: a worker covers ``cells`` grid
        cells per time slot (Section 6.1 uses 5 cells per slot).

        Args:
            cells: cells traversed per slot.
            slot_minutes: slot duration in minutes.
            cell_size: spatial extent of one cell (defaults to 1 unit).
        """
        if cells <= 0 or slot_minutes <= 0:
            raise ConfigurationError(
                f"cells and slot_minutes must be positive, got {cells}, {slot_minutes}"
            )
        return TravelModel(velocity=cells * cell_size / slot_minutes)

    def travel_time(self, origin: Point, destination: Point) -> float:
        """Minutes needed to move from ``origin`` to ``destination``."""
        return euclidean_distance(origin, destination) / self.velocity

    def travel_time_for_distance(self, distance: float) -> float:
        """Minutes needed to cover a raw distance."""
        if distance < 0:
            raise ConfigurationError(f"distance must be non-negative, got {distance}")
        return distance / self.velocity

    def reachable_distance(self, minutes: float) -> float:
        """Maximum distance coverable in ``minutes`` (0 for negative input).

        Used to bound neighbourhood searches when building feasibility
        edges: a partner farther than ``reachable_distance(budget)`` can
        never satisfy the deadline constraint.
        """
        if minutes <= 0:
            return 0.0
        return minutes * self.velocity

    def position_at(self, origin: Point, destination: Point, depart: float, now: float) -> Point:
        """Where a worker is at instant ``now`` after departing ``origin``
        at ``depart`` heading straight for ``destination``.

        Before departure the worker is at ``origin``; after arrival they
        remain at ``destination`` (the platform's dispatch sends workers to
        an area where they wait for the predicted task).
        """
        if now <= depart:
            return origin
        return origin.toward(destination, self.velocity * (now - depart))
