"""Spatial substrate: geometry, grid areas, time slots and travel costs.

The paper partitions the plane into uniform *grid areas* and the timeline
into *time slots* (Section 3.1.1); every prediction and both POLAR
algorithms operate on (slot, area) *types*.  This package provides those
primitives:

* :mod:`repro.spatial.geometry` — points and Euclidean distance.
* :mod:`repro.spatial.grid` — uniform grid partitioning of a rectangle.
* :mod:`repro.spatial.timeslots` — uniform partitioning of a time horizon.
* :mod:`repro.spatial.travel` — the constant-velocity travel-time model
  of Definition 3.
"""

from repro.spatial.geometry import BoundingBox, Point, euclidean_distance, midpoint
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel

__all__ = [
    "BoundingBox",
    "Point",
    "euclidean_distance",
    "midpoint",
    "Grid",
    "Timeline",
    "TravelModel",
]
