"""Uniform partitioning of a time horizon into *slots*.

The paper partitions the timeline into ``t`` equal slots (Table 3/4:
``t ∈ {12, 24, 48, 96, 144}`` per day, one slot typically 15 minutes).
Predicted counts, the offline guide and the POLAR algorithms address time
exclusively through slot indices ``i``; :class:`Timeline` owns the
instant ↔ slot mapping.

All times in the library are minutes from the start of the horizon unless
stated otherwise.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.errors import TimelineError

__all__ = ["Timeline"]

MINUTES_PER_DAY = 24 * 60


class Timeline:
    """A horizon ``[t0, t0 + n_slots * slot_minutes)`` split into slots.

    Args:
        n_slots: number of slots ``α``.
        slot_minutes: duration of one slot in minutes.
        t0: start of the horizon (minutes), default 0.

    Raises:
        TimelineError: for non-positive slot counts or durations.
    """

    __slots__ = ("n_slots", "slot_minutes", "t0")

    def __init__(self, n_slots: int, slot_minutes: float, t0: float = 0.0) -> None:
        if n_slots <= 0:
            raise TimelineError(f"n_slots must be positive, got {n_slots}")
        if slot_minutes <= 0:
            raise TimelineError(f"slot_minutes must be positive, got {slot_minutes}")
        self.n_slots = int(n_slots)
        self.slot_minutes = float(slot_minutes)
        self.t0 = float(t0)

    @staticmethod
    def day(n_slots: int) -> "Timeline":
        """A 24-hour horizon split into ``n_slots`` equal slots.

        This is the paper's configuration: ``Timeline.day(96)`` gives
        15-minute slots, ``Timeline.day(48)`` 30-minute slots, etc.
        """
        if n_slots <= 0:
            raise TimelineError(f"n_slots must be positive, got {n_slots}")
        return Timeline(n_slots, MINUTES_PER_DAY / n_slots)

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    @property
    def horizon_end(self) -> float:
        """The exclusive end of the horizon in minutes."""
        return self.t0 + self.n_slots * self.slot_minutes

    @property
    def duration(self) -> float:
        """Total horizon length in minutes."""
        return self.n_slots * self.slot_minutes

    def contains(self, t: float) -> bool:
        """Whether instant ``t`` falls inside the horizon.

        The horizon is half-open ``[t0, end)`` except that the exact end
        instant is accepted and binned into the last slot, mirroring the
        closed-edge convention of :class:`repro.spatial.grid.Grid`.
        """
        return self.t0 <= t <= self.horizon_end

    def slot_of(self, t: float) -> int:
        """The slot index ``i`` containing instant ``t``.

        Raises:
            TimelineError: if ``t`` is outside the horizon.
        """
        if not self.contains(t):
            raise TimelineError(
                f"instant {t} outside horizon [{self.t0}, {self.horizon_end}]"
            )
        slot = int((t - self.t0) / self.slot_minutes)
        if slot == self.n_slots:
            slot -= 1
        return slot

    def slot_start(self, slot: int) -> float:
        """Start instant of slot ``i``."""
        self._check_slot(slot)
        return self.t0 + slot * self.slot_minutes

    def slot_end(self, slot: int) -> float:
        """End instant of slot ``i`` (equals the next slot's start)."""
        self._check_slot(slot)
        return self.t0 + (slot + 1) * self.slot_minutes

    def slot_mid(self, slot: int) -> float:
        """Midpoint instant of slot ``i`` — the representative arrival time
        assigned to predicted objects of that slot by the guide generator."""
        self._check_slot(slot)
        return self.t0 + (slot + 0.5) * self.slot_minutes

    def slot_bounds(self, slot: int) -> Tuple[float, float]:
        """``(start, end)`` of slot ``i``."""
        return self.slot_start(slot), self.slot_end(slot)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.n_slots:
            raise TimelineError(f"slot index {slot} out of range [0, {self.n_slots})")

    def iter_slots(self) -> Iterator[int]:
        """Iterate over all slot indices in order."""
        return iter(range(self.n_slots))

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def histogram(self, instants: Sequence[float]) -> List[int]:
        """Count instants per slot, dropping out-of-horizon instants."""
        counts = [0] * self.n_slots
        for t in instants:
            if self.contains(t):
                counts[self.slot_of(t)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeline({self.n_slots} slots x {self.slot_minutes:g} min from t0={self.t0:g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        return (
            self.n_slots == other.n_slots
            and self.slot_minutes == other.slot_minutes
            and self.t0 == other.t0
        )

    def __hash__(self) -> int:
        return hash((self.n_slots, self.slot_minutes, self.t0))
