"""Planar geometry primitives.

The paper works in a 2-D Euclidean space (Definition 1–3); locations are
points and the travel cost between a worker and a task is the Euclidean
distance divided by a common velocity.  Only the distance machinery lives
here; the velocity scaling is in :mod:`repro.spatial.travel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple

__all__ = ["Point", "BoundingBox", "euclidean_distance", "midpoint", "centroid"]


class Point(NamedTuple):
    """A location in the 2-D plane.

    ``Point`` is a ``NamedTuple`` so instances are immutable, hashable,
    cheap, and unpack naturally (``x, y = p``).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance from this point to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def toward(self, target: "Point", distance: float) -> "Point":
        """The point reached by moving ``distance`` from here toward ``target``.

        If ``distance`` meets or exceeds the separation, returns ``target``
        (movement never overshoots).  A non-positive ``distance`` returns
        this point unchanged.
        """
        if distance <= 0.0:
            return self
        gap = self.distance_to(target)
        if gap <= distance or gap == 0.0:
            return target
        ratio = distance / gap
        return Point(self.x + (target.x - self.x) * ratio, self.y + (target.y - self.y) * ratio)


def euclidean_distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points (module-level convenience)."""
    return math.hypot(a.x - b.x, a.y - b.y)


def midpoint(a: Point, b: Point) -> Point:
    """The midpoint of the segment ``ab``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points.

    Raises:
        ValueError: if ``points`` is empty.
    """
    xs = 0.0
    ys = 0.0
    count = 0
    for p in points:
        xs += p.x
        ys += p.y
        count += 1
    if count == 0:
        raise ValueError("centroid() requires at least one point")
    return Point(xs / count, ys / count)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[x_min, x_max] × [y_min, y_max]``.

    Used as the spatial extent of a :class:`repro.spatial.grid.Grid` and as
    the sampling region of the workload generators.  Degenerate (zero-area)
    boxes are rejected because the grid partitioning divides by the side
    lengths.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if not (self.x_max > self.x_min and self.y_max > self.y_min):
            raise ValueError(
                f"degenerate bounding box: [{self.x_min}, {self.x_max}] x "
                f"[{self.y_min}, {self.y_max}]"
            )

    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.y_max - self.y_min

    @property
    def center(self) -> Point:
        """The geometric centre of the box."""
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    @property
    def area(self) -> float:
        """Area of the box."""
        return self.width * self.height

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside the box (closed on all sides)."""
        return self.x_min <= p.x <= self.x_max and self.y_min <= p.y <= self.y_max

    def clamp(self, p: Point) -> Point:
        """The nearest point to ``p`` inside the box."""
        x = min(max(p.x, self.x_min), self.x_max)
        y = min(max(p.y, self.y_min), self.y_max)
        return Point(x, y)

    def corners(self) -> Iterator[Point]:
        """Yield the four corners counter-clockwise from ``(x_min, y_min)``."""
        yield Point(self.x_min, self.y_min)
        yield Point(self.x_max, self.y_min)
        yield Point(self.x_max, self.y_max)
        yield Point(self.x_min, self.y_max)

    @staticmethod
    def unit_square(side: float) -> "BoundingBox":
        """A square ``[0, side] × [0, side]`` — the synthetic-data region."""
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        return BoundingBox(0.0, 0.0, side, side)
