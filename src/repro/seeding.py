"""Deterministic seed derivation.

``hash()`` on strings is salted per process (PYTHONHASHSEED), so seeding
RNGs from tuples containing strings would make runs irreproducible across
interpreter invocations.  All generators derive child seeds through
:func:`derive_seed`, which hashes the repr with SHA-256 — stable across
processes, platforms and Python versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any

import numpy as np

__all__ = ["derive_seed", "derive_random", "derive_numpy_rng"]


def derive_seed(*parts: Any) -> int:
    """A 63-bit integer seed deterministically derived from ``parts``.

    Parts are rendered with ``repr`` and joined, so any mix of ints,
    floats and strings works; two distinct part tuples collide only with
    cryptographic-hash probability.
    """
    payload = "\x1f".join(repr(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def derive_random(*parts: Any) -> random.Random:
    """A stdlib ``random.Random`` seeded from :func:`derive_seed`."""
    return random.Random(derive_seed(*parts))


def derive_numpy_rng(*parts: Any) -> np.random.Generator:
    """A numpy ``Generator`` seeded from :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(*parts))
