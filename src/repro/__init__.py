"""FTOA reproduction: Flexible Online Task Assignment in Real-Time
Spatial Data (Tong et al., PVLDB 10(11), 2017).

The public API re-exports the pieces a user needs to run the two-step
framework end to end::

    from repro import (
        SyntheticConfig, SyntheticGenerator, build_guide,
        run_polar, run_polar_op, run_simple_greedy, run_batch, run_opt,
    )

    generator = SyntheticGenerator(SyntheticConfig(n_workers=2000, n_tasks=2000))
    instance = generator.generate()
    a, b = exact_oracle(generator)
    guide = build_guide(a, b, generator.grid, generator.timeline,
                        generator.travel, worker_duration=..., task_duration=...)
    print(run_polar_op(instance, guide).summary())

See README.md for the guided tour and DESIGN.md for the system map.
"""

from repro.core import (
    AssignmentOutcome,
    Decision,
    OfflineGuide,
    build_guide,
    polar_op_ratio,
    polar_ratio,
    run_batch,
    run_opt,
    run_polar,
    run_polar_op,
    run_simple_greedy,
)
from repro.model import Instance, Matching, Task, Worker
from repro.spatial import BoundingBox, Grid, Point, Timeline, TravelModel
from repro.streams import (
    CityConfig,
    SyntheticConfig,
    SyntheticGenerator,
    TaxiCity,
    beijing_config,
    exact_oracle,
    hangzhou_config,
    perturbed_oracle,
    rounded_counts,
)

__version__ = "1.0.0"

__all__ = [
    "Worker",
    "Task",
    "Instance",
    "Matching",
    "Point",
    "BoundingBox",
    "Grid",
    "Timeline",
    "TravelModel",
    "SyntheticConfig",
    "SyntheticGenerator",
    "CityConfig",
    "TaxiCity",
    "beijing_config",
    "hangzhou_config",
    "exact_oracle",
    "perturbed_oracle",
    "rounded_counts",
    "OfflineGuide",
    "build_guide",
    "run_polar",
    "run_polar_op",
    "run_simple_greedy",
    "run_batch",
    "run_opt",
    "AssignmentOutcome",
    "Decision",
    "polar_ratio",
    "polar_op_ratio",
    "__version__",
]
