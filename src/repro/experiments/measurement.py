"""Wall-clock, CPU-time and peak-memory measurement of algorithm runs.

The paper reports three panels per experiment: matching size, running
time and memory.  Time is measured with ``perf_counter`` around the bare
call; ``process_time`` is captured alongside it so parallel sweeps can
report per-cell CPU cost (wall clock alone under-reports work when many
worker processes share cores).  Memory is the ``tracemalloc`` peak of a
*second* run — tracing roughly doubles allocation cost, so folding both
into one run would distort the time panel (the relative shapes are what
we reproduce).  Callers who only need sizes can disable either probe.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["MeasuredRun", "measure"]


@dataclass
class MeasuredRun:
    """One measured call.

    Attributes:
        value: the call's return value (from the timing run).
        seconds: wall-clock duration of the untraced run.
        cpu_seconds: ``process_time`` duration of the same run (user +
            system CPU of this process; excludes sleeps and other
            processes' work).
        peak_mb: tracemalloc peak of the traced run, in MiB (None when
            memory measurement was disabled).
    """

    value: Any
    seconds: float
    cpu_seconds: float
    peak_mb: Optional[float]


def measure(
    fn: Callable[[], Any],
    measure_memory: bool = True,
) -> MeasuredRun:
    """Run ``fn`` once for time and (optionally) once more for memory.

    Args:
        fn: a zero-argument callable (bind arguments with a lambda).
        measure_memory: run the second, traced pass.  Deterministic
            callables return identical values on both passes; the value
            from the *timing* pass is returned.
    """
    cpu_start = time.process_time()
    start = time.perf_counter()
    value = fn()
    seconds = time.perf_counter() - start
    cpu_seconds = time.process_time() - cpu_start

    peak_mb: Optional[float] = None
    if measure_memory:
        tracemalloc.start()
        try:
            fn()
            _current, peak = tracemalloc.get_traced_memory()
            peak_mb = peak / (1024.0 * 1024.0)
        finally:
            tracemalloc.stop()
    return MeasuredRun(
        value=value, seconds=seconds, cpu_seconds=cpu_seconds, peak_mb=peak_mb
    )
