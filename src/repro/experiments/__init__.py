"""Experiment harness: every table and figure of Section 6.

The registry maps experiment ids (see DESIGN.md §4) to driver functions;
the CLI (`python -m repro`) and the benchmark suite both go through it.

* :mod:`repro.experiments.measurement` — wall/CPU time + tracemalloc
  peaks.
* :mod:`repro.experiments.runner` — run all algorithms on one instance.
* :mod:`repro.experiments.parallel` — the process-parallel sweep engine
  (``SweepExecutor``; cells regenerate instances locally).
* :mod:`repro.experiments.figures` — the Figure 4/5/6 sweep drivers.
* :mod:`repro.experiments.tables` — the Table 5 prediction shoot-out.
* :mod:`repro.experiments.ablations` — CR validation, prediction-noise
  and guide-solver ablations.
* :mod:`repro.experiments.report` — plain-text rendering and JSON I/O.
"""

from repro.experiments.measurement import MeasuredRun, measure
from repro.experiments.parallel import CellSpec, CityPoint, SweepExecutor, SyntheticPoint
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.results import AlgoCell, SweepResult, TableResult
from repro.experiments.runner import (
    DEFAULT_ALGORITHMS,
    run_algorithm_cell,
    run_algorithms_on_instance,
)

__all__ = [
    "measure",
    "MeasuredRun",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "SweepResult",
    "TableResult",
    "AlgoCell",
    "DEFAULT_ALGORITHMS",
    "run_algorithm_cell",
    "run_algorithms_on_instance",
    "SweepExecutor",
    "SyntheticPoint",
    "CityPoint",
    "CellSpec",
]
