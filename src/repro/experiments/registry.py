"""The experiment registry: DESIGN.md §4's index, executable.

Every entry maps an experiment id to a driver with the uniform signature
``fn(scale, measure_memory) -> SweepResult | TableResult``.  The CLI and
the benchmark suite both resolve experiments here, so the index in
DESIGN.md, the benches and the CLI can never drift apart (a test walks
this registry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Union

from repro.errors import ExperimentError
from repro.experiments import ablations, figures, tables
from repro.experiments.results import SweepResult, TableResult

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment", "list_experiments"]

Result = Union[SweepResult, TableResult]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment.

    Attributes:
        experiment_id: registry key (also the DESIGN.md id).
        paper_ref: which figure/table of the paper this regenerates.
        description: one line for ``repro list``.
        default_scale: the scale the EXPERIMENTS.md runs used.
        run: the driver.
        supports_jobs: whether ``run`` accepts ``jobs=`` (the figure
            sweeps routed through the parallel engine do; tables and
            ablations run serially).
    """

    experiment_id: str
    paper_ref: str
    description: str
    default_scale: float
    run: Callable[..., Result]
    supports_jobs: bool = False


def _spec(
    experiment_id, paper_ref, description, default_scale, run, supports_jobs=False
) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id, paper_ref, description, default_scale, run, supports_jobs
    )


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        _spec(
            "fig4_workers",
            "Figure 4(a,e,i)",
            "synthetic sweep over |W| in {5k..40k}",
            1.0,
            figures.run_fig4_workers,
            supports_jobs=True,
        ),
        _spec(
            "fig4_tasks",
            "Figure 4(b,f,j)",
            "synthetic sweep over |R| in {5k..40k}",
            1.0,
            figures.run_fig4_tasks,
            supports_jobs=True,
        ),
        _spec(
            "fig4_deadline",
            "Figure 4(c,g,k)",
            "synthetic sweep over Dr in {1.0..3.0} slots",
            1.0,
            figures.run_fig4_deadline,
            supports_jobs=True,
        ),
        _spec(
            "fig4_grids",
            "Figure 4(d,h,l)",
            "synthetic sweep over grid side in {20..200}",
            1.0,
            figures.run_fig4_grids,
            supports_jobs=True,
        ),
        _spec(
            "fig5_slots",
            "Figure 5(a,e,i)",
            "synthetic sweep over slot count in {12..144}",
            1.0,
            figures.run_fig5_slots,
            supports_jobs=True,
        ),
        _spec(
            "fig5_scalability",
            "Figure 5(b,f,j)",
            "scalability sweep |W|=|R| in {200k..1M} (scaled)",
            0.1,
            figures.run_fig5_scalability,
            supports_jobs=True,
        ),
        _spec(
            "fig5_beijing",
            "Figure 5(c,g,k)",
            "Beijing stand-in: Dr sweep with HP-MSI-fed guide",
            0.2,
            lambda scale=0.2, measure_memory=True, jobs=1: figures.run_fig5_city(
                "beijing", scale=scale, measure_memory=measure_memory, jobs=jobs
            ),
            supports_jobs=True,
        ),
        _spec(
            "fig5_hangzhou",
            "Figure 5(d,h,l)",
            "Hangzhou stand-in: Dr sweep with HP-MSI-fed guide",
            0.2,
            lambda scale=0.2, measure_memory=True, jobs=1: figures.run_fig5_city(
                "hangzhou", scale=scale, measure_memory=measure_memory, jobs=jobs
            ),
            supports_jobs=True,
        ),
        _spec(
            "fig6_mu",
            "Figure 6(a,e,i)",
            "task temporal mu sweep",
            1.0,
            figures.run_fig6_temporal_mu,
            supports_jobs=True,
        ),
        _spec(
            "fig6_sigma",
            "Figure 6(b,f,j)",
            "task temporal sigma sweep",
            1.0,
            figures.run_fig6_temporal_sigma,
            supports_jobs=True,
        ),
        _spec(
            "fig6_mean",
            "Figure 6(c,g,k)",
            "task spatial mean sweep",
            1.0,
            figures.run_fig6_spatial_mean,
            supports_jobs=True,
        ),
        _spec(
            "fig6_cov",
            "Figure 6(d,h,l)",
            "task spatial covariance sweep",
            1.0,
            figures.run_fig6_spatial_cov,
            supports_jobs=True,
        ),
        _spec(
            "table5_prediction",
            "Table 5",
            "7 predictors x 2 cities x {task,worker}, RMSLE and ER",
            1.0,
            lambda scale=1.0, measure_memory=True: tables.run_table5(scale=scale),
        ),
        _spec(
            "ablation_cr",
            "Theorems 1-2",
            "Monte-Carlo competitive ratios vs 0.40/0.47",
            1.0,
            lambda scale=1.0, measure_memory=True: ablations.run_competitive_ratio(
                scale=scale
            ),
        ),
        _spec(
            "ablation_prediction_noise",
            "Sec. 6.3.2 discussion",
            "guide quality vs oracle noise (greedy crossover)",
            0.25,
            lambda scale=0.25, measure_memory=True: ablations.run_prediction_noise(
                scale=scale
            ),
        ),
        _spec(
            "ablation_guide_solvers",
            "Sec. 4 notes (1)-(2)",
            "Algorithm 1 backends: FF/Dinic/min-cost/scipy",
            0.1,
            lambda scale=0.1, measure_memory=True: ablations.run_guide_solvers(
                scale=scale
            ),
        ),
        _spec(
            "ablation_batch_window",
            "Sec. 6.1 (GR)",
            "GR window-length sensitivity",
            0.1,
            lambda scale=0.1, measure_memory=True: ablations.run_batch_window(
                scale=scale
            ),
        ),
        _spec(
            "ablation_movement_audit",
            "Sec. 5.1 assumption",
            "deadline feasibility of matched pairs under movement",
            0.25,
            lambda scale=0.25, measure_memory=True: ablations.run_movement_audit(
                scale=scale
            ),
        ),
    )
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Resolve an experiment id.

    Raises:
        ExperimentError: for unknown ids (message lists valid ones).
    """
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def list_experiments() -> List[ExperimentSpec]:
    """All registered experiments, in registry order."""
    return list(EXPERIMENTS.values())
