"""Plain-text rendering of experiment results.

The harness prints "the same rows/series the paper reports": one text
table per metric for sweeps (matching size / time / memory — the three
panel rows of Figures 4–6) and one labelled grid for tables.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.experiments.results import SweepResult, TableResult

__all__ = ["render_sweep", "render_table", "render"]


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:,.2f}".rstrip("0").rstrip(".")
        return f"{value:.4f}"
    return str(value)


def _render_grid(title: str, headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_sweep(result: SweepResult) -> str:
    """Three text tables (size, time, memory) for one figure column."""
    sections = []
    metric_titles = (
        ("size", "Matching size"),
        ("seconds", "Time (secs)"),
        ("cpu_seconds", "CPU (secs)"),
        ("peak_mb", "Memory (MB)"),
    )
    algorithms = list(result.cells)
    for metric, title in metric_titles:
        series = {alg: result.series(alg, metric) for alg in algorithms}
        if metric in ("peak_mb", "cpu_seconds") and all(
            all(v is None for v in values) for values in series.values()
        ):
            continue
        headers = [result.x_label] + algorithms
        rows = []
        for index, x_value in enumerate(result.x_values):
            row = [_format_value(x_value)]
            for alg in algorithms:
                row.append(_format_value(series[alg][index]))
            rows.append(row)
        sections.append(
            _render_grid(f"== {result.experiment_id}: {title} ==", headers, rows)
        )
    if result.notes:
        notes = ", ".join(f"{k}={v}" for k, v in sorted(result.notes.items()))
        sections.append(f"notes: {notes}")
    return "\n\n".join(sections)


def render_table(result: TableResult) -> str:
    """One labelled grid for a table-style experiment."""
    headers = [result.experiment_id] + result.column_labels
    rows = []
    for label, values in zip(result.row_labels, result.values):
        rows.append([label] + [_format_value(v) for v in values])
    text = _render_grid(f"== {result.experiment_id} ==", headers, rows)
    if result.notes:
        notes = ", ".join(f"{k}={v}" for k, v in sorted(result.notes.items()))
        text += f"\nnotes: {notes}"
    return text


def render(result: Union[SweepResult, TableResult]) -> str:
    """Dispatch on result kind."""
    if isinstance(result, SweepResult):
        return render_sweep(result)
    return render_table(result)
