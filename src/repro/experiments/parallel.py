"""The parallel sweep engine: fan (sweep-point × algorithm) cells out
over a process pool.

A figure sweep is a grid of independent *cells* — one (instance,
algorithm) pair per cell.  Every cell's matching is a pure function of
its picklable :class:`CellSpec` (the generator config, the algorithm
name and the seed), so the engine ships **specs**, not instances: worker
processes regenerate the instance and guide locally (deterministically —
all generators derive their randomness from config seeds) and only the
small measured :class:`~repro.experiments.results.AlgoCell` travels
back.  Parallel results are therefore bit-identical to serial ones; the
``--jobs 1`` default runs the very same cell function in-process.

Each worker keeps a small LRU of recently built points (instance +
guide) and, for the taxi cities, the fitted HP-MSI forecast, so the five
algorithm cells of one sweep point amortise a single rebuild per
process.

On ``fork`` hosts the pool goes further: the parent materialises every
sweep point once — instance, guide, and the warmed
``Instance.typed_arrivals()`` numpy arrays — into a module-level map
*before* forking, so workers inherit the built points through
copy-on-write pages and regenerate nothing (``_point_context`` hits the
shared map first; the per-process LRU is the fallback for platforms
whose pools spawn instead of fork).  The sweep result's
``worker_rebuilds`` note counts how many pool cells had to rebuild —
``0`` on a fork host.

Cell execution itself goes through the serving layer: ``_execute_cell``
delegates to :func:`repro.experiments.runner.run_algorithm_cell`, which
drives each stream algorithm's incremental matcher through a
:class:`~repro.serving.session.MatchingSession` — the identical engine
(and hot loops) in every worker process, the main process, and a live
replay.
"""

from __future__ import annotations

import multiprocessing

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentError
from repro.experiments.results import AlgoCell, SweepResult
from repro.experiments.runner import build_guide_for_instance, run_algorithm_cell
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator

__all__ = ["SyntheticPoint", "CityPoint", "CellSpec", "SweepExecutor"]


@dataclass(frozen=True)
class SyntheticPoint:
    """One synthetic sweep point: an x value plus its full Table 4 config.

    The config is a frozen dataclass of primitives, so the point pickles
    in a few hundred bytes no matter the population size.
    """

    x_value: float
    config: SyntheticConfig


@dataclass(frozen=True)
class CityPoint:
    """One taxi-city sweep point (a ``Dr`` value on an evaluation day).

    Attributes:
        x_value: the task deadline ``Dr`` in slots.
        city: ``"beijing"`` or ``"hangzhou"``.
        scale: volume scale on the city's daily counts.
        history_days: HP-MSI training window.
        eval_day_offset: evaluation day = history end + offset.
    """

    x_value: float
    city: str
    scale: float
    history_days: int
    eval_day_offset: int


Point = Union[SyntheticPoint, CityPoint]


@dataclass(frozen=True)
class CellSpec:
    """One unit of sweep work: a point, an algorithm, and how to measure."""

    experiment_id: str
    point: Point
    algorithm: str
    measure_memory: bool
    opt_method: str
    seed: int


@dataclass
class _CellOutput:
    """What travels back from a worker: the cell plus point provenance.

    ``rebuilt`` records whether this cell had to materialise its point
    locally instead of finding it prebuilt (fork-CoW) or LRU-cached —
    the counter behind the sweep's ``worker_rebuilds`` note.
    """

    cell: AlgoCell
    point_notes: Dict[str, str]
    rebuilt: bool = field(default=False)


# ---------------------------------------------------------------------- #
# Worker-side point construction (process-local caches)
# ---------------------------------------------------------------------- #

# point -> (instance, guide, notes); tiny LRU so the algorithms of one
# sweep point share a single rebuild per process without pinning every
# instance of a sweep in memory.
_POINT_CACHE: Dict[Point, Tuple[object, object, Dict[str, str]]] = {}
_POINT_CACHE_LIMIT = 2

# Points the *parent* prebuilt before forking a pool: children inherit
# this map (instances, guides, and their warmed typed_arrivals arrays)
# through copy-on-write pages and never rebuild.  Read-only in workers;
# populated and cleared around each pooled run on fork hosts.
_SHARED_POINTS: Dict[Point, Tuple[object, object, Dict[str, str]]] = {}

# (city, scale, history_days, eval_day_offset) -> fitted city context;
# the HP-MSI fit is shared by all Dr points of one city sweep.
_FORECAST_CACHE: Dict[Tuple[str, float, int, int], Tuple[object, object, object, object]] = {}


def _city_forecast(point: CityPoint):
    """The city simulator plus its HP-MSI forecasts (cached per process)."""
    from repro.prediction.hpmsi import HpMsiPredictor
    from repro.streams.oracle import rounded_counts
    from repro.streams.taxi import TaxiCity, beijing_config, hangzhou_config

    key = (point.city, point.scale, point.history_days, point.eval_day_offset)
    cached = _FORECAST_CACHE.get(key)
    if cached is not None:
        return cached
    if point.city == "beijing":
        config = beijing_config()
    elif point.city == "hangzhou":
        config = hangzhou_config()
    else:
        raise ExperimentError(f"unknown city {point.city!r}")
    config = config.scaled(point.scale)
    taxi = TaxiCity(config)

    task_history, worker_history = taxi.generate_history(point.history_days)
    eval_day = point.history_days - 1 + point.eval_day_offset
    context = taxi.day_context(eval_day)

    task_predictor = HpMsiPredictor(seed=1)
    task_predictor.fit(task_history)
    predicted_tasks = rounded_counts(task_predictor.predict(context))
    worker_predictor = HpMsiPredictor(seed=2)
    worker_predictor.fit(worker_history)
    predicted_workers = rounded_counts(worker_predictor.predict(context))

    _FORECAST_CACHE.clear()
    _FORECAST_CACHE[key] = (config, taxi, predicted_workers, predicted_tasks)
    return _FORECAST_CACHE[key]


def _build_point(point: Point):
    """Materialise one sweep point: (instance, guide, notes)."""
    x = point.x_value
    if isinstance(point, SyntheticPoint):
        from repro.streams.oracle import exact_oracle

        generator = SyntheticGenerator(point.config)
        instance = generator.generate()
        worker_counts, task_counts = exact_oracle(generator)
        slot_minutes = generator.timeline.slot_minutes
        guide, guide_seconds = build_guide_for_instance(
            instance,
            worker_counts,
            task_counts,
            worker_duration=point.config.worker_duration_slots * slot_minutes,
            task_duration=point.config.task_duration_slots * slot_minutes,
        )
        notes = {
            f"guide_seconds@{x:g}": f"{guide_seconds:.3f}",
            f"guide_size@{x:g}": str(guide.matched_pairs),
        }
    elif isinstance(point, CityPoint):
        config, taxi, predicted_workers, predicted_tasks = _city_forecast(point)
        eval_day = point.history_days - 1 + point.eval_day_offset
        instance = taxi.generate_day(eval_day, task_duration_slots=x)
        slot_minutes = taxi.timeline.slot_minutes
        guide, guide_seconds = build_guide_for_instance(
            instance,
            predicted_workers,
            predicted_tasks,
            worker_duration=config.worker_duration_slots * slot_minutes,
            task_duration=x * slot_minutes,
        )
        notes = {
            f"guide_seconds@{x:g}": f"{guide_seconds:.3f}",
            f"guide_size@{x:g}": str(guide.matched_pairs),
            f"objects@{x:g}": str(instance.n_workers + instance.n_tasks),
        }
    else:
        raise ExperimentError(f"unknown sweep point type {type(point).__name__}")
    # Warm the shared stream/typing caches outside the measured regions
    # so every algorithm cell sees the same precomputed view.
    instance.typed_arrivals()
    return instance, guide, notes


def _point_context(point: Point) -> Tuple[Tuple[object, object, Dict[str, str]], bool]:
    """A built point, plus whether this process had to build it.

    Lookup order: the fork-inherited shared map (zero-copy, never
    evicted), then the process-local LRU, then a local build.
    """
    shared = _SHARED_POINTS.get(point)
    if shared is not None:
        return shared, False
    cached = _POINT_CACHE.get(point)
    if cached is not None:
        # Touch: reinsertion moves the point to the back of the
        # eviction order (plain-dict LRU).
        _POINT_CACHE[point] = _POINT_CACHE.pop(point)
        return cached, False
    built = _build_point(point)
    while len(_POINT_CACHE) >= _POINT_CACHE_LIMIT:
        _POINT_CACHE.pop(next(iter(_POINT_CACHE)))
    _POINT_CACHE[point] = built
    return built, True


def _clear_caches() -> None:
    """Drop the process-local point/forecast caches.

    The serial path runs cells in the *main* process; without this, the
    last points of a sweep (typically the largest — sweeps ascend) would
    stay referenced by module globals for the life of the interpreter.
    Pool workers die with their pool, so they never need it.
    """
    _POINT_CACHE.clear()
    _FORECAST_CACHE.clear()
    _SHARED_POINTS.clear()


def _execute_cell(spec: CellSpec) -> _CellOutput:
    """Run one cell (in the current process — worker or main)."""
    (instance, guide, notes), rebuilt = _point_context(spec.point)
    cell = run_algorithm_cell(
        instance,
        guide,
        spec.algorithm,
        measure_memory=spec.measure_memory,
        opt_method=spec.opt_method,
        seed=spec.seed,
    )
    return _CellOutput(cell=cell, point_notes=notes, rebuilt=rebuilt)


# ---------------------------------------------------------------------- #
# The executor
# ---------------------------------------------------------------------- #


class SweepExecutor:
    """Runs a sweep's cells, serially or across a process pool.

    Args:
        jobs: worker process count.  ``1`` (default) runs every cell in
            the current process — the exact code path the pool workers
            execute, so results are bit-identical either way.

    Raises:
        ExperimentError: for a non-positive ``jobs``.
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(
        self,
        experiment_id: str,
        x_label: str,
        points: Sequence[Point],
        algorithms: Iterable[str],
        measure_memory: bool = True,
        opt_method: str = "auto",
        seed: int = 0,
        notes: Optional[Dict[str, str]] = None,
    ) -> SweepResult:
        """Execute all (point × algorithm) cells and assemble the sweep.

        Args:
            experiment_id / x_label: forwarded to the result.
            points: sweep points in x order.
            algorithms: algorithm names, one cell each per point.
            measure_memory: run each cell's tracemalloc pass.
            opt_method: forwarded to OPT cells.
            seed: per-cell node-choice seed for POLAR / POLAR-OP (the
                same seed is recorded in every spec, so serial and
                parallel runs agree).
            notes: extra provenance merged into the result's notes.
        """
        algorithms = tuple(algorithms)
        specs = [
            CellSpec(
                experiment_id=experiment_id,
                point=point,
                algorithm=algorithm,
                measure_memory=measure_memory,
                opt_method=opt_method,
                seed=seed,
            )
            for point in points
            for algorithm in algorithms
        ]
        worker_rebuilds: Optional[int] = None
        if self.jobs == 1 or len(specs) <= 1:
            try:
                outputs = [_execute_cell(spec) for spec in specs]
            finally:
                _clear_caches()
        else:
            max_workers = min(self.jobs, len(specs))
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                context = None
            try:
                if context is not None:
                    # Fork-CoW: build every point once, up front, in the
                    # parent — the forked workers inherit the instances,
                    # guides, and warmed typed_arrivals() arrays as
                    # copy-on-write pages and regenerate nothing.
                    for point in points:
                        if point not in _SHARED_POINTS:
                            _SHARED_POINTS[point] = _build_point(point)
                    pool_kwargs = dict(mp_context=context)
                else:
                    pool_kwargs = {}
                with ProcessPoolExecutor(
                    max_workers=max_workers, **pool_kwargs
                ) as pool:
                    outputs = list(pool.map(_execute_cell, specs, chunksize=1))
            finally:
                _clear_caches()
            worker_rebuilds = sum(1 for output in outputs if output.rebuilt)

        result = SweepResult(experiment_id=experiment_id, x_label=x_label)
        result.notes["algorithms"] = ",".join(algorithms)
        result.notes["jobs"] = str(self.jobs)
        if worker_rebuilds is not None:
            result.notes["worker_rebuilds"] = str(worker_rebuilds)
        if notes:
            result.notes.update(notes)
        for p_index, point in enumerate(points):
            base = p_index * len(algorithms)
            per_algorithm = {
                algorithm: outputs[base + a_index].cell
                for a_index, algorithm in enumerate(algorithms)
            }
            result.add_point(point.x_value, per_algorithm)
            # Point provenance from the point's first cell (contents are
            # deterministic apart from build timing).
            result.notes.update(outputs[base].point_notes)
        return result
