"""Ablations beyond the paper's headline figures.

* :func:`run_competitive_ratio` — Monte-Carlo validation of the 0.40 /
  0.47 competitive ratios of Theorems 1–2 (the *analysed* random node
  choices, compared against OPT on fresh i.i.d. draws).
* :func:`run_prediction_noise` — degrade the oracle with multiplicative
  error and watch POLAR fall below SimpleGreedy, the effect the paper
  observes on real data (Figure 5(c–d) discussion).
* :func:`run_guide_solvers` — Algorithm 1's solver choices (Ford–
  Fulkerson, Dinic, min-cost, scipy): equal matching sizes, different
  costs/times; the min-cost variant additionally minimises travel
  (Section 4, note 2).
* :func:`run_batch_window` — GR's window-length sensitivity.
* :func:`run_movement_audit` — quantifies Section 5.1's "guide pairs are
  realisable" assumption under explicit movement semantics.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.analysis.audit import audit_outcome
from repro.analysis.competitive import estimate_competitive_ratio
from repro.core.batch import run_batch
from repro.core.greedy import run_simple_greedy
from repro.core.guide import build_guide
from repro.core.polar import run_polar
from repro.core.polar_op import run_polar_op
from repro.core.theory import polar_op_ratio, polar_ratio
from repro.errors import ExperimentError
from repro.experiments.results import TableResult
from repro.seeding import derive_random
from repro.streams.oracle import exact_oracle, perturbed_oracle
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator

__all__ = [
    "run_competitive_ratio",
    "run_prediction_noise",
    "run_guide_solvers",
    "run_batch_window",
    "run_movement_audit",
]

# A dense small configuration: enough arrivals per type that the i.i.d.
# trial model (every arrival lands on a predicted type) approximately
# holds, which is the regime the theorems speak about.
_CR_CONFIG = SyntheticConfig(
    n_workers=3_000,
    n_tasks=3_000,
    grid_side=12,
    n_slots=12,
    task_duration_slots=2.0,
    worker_duration_slots=4.0,
)


def _build_default_guide(generator: SyntheticGenerator):
    config = generator.config
    slot_minutes = generator.timeline.slot_minutes
    worker_counts, task_counts = exact_oracle(generator)
    return build_guide(
        worker_counts,
        task_counts,
        generator.grid,
        generator.timeline,
        generator.travel,
        worker_duration=config.worker_duration_slots * slot_minutes,
        task_duration=config.task_duration_slots * slot_minutes,
    )


def run_competitive_ratio(
    scale: float = 1.0,
    n_draws: int = 8,
    config: SyntheticConfig = _CR_CONFIG,
) -> TableResult:
    """Estimate empirical CRs for POLAR/POLAR-OP against theory."""
    if n_draws < 1:
        raise ExperimentError("n_draws must be >= 1")
    config = config.scaled(
        n_workers=max(1, int(config.n_workers * scale)),
        n_tasks=max(1, int(config.n_tasks * scale)),
    )
    generator = SyntheticGenerator(config)
    guide = _build_default_guide(generator)

    result = TableResult(experiment_id="ablation_cr")
    result.notes["n_draws"] = str(n_draws)
    result.notes["config"] = repr(config)

    for name, runner, bound in (
        (
            "POLAR",
            lambda inst: run_polar(inst, guide, node_choice="random"),
            polar_ratio(),
        ),
        (
            "POLAR-OP",
            lambda inst: run_polar_op(inst, guide, node_choice="random"),
            polar_op_ratio(),
        ),
        (
            "POLAR-OP (round robin)",
            lambda inst: run_polar_op(inst, guide, node_choice="round_robin"),
            polar_op_ratio(),
        ),
    ):
        estimate = estimate_competitive_ratio(
            runner,
            lambda draw: generator.generate(seed=1_000 + draw),
            n_draws=n_draws,
            name=name,
        )
        result.set(name, "mean ALG/OPT", estimate.mean)
        result.set(name, "min ALG/OPT", estimate.minimum)
        result.set(name, "theory bound", bound)
    return result


def run_prediction_noise(
    scale: float = 0.25,
    noise_levels: Iterable[float] = (0.0, 0.25, 0.5, 1.0, 2.0),
) -> TableResult:
    """Matching size vs oracle noise — when does greedy overtake POLAR?"""
    config = SyntheticConfig().scaled(
        n_workers=max(1, int(20_000 * scale)),
        n_tasks=max(1, int(20_000 * scale)),
    )
    generator = SyntheticGenerator(config)
    instance = generator.generate()
    slot_minutes = generator.timeline.slot_minutes
    expected_workers = generator.expected_worker_counts()
    expected_tasks = generator.expected_task_counts()

    result = TableResult(experiment_id="ablation_prediction_noise")
    result.notes["scale"] = f"{scale:g}"
    greedy_size = run_simple_greedy(instance, indexed=True).size

    for noise in noise_levels:
        rng = derive_random("noise", noise)
        worker_counts = perturbed_oracle(expected_workers, noise, rng)
        task_counts = perturbed_oracle(expected_tasks, noise, rng)
        guide = build_guide(
            worker_counts,
            task_counts,
            generator.grid,
            generator.timeline,
            generator.travel,
            worker_duration=config.worker_duration_slots * slot_minutes,
            task_duration=config.task_duration_slots * slot_minutes,
        )
        label = f"noise={noise:g}"
        result.set(label, "POLAR", run_polar(instance, guide).size)
        result.set(label, "POLAR-OP", run_polar_op(instance, guide).size)
        result.set(label, "SimpleGreedy", greedy_size)
        result.set(label, "guide size", guide.matched_pairs)
    return result


def run_guide_solvers(scale: float = 0.1) -> TableResult:
    """Compare Algorithm 1 solver back-ends on one prediction."""
    import time

    config = SyntheticConfig().scaled(
        n_workers=max(1, int(20_000 * scale)),
        n_tasks=max(1, int(20_000 * scale)),
    )
    generator = SyntheticGenerator(config)
    worker_counts, task_counts = exact_oracle(generator)
    slot_minutes = generator.timeline.slot_minutes

    result = TableResult(experiment_id="ablation_guide_solvers")
    result.notes["scale"] = f"{scale:g}"
    for method in ("edmonds_karp", "dinic", "mincost", "scipy"):
        start = time.perf_counter()
        guide = build_guide(
            worker_counts,
            task_counts,
            generator.grid,
            generator.timeline,
            generator.travel,
            worker_duration=config.worker_duration_slots * slot_minutes,
            task_duration=config.task_duration_slots * slot_minutes,
            method=method,
        )
        seconds = time.perf_counter() - start
        result.set(method, "guide size", guide.matched_pairs)
        result.set(method, "seconds", seconds)
        if guide.total_cost is not None:
            result.set(method, "travel cost (min)", guide.total_cost)
    return result


def run_batch_window(
    scale: float = 0.1,
    windows: Iterable[float] = (0.5, 1.0, 3.0, 7.5, 15.0, 30.0),
) -> TableResult:
    """GR matching size / time as a function of the batching window."""
    import time

    config = SyntheticConfig().scaled(
        n_workers=max(1, int(20_000 * scale)),
        n_tasks=max(1, int(20_000 * scale)),
    )
    instance = SyntheticGenerator(config).generate()
    result = TableResult(experiment_id="ablation_batch_window")
    result.notes["scale"] = f"{scale:g}"
    for window in windows:
        start = time.perf_counter()
        outcome = run_batch(instance, window_minutes=window)
        seconds = time.perf_counter() - start
        label = f"{window:g} min"
        result.set(label, "size", outcome.size)
        result.set(label, "seconds", seconds)
        result.set(label, "batches", outcome.extras.get("batches", 0))
    return result


def run_movement_audit(scale: float = 0.25) -> TableResult:
    """Violation rates of matched pairs under movement semantics."""
    config = SyntheticConfig().scaled(
        n_workers=max(1, int(20_000 * scale)),
        n_tasks=max(1, int(20_000 * scale)),
    )
    generator = SyntheticGenerator(config)
    instance = generator.generate()
    guide = _build_default_guide(generator)

    result = TableResult(experiment_id="ablation_movement_audit")
    result.notes["scale"] = f"{scale:g}"
    for name, outcome in (
        ("POLAR", run_polar(instance, guide)),
        ("POLAR-OP", run_polar_op(instance, guide)),
        ("SimpleGreedy", run_simple_greedy(instance, indexed=True)),
        ("GR", run_batch(instance)),
    ):
        audit = audit_outcome(instance, outcome)
        result.set(name, "matched", audit.total_pairs)
        result.set(name, "violations", len(audit.violations))
        result.set(name, "violation rate", audit.violation_rate)
        result.set(name, "max lateness (min)", audit.max_lateness)
    return result
