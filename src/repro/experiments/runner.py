"""Run the compared algorithms on one instance, measured.

One sweep point of any figure = one instance + one guide + the five
algorithms of Section 6.1 (SimpleGreedy, GR, POLAR, POLAR-OP, OPT).  Per
the paper, "we omit the running time of the offline preprocessing": the
guide build is measured separately and reported as provenance, not as
POLAR's running time.

Every stream algorithm is executed through the serving layer: a
:class:`~repro.serving.session.MatchingSession` drives the algorithm's
incremental :class:`~repro.core.engine.Matcher` over the instance's
arrival stream — the same engine a live deployment or a ``repro
replay`` uses.  The session's bulk fast path makes this free for the
harness (bit-identical results, same hot loops); OPT is offline (it sees
the full future by definition) and runs directly.  The TGOA baseline is
also available as a cell algorithm beyond the paper's five.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.engine import STREAM_ALGORITHMS, create_matcher
from repro.core.guide import OfflineGuide, build_guide
from repro.core.opt import run_opt
from repro.errors import ExperimentError, ReproError
from repro.experiments.measurement import measure
from repro.experiments.results import AlgoCell
from repro.model.instance import Instance
from repro.serving.session import InstanceSource, MatchingSession

__all__ = [
    "DEFAULT_ALGORITHMS",
    "run_algorithm_cell",
    "run_algorithms_on_instance",
    "build_guide_for_instance",
]

DEFAULT_ALGORITHMS = ("SimpleGreedy", "GR", "POLAR", "POLAR-OP", "OPT")

# Above this many objects the literal linear-scan greedy becomes the
# bottleneck of a whole sweep; the indexed variant is exact and fast.
# The threshold sits above every Figure 4/6 sweep point (max 60k objects)
# so a sweep never switches implementations mid-curve — only the
# scalability experiment crosses it.
_GREEDY_INDEX_THRESHOLD = 150_000


def build_guide_for_instance(
    instance: Instance,
    worker_counts: np.ndarray,
    task_counts: np.ndarray,
    worker_duration: float,
    task_duration: float,
    method: str = "auto",
) -> Tuple[OfflineGuide, float]:
    """Build the offline guide for an instance; returns (guide, seconds)."""
    run = measure(
        lambda: build_guide(
            worker_counts,
            task_counts,
            instance.grid,
            instance.timeline,
            instance.travel,
            worker_duration,
            task_duration,
            method=method,
        ),
        measure_memory=False,
    )
    return run.value, run.seconds


def run_algorithm_cell(
    instance: Instance,
    guide: Optional[OfflineGuide],
    algorithm: str,
    measure_memory: bool = True,
    opt_method: str = "auto",
    seed: int = 0,
) -> AlgoCell:
    """One measured (instance × algorithm) cell.

    This is the unit of work the parallel sweep engine fans out: the
    algorithm's matching depends only on ``(instance, guide, algorithm,
    seed)``, so running a cell in a worker process yields bit-identical
    sizes to running it serially.

    Args:
        instance: the problem instance.
        guide: the offline guide (required iff ``algorithm`` is POLAR or
            POLAR-OP).
        algorithm: one of :data:`DEFAULT_ALGORITHMS` (or ``"TGOA"``).
        measure_memory: also run the algorithm under tracemalloc.
        opt_method: forwarded to OPT.
        seed: node-choice seed for POLAR / POLAR-OP.

    Raises:
        ExperimentError: for an unknown algorithm name or a missing guide.
    """
    if algorithm in ("POLAR", "POLAR-OP") and guide is None:
        raise ExperimentError(f"{algorithm} requires an offline guide")
    if algorithm == "OPT":
        fn = lambda: run_opt(instance, method=opt_method)
    elif algorithm in STREAM_ALGORITHMS:
        total_objects = instance.n_workers + instance.n_tasks
        try:
            matcher = create_matcher(
                algorithm,
                instance,
                guide=guide,
                seed=seed,
                greedy_indexed=total_objects > _GREEDY_INDEX_THRESHOLD,
            )
        except ReproError as exc:
            raise ExperimentError(str(exc)) from exc
        session = MatchingSession(matcher, InstanceSource(instance))
        fn = session.run
    else:
        raise ExperimentError(f"unknown algorithm {algorithm!r}")
    run = measure(fn, measure_memory=measure_memory)
    return AlgoCell(
        size=run.value.size,
        seconds=run.seconds,
        peak_mb=run.peak_mb,
        cpu_seconds=run.cpu_seconds,
    )


def run_algorithms_on_instance(
    instance: Instance,
    guide: Optional[OfflineGuide],
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    measure_memory: bool = True,
    opt_method: str = "auto",
    seed: int = 0,
) -> Dict[str, AlgoCell]:
    """Measured runs of the requested algorithms on one instance.

    Args:
        instance: the problem instance.
        guide: the offline guide (required iff POLAR/POLAR-OP are among
            ``algorithms``).
        algorithms: subset of :data:`DEFAULT_ALGORITHMS` plus ``"TGOA"``.
        measure_memory: also run each algorithm under tracemalloc.
        opt_method: forwarded to OPT.
        seed: node-choice seed for POLAR.

    Raises:
        ExperimentError: for unknown algorithm names or a missing guide.
    """
    return {
        name: run_algorithm_cell(
            instance,
            guide,
            name,
            measure_memory=measure_memory,
            opt_method=opt_method,
            seed=seed,
        )
        for name in algorithms
    }
