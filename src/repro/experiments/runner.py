"""Run the compared algorithms on one instance, measured.

One sweep point of any figure = one instance + one guide + the five
algorithms of Section 6.1 (SimpleGreedy, GR, POLAR, POLAR-OP, OPT).  Per
the paper, "we omit the running time of the offline preprocessing": the
guide build is measured separately and reported as provenance, not as
POLAR's running time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.batch import run_batch
from repro.core.greedy import run_simple_greedy
from repro.core.guide import OfflineGuide, build_guide
from repro.core.opt import run_opt
from repro.core.polar import run_polar
from repro.core.polar_op import run_polar_op
from repro.errors import ExperimentError
from repro.experiments.measurement import measure
from repro.experiments.results import AlgoCell
from repro.model.instance import Instance

__all__ = [
    "DEFAULT_ALGORITHMS",
    "run_algorithm_cell",
    "run_algorithms_on_instance",
    "build_guide_for_instance",
]

DEFAULT_ALGORITHMS = ("SimpleGreedy", "GR", "POLAR", "POLAR-OP", "OPT")

# Above this many objects the literal linear-scan greedy becomes the
# bottleneck of a whole sweep; the indexed variant is exact and fast.
# The threshold sits above every Figure 4/6 sweep point (max 60k objects)
# so a sweep never switches implementations mid-curve — only the
# scalability experiment crosses it.
_GREEDY_INDEX_THRESHOLD = 150_000


def build_guide_for_instance(
    instance: Instance,
    worker_counts: np.ndarray,
    task_counts: np.ndarray,
    worker_duration: float,
    task_duration: float,
    method: str = "auto",
) -> Tuple[OfflineGuide, float]:
    """Build the offline guide for an instance; returns (guide, seconds)."""
    run = measure(
        lambda: build_guide(
            worker_counts,
            task_counts,
            instance.grid,
            instance.timeline,
            instance.travel,
            worker_duration,
            task_duration,
            method=method,
        ),
        measure_memory=False,
    )
    return run.value, run.seconds


def run_algorithm_cell(
    instance: Instance,
    guide: Optional[OfflineGuide],
    algorithm: str,
    measure_memory: bool = True,
    opt_method: str = "auto",
    seed: int = 0,
) -> AlgoCell:
    """One measured (instance × algorithm) cell.

    This is the unit of work the parallel sweep engine fans out: the
    algorithm's matching depends only on ``(instance, guide, algorithm,
    seed)``, so running a cell in a worker process yields bit-identical
    sizes to running it serially.

    Args:
        instance: the problem instance.
        guide: the offline guide (required iff ``algorithm`` is POLAR or
            POLAR-OP).
        algorithm: one of :data:`DEFAULT_ALGORITHMS`.
        measure_memory: also run the algorithm under tracemalloc.
        opt_method: forwarded to OPT.
        seed: node-choice seed for POLAR / POLAR-OP.

    Raises:
        ExperimentError: for an unknown algorithm name or a missing guide.
    """
    if algorithm in ("POLAR", "POLAR-OP") and guide is None:
        raise ExperimentError(f"{algorithm} requires an offline guide")
    if algorithm == "SimpleGreedy":
        total_objects = instance.n_workers + instance.n_tasks
        greedy_indexed = total_objects > _GREEDY_INDEX_THRESHOLD
        fn = lambda: run_simple_greedy(instance, indexed=greedy_indexed)
    elif algorithm == "GR":
        fn = lambda: run_batch(instance)
    elif algorithm == "POLAR":
        fn = lambda: run_polar(instance, guide, seed=seed)
    elif algorithm == "POLAR-OP":
        fn = lambda: run_polar_op(instance, guide, seed=seed)
    elif algorithm == "OPT":
        fn = lambda: run_opt(instance, method=opt_method)
    else:
        raise ExperimentError(f"unknown algorithm {algorithm!r}")
    run = measure(fn, measure_memory=measure_memory)
    return AlgoCell(
        size=run.value.size,
        seconds=run.seconds,
        peak_mb=run.peak_mb,
        cpu_seconds=run.cpu_seconds,
    )


def run_algorithms_on_instance(
    instance: Instance,
    guide: Optional[OfflineGuide],
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    measure_memory: bool = True,
    opt_method: str = "auto",
    seed: int = 0,
) -> Dict[str, AlgoCell]:
    """Measured runs of the requested algorithms on one instance.

    Args:
        instance: the problem instance.
        guide: the offline guide (required iff POLAR/POLAR-OP are among
            ``algorithms``).
        algorithms: subset of :data:`DEFAULT_ALGORITHMS`.
        measure_memory: also run each algorithm under tracemalloc.
        opt_method: forwarded to OPT.
        seed: node-choice seed for POLAR.

    Raises:
        ExperimentError: for unknown algorithm names or a missing guide.
    """
    return {
        name: run_algorithm_cell(
            instance,
            guide,
            name,
            measure_memory=measure_memory,
            opt_method=opt_method,
            seed=seed,
        )
        for name in algorithms
    }
