"""Result containers for sweeps (figures) and grids (tables).

Figures in the paper are one varied factor × five algorithms × three
metrics; :class:`SweepResult` holds exactly that.  Table 5 is a metric
grid over predictors × datasets; :class:`TableResult` is a generic
labelled 2-D grid of floats.  Both serialise to/from JSON so experiment
runs can be archived and re-rendered.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ExperimentError

__all__ = ["AlgoCell", "SweepResult", "TableResult"]


@dataclass
class AlgoCell:
    """One algorithm's measurements at one sweep point.

    Attributes:
        size: matching size.
        seconds: running time (the paper's time panel).
        peak_mb: peak traced memory (the paper's memory panel), if
            measured.
        cpu_seconds: ``process_time`` of the run, if measured — lets
            parallel sweeps report per-cell CPU cost next to wall clock.
    """

    size: int
    seconds: float
    peak_mb: Optional[float] = None
    cpu_seconds: Optional[float] = None


@dataclass
class SweepResult:
    """A full sweep: one Figure 4/5/6 column (all three panels).

    Attributes:
        experiment_id: registry id, e.g. ``"fig4_workers"``.
        x_label: the varied factor (``"|W|"``, ``"Dr"``, …).
        x_values: sweep points, in order.
        cells: ``algorithm → list of AlgoCell``, aligned with
            ``x_values``.
        notes: free-form provenance (scale factor, seeds, deviations).
    """

    experiment_id: str
    x_label: str
    x_values: List[float] = field(default_factory=list)
    cells: Dict[str, List[AlgoCell]] = field(default_factory=dict)
    notes: Dict[str, str] = field(default_factory=dict)

    def add_point(self, x_value: float, per_algorithm: Dict[str, AlgoCell]) -> None:
        """Append one sweep point (all algorithms at once).

        Raises:
            ExperimentError: if algorithms diverge from earlier points.
        """
        if self.cells and set(per_algorithm) != set(self.cells):
            raise ExperimentError(
                f"sweep point algorithms {sorted(per_algorithm)} do not match "
                f"earlier points {sorted(self.cells)}"
            )
        self.x_values.append(float(x_value))
        for algorithm, cell in per_algorithm.items():
            self.cells.setdefault(algorithm, []).append(cell)

    def series(self, algorithm: str, metric: str) -> List[Optional[float]]:
        """One curve: ``metric`` in {"size", "seconds", "peak_mb",
        "cpu_seconds"}.

        Raises:
            ExperimentError: for unknown algorithm or metric names.
        """
        if algorithm not in self.cells:
            raise ExperimentError(f"unknown algorithm {algorithm!r} in sweep")
        if metric not in ("size", "seconds", "peak_mb", "cpu_seconds"):
            raise ExperimentError(f"unknown metric {metric!r}")
        return [getattr(cell, metric) for cell in self.cells[algorithm]]

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """JSON dump of the full sweep."""
        payload = {
            "kind": "sweep",
            "experiment_id": self.experiment_id,
            "x_label": self.x_label,
            "x_values": self.x_values,
            "cells": {
                algorithm: [asdict(cell) for cell in cells]
                for algorithm, cells in self.cells.items()
            },
            "notes": self.notes,
        }
        return json.dumps(payload, indent=2)

    @staticmethod
    def from_json(text: str) -> "SweepResult":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        if payload.get("kind") != "sweep":
            raise ExperimentError("not a sweep result payload")
        result = SweepResult(
            experiment_id=payload["experiment_id"],
            x_label=payload["x_label"],
            x_values=list(payload["x_values"]),
            notes=dict(payload.get("notes", {})),
        )
        result.cells = {
            algorithm: [AlgoCell(**cell) for cell in cells]
            for algorithm, cells in payload["cells"].items()
        }
        return result

    def save(self, path: Path) -> None:
        """Write the JSON dump to ``path``."""
        Path(path).write_text(self.to_json())


@dataclass
class TableResult:
    """A labelled grid of floats (Table 5 and the ablation tables).

    Attributes:
        experiment_id: registry id.
        row_labels / column_labels: grid axes.
        values: ``values[row][column]`` floats (None = not measured).
        notes: provenance.
    """

    experiment_id: str
    row_labels: List[str] = field(default_factory=list)
    column_labels: List[str] = field(default_factory=list)
    values: List[List[Optional[float]]] = field(default_factory=list)
    notes: Dict[str, str] = field(default_factory=dict)

    def set(self, row: str, column: str, value: float) -> None:
        """Set a cell, growing the grid as labels appear."""
        if row not in self.row_labels:
            self.row_labels.append(row)
            self.values.append([None] * len(self.column_labels))
        if column not in self.column_labels:
            self.column_labels.append(column)
            for existing in self.values:
                existing.append(None)
        r = self.row_labels.index(row)
        c = self.column_labels.index(column)
        self.values[r][c] = float(value)

    def get(self, row: str, column: str) -> Optional[float]:
        """Read a cell.

        Raises:
            ExperimentError: for unknown labels.
        """
        try:
            r = self.row_labels.index(row)
            c = self.column_labels.index(column)
        except ValueError as exc:
            raise ExperimentError(f"unknown table cell ({row!r}, {column!r})") from exc
        return self.values[r][c]

    def to_json(self) -> str:
        """JSON dump of the grid."""
        return json.dumps(
            {
                "kind": "table",
                "experiment_id": self.experiment_id,
                "row_labels": self.row_labels,
                "column_labels": self.column_labels,
                "values": self.values,
                "notes": self.notes,
            },
            indent=2,
        )

    @staticmethod
    def from_json(text: str) -> "TableResult":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        if payload.get("kind") != "table":
            raise ExperimentError("not a table result payload")
        return TableResult(
            experiment_id=payload["experiment_id"],
            row_labels=list(payload["row_labels"]),
            column_labels=list(payload["column_labels"]),
            values=[list(row) for row in payload["values"]],
            notes=dict(payload.get("notes", {})),
        )

    def save(self, path: Path) -> None:
        """Write the JSON dump to ``path``."""
        Path(path).write_text(self.to_json())
