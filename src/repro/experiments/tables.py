"""Table 5 — the offline-prediction shoot-out.

Seven predictors × two cities × two sides (tasks = "Customer", workers =
"Taxi") × two metrics (RMSLE and ER).  Each predictor trains on the
city's history and forecasts the held-out evaluation days; metrics are
averaged over those days.  Smaller is better; the paper's finding is
HA/LR/ARIMA < GBRT/PAQ/NN < HP-MSI, driven by the nonlinear weather and
rush-hour structure the richer models can express.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.results import TableResult
from repro.prediction import ALL_PREDICTORS, make_predictor
from repro.prediction.base import DemandHistory
from repro.prediction.metrics import error_rate, rmsle
from repro.streams.taxi import TaxiCity, beijing_config, hangzhou_config

__all__ = ["run_table5"]


def _evaluate_predictor(
    name: str,
    taxi: TaxiCity,
    history: DemandHistory,
    eval_days: Sequence[int],
    actual_by_day,
    seed: int,
):
    """Mean (rmsle, er) of one predictor over the evaluation days."""
    predictor = make_predictor(name, seed=seed)
    predictor.fit(history)
    rmsle_scores = []
    er_scores = []
    for day in eval_days:
        context = taxi.day_context(day)
        forecast = predictor.predict(context)
        actual = actual_by_day[day]
        rmsle_scores.append(rmsle(actual, forecast))
        er_scores.append(error_rate(actual, forecast))
    return float(np.mean(rmsle_scores)), float(np.mean(er_scores))


def run_table5(
    scale: float = 1.0,
    history_days: int = 42,
    n_eval_days: int = 5,
    predictors: Iterable[str] = ALL_PREDICTORS,
    cities: Iterable[str] = ("beijing", "hangzhou"),
    seed: int = 0,
) -> TableResult:
    """Reproduce Table 5.

    Rows are predictors; columns are ``{metric} {side} {city}`` (e.g.
    ``"ER task beijing"``), mirroring the paper's Customer/Taxi split.

    Args:
        scale: volume scale on daily counts (1.0 = Table 3 volumes; the
            counts tensors are cheap, so full scale is the default).
        history_days: training window length.
        n_eval_days: held-out days immediately after the history.
        predictors: subset of the seven names.
        cities: subset of {"beijing", "hangzhou"}.
        seed: base seed for the stochastic predictors.
    """
    if history_days < 8:
        raise ExperimentError("history_days must be >= 8 for the lag features")
    if n_eval_days < 1:
        raise ExperimentError("n_eval_days must be >= 1")
    result = TableResult(experiment_id="table5_prediction")
    result.notes["scale"] = f"{scale:g}"
    result.notes["history_days"] = str(history_days)
    result.notes["n_eval_days"] = str(n_eval_days)

    configs = {"beijing": beijing_config, "hangzhou": hangzhou_config}
    for city_name in cities:
        if city_name not in configs:
            raise ExperimentError(f"unknown city {city_name!r}")
        taxi = TaxiCity(configs[city_name]().scaled(scale))
        total_days = history_days + n_eval_days
        task_all, worker_all = taxi.generate_history(total_days)
        eval_days = list(range(history_days, total_days))

        for side, full in (("task", task_all), ("worker", worker_all)):
            history = DemandHistory(
                counts=full.counts[:history_days],
                day_of_week=full.day_of_week[:history_days],
                weather=full.weather[:history_days],
            )
            actual_by_day = {day: full.counts[day] for day in eval_days}
            for index, name in enumerate(predictors):
                mean_rmsle, mean_er = _evaluate_predictor(
                    name, taxi, history, eval_days, actual_by_day, seed + index
                )
                result.set(name, f"RMSLE {side} {city_name}", mean_rmsle)
                result.set(name, f"ER {side} {city_name}", mean_er)
    return result
