"""Sweep drivers for Figures 4, 5 and 6.

Each driver reproduces one figure column: it sweeps the paper's factor
(Table 4 values for synthetic data, Table 3 for the taxi stand-ins),
runs the five compared algorithms at every point and returns a
:class:`~repro.experiments.results.SweepResult` whose three metrics map
to the paper's matching-size / time / memory panel rows.

``scale`` multiplies population sizes so the sweeps fit any time budget:
``scale=1.0`` is the paper's configuration; benchmarks run tiny scales.
``jobs`` fans the sweep's (point × algorithm) cells out over a process
pool through :class:`~repro.experiments.parallel.SweepExecutor` —
matching sizes are bit-identical to the serial default.  All deviations
(scale, seeds, OPT mode) are recorded in the result's ``notes``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.parallel import CityPoint, SweepExecutor, SyntheticPoint
from repro.experiments.results import SweepResult
from repro.experiments.runner import DEFAULT_ALGORITHMS
from repro.streams.synthetic import SyntheticConfig

__all__ = [
    "run_fig4_workers",
    "run_fig4_tasks",
    "run_fig4_deadline",
    "run_fig4_grids",
    "run_fig5_slots",
    "run_fig5_scalability",
    "run_fig5_city",
    "run_fig6_temporal_mu",
    "run_fig6_temporal_sigma",
    "run_fig6_spatial_mean",
    "run_fig6_spatial_cov",
]

_BASE = SyntheticConfig()  # Table 4 bold defaults


def _scaled_count(value: int, scale: float) -> int:
    if scale <= 0:
        raise ExperimentError(f"scale must be positive, got {scale}")
    return max(1, int(round(value * scale)))


def _sweep_synthetic(
    experiment_id: str,
    x_label: str,
    points: Sequence[Tuple[float, SyntheticConfig]],
    scale: float,
    measure_memory: bool,
    algorithms: Iterable[str],
    opt_method: str = "auto",
    jobs: int = 1,
) -> SweepResult:
    """Shared machinery: one synthetic config per sweep point."""
    return SweepExecutor(jobs=jobs).run(
        experiment_id,
        x_label,
        [SyntheticPoint(x_value, config) for x_value, config in points],
        algorithms,
        measure_memory=measure_memory,
        opt_method=opt_method,
        notes={"scale": f"{scale:g}"},
    )


# ---------------------------------------------------------------------- #
# Figure 4 — synthetic: |W|, |R|, Dr, grids
# ---------------------------------------------------------------------- #


def run_fig4_workers(
    scale: float = 1.0,
    measure_memory: bool = True,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    jobs: int = 1,
) -> SweepResult:
    """Figure 4(a, e, i): vary ``|W|`` in {5k, 10k, 20k, 30k, 40k}."""
    points = [
        (
            float(n),
            _BASE.scaled(
                n_workers=_scaled_count(n, scale),
                n_tasks=_scaled_count(20_000, scale),
            ),
        )
        for n in (5_000, 10_000, 20_000, 30_000, 40_000)
    ]
    return _sweep_synthetic(
        "fig4_workers", "|W|", points, scale, measure_memory, algorithms, jobs=jobs
    )


def run_fig4_tasks(
    scale: float = 1.0,
    measure_memory: bool = True,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    jobs: int = 1,
) -> SweepResult:
    """Figure 4(b, f, j): vary ``|R|`` in {5k, 10k, 20k, 30k, 40k}."""
    points = [
        (
            float(n),
            _BASE.scaled(
                n_workers=_scaled_count(20_000, scale),
                n_tasks=_scaled_count(n, scale),
            ),
        )
        for n in (5_000, 10_000, 20_000, 30_000, 40_000)
    ]
    return _sweep_synthetic(
        "fig4_tasks", "|R|", points, scale, measure_memory, algorithms, jobs=jobs
    )


def run_fig4_deadline(
    scale: float = 1.0,
    measure_memory: bool = True,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    jobs: int = 1,
) -> SweepResult:
    """Figure 4(c, g, k): vary ``Dr`` in {1.0, 1.5, 2.0, 2.5, 3.0} slots."""
    points = [
        (
            dr,
            _BASE.scaled(
                n_workers=_scaled_count(20_000, scale),
                n_tasks=_scaled_count(20_000, scale),
                task_duration_slots=dr,
            ),
        )
        for dr in (1.0, 1.5, 2.0, 2.5, 3.0)
    ]
    return _sweep_synthetic(
        "fig4_deadline", "Dr", points, scale, measure_memory, algorithms, jobs=jobs
    )


def run_fig4_grids(
    scale: float = 1.0,
    measure_memory: bool = True,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    jobs: int = 1,
) -> SweepResult:
    """Figure 4(d, h, l): vary the grid side in {20, 30, 50, 100, 200}."""
    points = [
        (
            float(side),
            _BASE.scaled(
                n_workers=_scaled_count(20_000, scale),
                n_tasks=_scaled_count(20_000, scale),
                grid_side=side,
            ),
        )
        for side in (20, 30, 50, 100, 200)
    ]
    return _sweep_synthetic(
        "fig4_grids", "grid side", points, scale, measure_memory, algorithms, jobs=jobs
    )


# ---------------------------------------------------------------------- #
# Figure 5 — time slots, scalability, and the two cities
# ---------------------------------------------------------------------- #


def run_fig5_slots(
    scale: float = 1.0,
    measure_memory: bool = True,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    jobs: int = 1,
) -> SweepResult:
    """Figure 5(a, e, i): vary the slot count in {12, 24, 48, 96, 144}."""
    points = [
        (
            float(t),
            _BASE.scaled(
                n_workers=_scaled_count(20_000, scale),
                n_tasks=_scaled_count(20_000, scale),
                n_slots=t,
            ),
        )
        for t in (12, 24, 48, 96, 144)
    ]
    return _sweep_synthetic(
        "fig5_slots", "time slots", points, scale, measure_memory, algorithms, jobs=jobs
    )


def run_fig5_scalability(
    scale: float = 0.1,
    measure_memory: bool = True,
    algorithms: Iterable[str] = ("SimpleGreedy", "GR", "POLAR", "POLAR-OP", "OPT"),
    jobs: int = 1,
) -> SweepResult:
    """Figure 5(b, f, j): ``|W| = |R|`` in {200k … 1M} (scaled).

    The paper omits OPT's time/memory here; we run OPT in compressed mode
    (its matching size is still reported, like the paper's 5(b)).  The
    default ``scale=0.1`` keeps pure-Python runtimes sane — the claim
    under test is the *flatness* of POLAR's per-arrival cost, which is
    scale-invariant.
    """
    points = [
        (
            float(n),
            _BASE.scaled(
                n_workers=_scaled_count(n, scale),
                n_tasks=_scaled_count(n, scale),
            ),
        )
        for n in (200_000, 400_000, 600_000, 800_000, 1_000_000)
    ]
    return _sweep_synthetic(
        "fig5_scalability",
        "|W|=|R|",
        points,
        scale,
        measure_memory,
        algorithms,
        opt_method="compressed",
        jobs=jobs,
    )


def run_fig5_city(
    city: str,
    scale: float = 0.2,
    measure_memory: bool = True,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    history_days: int = 28,
    eval_day_offset: int = 1,
    jobs: int = 1,
) -> SweepResult:
    """Figure 5(c/d, g/h, k/l): vary ``Dr`` on a taxi-city day.

    The offline prediction is the full Table 5 winner: HP-MSI trained on
    ``history_days`` of the city's history forecasts the evaluation day,
    and the forecast (not the ground truth) feeds the guide — this is the
    end-to-end two-step framework.  (Each worker process fits the
    predictor once and shares it across its Dr points.)

    Args:
        city: ``"beijing"`` or ``"hangzhou"``.
        scale: volume scale on the city's daily counts.
        history_days: training window for HP-MSI.
        eval_day_offset: evaluation day = history end + offset.
        jobs: process count for the sweep cells.
    """
    if city not in ("beijing", "hangzhou"):
        raise ExperimentError(f"unknown city {city!r}")
    points = [
        CityPoint(
            x_value=dr,
            city=city,
            scale=scale,
            history_days=history_days,
            eval_day_offset=eval_day_offset,
        )
        for dr in (0.5, 0.75, 1.0, 1.25, 1.5)
    ]
    return SweepExecutor(jobs=jobs).run(
        f"fig5_{city}",
        "Dr",
        points,
        algorithms,
        measure_memory=measure_memory,
        notes={
            "scale": f"{scale:g}",
            "predictor": "HP-MSI",
            "history_days": str(history_days),
        },
    )


# ---------------------------------------------------------------------- #
# Figure 6 — task temporal/spatial distribution sweeps
# ---------------------------------------------------------------------- #


def _fig6_sweep(
    experiment_id: str,
    x_label: str,
    field: str,
    scale: float,
    measure_memory: bool,
    algorithms: Iterable[str],
    jobs: int = 1,
) -> SweepResult:
    points = [
        (
            value,
            _BASE.scaled(
                n_workers=_scaled_count(20_000, scale),
                n_tasks=_scaled_count(20_000, scale),
                **{field: value},
            ),
        )
        for value in (0.25, 0.375, 0.5, 0.625, 0.75)
    ]
    return _sweep_synthetic(
        experiment_id, x_label, points, scale, measure_memory, algorithms, jobs=jobs
    )


def run_fig6_temporal_mu(
    scale: float = 1.0,
    measure_memory: bool = True,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    jobs: int = 1,
) -> SweepResult:
    """Figure 6(a, e, i): vary the tasks' temporal μ fraction."""
    return _fig6_sweep(
        "fig6_mu", "mu", "task_temporal_mu", scale, measure_memory, algorithms, jobs
    )


def run_fig6_temporal_sigma(
    scale: float = 1.0,
    measure_memory: bool = True,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    jobs: int = 1,
) -> SweepResult:
    """Figure 6(b, f, j): vary the tasks' temporal σ fraction."""
    return _fig6_sweep(
        "fig6_sigma",
        "sigma",
        "task_temporal_sigma",
        scale,
        measure_memory,
        algorithms,
        jobs,
    )


def run_fig6_spatial_mean(
    scale: float = 1.0,
    measure_memory: bool = True,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    jobs: int = 1,
) -> SweepResult:
    """Figure 6(c, g, k): vary the tasks' spatial mean fraction."""
    return _fig6_sweep(
        "fig6_mean", "mean", "task_spatial_mean", scale, measure_memory, algorithms, jobs
    )


def run_fig6_spatial_cov(
    scale: float = 1.0,
    measure_memory: bool = True,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    jobs: int = 1,
) -> SweepResult:
    """Figure 6(d, h, l): vary the tasks' spatial covariance fraction."""
    return _fig6_sweep(
        "fig6_cov", "cov", "task_spatial_cov", scale, measure_memory, algorithms, jobs
    )
