"""Command-line interface: run and render the paper's experiments.

::

    python -m repro list
    python -m repro run fig4_workers --scale 0.1 --out results/
    python -m repro run table5_prediction --scale 0.5
    python -m repro report results/fig4_workers.json

``run`` prints the same rows/series the paper's figure or table reports
and optionally archives the JSON; ``report`` re-renders archived JSON.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.report import render
from repro.experiments.results import SweepResult, TableResult

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FTOA reproduction (Tong et al., VLDB 2017) experiment harness",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list all registered experiments")

    run = commands.add_parser("run", help="run one experiment and print its rows")
    run.add_argument("experiment_id", help="registry id, e.g. fig4_workers")
    run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="population scale (default: the experiment's default)",
    )
    run.add_argument(
        "--no-memory",
        action="store_true",
        help="skip the tracemalloc pass (halves runtime)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep cells (default 1 = serial; "
        "matching sizes are identical either way)",
    )
    run.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to archive the JSON result into",
    )

    report = commands.add_parser("report", help="render archived JSON results")
    report.add_argument("paths", nargs="+", type=Path, help="result JSON files")
    return parser


def _cmd_list() -> int:
    width = max(len(spec.experiment_id) for spec in list_experiments())
    for spec in list_experiments():
        print(
            f"{spec.experiment_id.ljust(width)}  {spec.paper_ref:<22}  "
            f"(scale={spec.default_scale:g})  {spec.description}"
        )
    return 0


def _cmd_run(
    experiment_id: str,
    scale: Optional[float],
    no_memory: bool,
    out,
    jobs: int = 1,
) -> int:
    spec = get_experiment(experiment_id)
    effective_scale = spec.default_scale if scale is None else scale
    kwargs = {"scale": effective_scale, "measure_memory": not no_memory}
    if spec.supports_jobs:
        kwargs["jobs"] = jobs
    elif jobs != 1:
        print(f"[{experiment_id} does not support --jobs; running serially]")
    started = time.perf_counter()
    result = spec.run(**kwargs)
    elapsed = time.perf_counter() - started
    print(render(result))
    print(f"\n[{experiment_id} finished in {elapsed:.1f}s at scale {effective_scale:g}]")
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{experiment_id}.json"
        result.save(path)
        print(f"[archived to {path}]")
    return 0


def _cmd_report(paths) -> int:
    status = 0
    for path in paths:
        text = Path(path).read_text()
        try:
            result = SweepResult.from_json(text)
        except ReproError:
            result = TableResult.from_json(text)
        print(render(result))
        print()
    return status


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(
                args.experiment_id, args.scale, args.no_memory, args.out, args.jobs
            )
        if args.command == "report":
            return _cmd_report(args.paths)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
