"""Command-line interface: run and render the paper's experiments, and
drive the streaming session layer.

::

    python -m repro list
    python -m repro run fig4_workers --scale 0.1 --out results/
    python -m repro run table5_prediction --scale 0.5
    python -m repro report results/fig4_workers.json
    python -m repro dump --workers 2000 --tasks 2000 --out events.jsonl
    python -m repro replay events.jsonl --algorithm polar --snapshot-every 500

``run`` prints the same rows/series the paper's figure or table reports
and optionally archives the JSON; ``report`` re-renders archived JSON.
``dump`` writes a synthetic arrival stream as JSONL (with a config
header recording its discretisation) and ``replay`` feeds a JSONL
stream — from a file or stdin (``-``) — arrival-by-arrival through a
:class:`~repro.serving.session.MatchingSession`, printing mid-stream
snapshots and the final outcome.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.report import render
from repro.experiments.results import SweepResult, TableResult

__all__ = ["main", "build_parser"]

_REPLAY_ALGORITHMS = (
    "greedy",
    "greedy-indexed",
    "gr",
    "tgoa",
    "polar",
    "polar-op",
)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FTOA reproduction (Tong et al., VLDB 2017) experiment harness",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list all registered experiments")

    run = commands.add_parser("run", help="run one experiment and print its rows")
    run.add_argument("experiment_id", help="registry id, e.g. fig4_workers")
    run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="population scale (default: the experiment's default)",
    )
    run.add_argument(
        "--no-memory",
        action="store_true",
        help="skip the tracemalloc pass (halves runtime)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep cells (default 1 = serial; "
        "matching sizes are identical either way)",
    )
    run.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to archive the JSON result into",
    )

    report = commands.add_parser("report", help="render archived JSON results")
    report.add_argument("paths", nargs="+", type=Path, help="result JSON files")

    dump = commands.add_parser(
        "dump", help="write a synthetic arrival stream as JSONL"
    )
    dump.add_argument("--workers", type=int, default=2_000, help="|W| (default 2000)")
    dump.add_argument("--tasks", type=int, default=2_000, help="|R| (default 2000)")
    dump.add_argument(
        "--grid-side", type=int, default=50, help="grid cells per side (default 50)"
    )
    dump.add_argument(
        "--n-slots", type=int, default=48, help="time slots per day (default 48)"
    )
    dump.add_argument("--seed", type=int, default=0, help="generator seed")
    dump.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSONL path (default: stdout)",
    )

    replay = commands.add_parser(
        "replay",
        help="feed a JSONL arrival stream through a matching session",
    )
    replay.add_argument(
        "path", help="JSONL stream path, or '-' to read from stdin"
    )
    replay.add_argument(
        "--algorithm",
        choices=_REPLAY_ALGORITHMS,
        default="greedy",
        help="matcher to drive (default: greedy)",
    )
    replay.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        help="print a session snapshot every N arrivals",
    )
    replay.add_argument(
        "--window-minutes",
        type=float,
        default=None,
        help="GR batching window (default: a tenth of a slot)",
    )
    replay.add_argument(
        "--halfway",
        type=int,
        default=None,
        help="TGOA phase boundary (default: half the stream)",
    )
    replay.add_argument(
        "--seed", type=int, default=0, help="POLAR node-choice seed"
    )
    replay.add_argument(
        "--speed",
        type=float,
        default=None,
        help="worker velocity override in distance units per minute "
        "(default: the stream config record's velocity)",
    )
    return parser


def _cmd_list() -> int:
    width = max(len(spec.experiment_id) for spec in list_experiments())
    for spec in list_experiments():
        print(
            f"{spec.experiment_id.ljust(width)}  {spec.paper_ref:<22}  "
            f"(scale={spec.default_scale:g})  {spec.description}"
        )
    return 0


def _cmd_run(
    experiment_id: str,
    scale: Optional[float],
    no_memory: bool,
    out,
    jobs: int = 1,
) -> int:
    spec = get_experiment(experiment_id)
    effective_scale = spec.default_scale if scale is None else scale
    kwargs = {"scale": effective_scale, "measure_memory": not no_memory}
    if spec.supports_jobs:
        kwargs["jobs"] = jobs
    elif jobs != 1:
        print(f"[{experiment_id} does not support --jobs; running serially]")
    started = time.perf_counter()
    result = spec.run(**kwargs)
    elapsed = time.perf_counter() - started
    print(render(result))
    print(f"\n[{experiment_id} finished in {elapsed:.1f}s at scale {effective_scale:g}]")
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{experiment_id}.json"
        result.save(path)
        print(f"[archived to {path}]")
    return 0


def _cmd_report(paths) -> int:
    status = 0
    for path in paths:
        text = Path(path).read_text()
        try:
            result = SweepResult.from_json(text)
        except ReproError:
            result = TableResult.from_json(text)
        print(render(result))
        print()
    return status


def _cmd_dump(args) -> int:
    from repro.serving.replay import dump_stream, stream_config
    from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator

    config = SyntheticConfig(
        n_workers=args.workers,
        n_tasks=args.tasks,
        grid_side=args.grid_side,
        n_slots=args.n_slots,
        seed=args.seed,
    )
    generator = SyntheticGenerator(config)
    instance = generator.generate()
    header = stream_config(instance.grid, instance.timeline, instance.travel)
    if args.out is None:
        count = dump_stream(instance.arrival_stream(), sys.stdout, config=header)
    else:
        with open(args.out, "w") as fp:
            count = dump_stream(instance.arrival_stream(), fp, config=header)
        print(f"[{count} arrivals written to {args.out}]")
    return 0


def _replay_context(config: Optional[dict], speed: Optional[float]):
    """(grid, timeline, travel) for a replay, from the stream's config
    record with CLI overrides."""
    from repro.spatial.geometry import BoundingBox
    from repro.spatial.grid import Grid
    from repro.spatial.timeslots import Timeline
    from repro.spatial.travel import TravelModel

    if config is None:
        raise ConfigurationError(
            "stream has no config record; generate streams with 'repro dump' "
            "or prepend a {'kind': 'config', ...} line"
        )
    try:
        x_min, y_min, x_max, y_max = config["bounds"]
        grid = Grid(
            BoundingBox(x_min, y_min, x_max, y_max),
            int(config["nx"]),
            int(config["ny"]),
        )
        timeline = Timeline(
            int(config["n_slots"]),
            float(config["slot_minutes"]),
            float(config.get("t0", 0.0)),
        )
        velocity = float(config["velocity"]) if speed is None else speed
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed stream config record: {exc}") from exc
    return grid, timeline, TravelModel(velocity=velocity)


def _cmd_replay(args) -> int:
    from repro.core.engine import (
        BatchMatcher,
        GreedyMatcher,
        PolarMatcher,
        PolarOpMatcher,
        TgoaMatcher,
    )
    from repro.serving.replay import build_self_guide, load_stream
    from repro.serving.session import IteratorSource, MatchingSession

    if args.path == "-":
        config, events = load_stream(sys.stdin)
    else:
        with open(args.path) as fp:
            config, events = load_stream(fp)
    grid, timeline, travel = _replay_context(config, args.speed)

    algorithm = args.algorithm
    if algorithm == "greedy":
        matcher = GreedyMatcher(travel, indexed=False)
    elif algorithm == "greedy-indexed":
        matcher = GreedyMatcher(travel, grid=grid, indexed=True)
    elif algorithm == "gr":
        window = (
            timeline.slot_minutes / 10.0
            if args.window_minutes is None
            else args.window_minutes
        )
        matcher = BatchMatcher(travel, grid, window)
    elif algorithm == "tgoa":
        halfway = len(events) // 2 if args.halfway is None else args.halfway
        matcher = TgoaMatcher(travel, grid=grid, halfway=halfway)
    else:
        guide = build_self_guide(events, grid, timeline, travel)
        print(f"[self-guide built: {guide.matched_pairs} matched node pairs]")
        if algorithm == "polar":
            matcher = PolarMatcher(guide, seed=args.seed)
        else:
            matcher = PolarOpMatcher(guide, seed=args.seed)

    session = MatchingSession(
        matcher,
        IteratorSource(events),
        snapshot_every=args.snapshot_every,
        on_snapshot=lambda snap: print(snap.summary()),
    )
    outcome = session.run()
    print(outcome.summary())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(
                args.experiment_id, args.scale, args.no_memory, args.out, args.jobs
            )
        if args.command == "report":
            return _cmd_report(args.paths)
        if args.command == "dump":
            return _cmd_dump(args)
        if args.command == "replay":
            return _cmd_replay(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
